#!/usr/bin/env bash
# Coverage no-regression ratchet.
#
# Usage: ci/check-coverage.sh <coverage.json>
#
# <coverage.json> is the output of
#   cargo llvm-cov --workspace --json --summary-only --output-path coverage.json
# The measured workspace line-coverage percent is compared against the
# recorded baseline in ci/coverage-baseline.txt: the job fails if coverage
# dropped below baseline - TOLERANCE (a small allowance for run-to-run
# noise from proptest case selection), and asks for a baseline bump when
# coverage rose, so the ratchet follows the suite upward.
set -euo pipefail

SUMMARY="${1:?usage: ci/check-coverage.sh <coverage.json>}"
BASELINE_FILE="$(dirname "$0")/coverage-baseline.txt"
TOLERANCE=0.25

baseline="$(grep -v '^#' "$BASELINE_FILE" | grep -m1 . | tr -d '[:space:]')"
measured="$(python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    summary = json.load(f)
percent = summary["data"][0]["totals"]["lines"]["percent"]
print(f"{percent:.2f}")
' "$SUMMARY")"

echo "line coverage: measured ${measured}% / baseline ${baseline}% (tolerance ${TOLERANCE})"

python3 -c '
import sys
measured, baseline, tolerance = map(float, sys.argv[1:4])
if measured < baseline - tolerance:
    print(f"FAIL: coverage {measured}% regressed below the {baseline}% baseline")
    sys.exit(1)
if measured > baseline + 1.0:
    print(f"NOTE: coverage {measured}% is well above the recorded baseline;")
    print(f"      raise ci/coverage-baseline.txt to {measured} to lock in the gain")
print("coverage ratchet OK")
' "$measured" "$baseline" "$TOLERANCE"
