//! Common Neighbors grouping (Daminelli et al., the Grape `CN` used in the
//! paper with `cn_threshold = 10`).
//!
//! Two users are "close" when they share at least `cn_threshold` co-clicked
//! items. Connected components of that similarity relation form user
//! clusters; a cluster's item set is every item co-clicked by at least
//! `min_item_support` of its members. The paper notes the gap to RICD:
//! "only considering neighbor information will cause many abnormal users or
//! items to be erroneously undetected".

use crate::ui::with_ui;
use ricd_core::params::RicdParams;
use ricd_core::result::{DetectionResult, SuspiciousGroup};
use ricd_engine::{Stopwatch, WorkerPool};
use ricd_graph::twohop::{self, CommonNeighborScratch};
use ricd_graph::{BipartiteGraph, GraphView, ItemId, UserId};
use serde::{Deserialize, Serialize};

/// CN parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnParams {
    /// Minimum common neighbors linking two users (paper: 10, "consistent
    /// with the k₁, k₂ in RICD").
    pub cn_threshold: u32,
    /// Minimum cluster members that must have clicked an item for it to
    /// join the cluster's item set.
    pub min_item_support: usize,
}

impl Default for CnParams {
    fn default() -> Self {
        Self {
            cn_threshold: 10,
            min_item_support: 2,
        }
    }
}

/// Computes the user clusters and their item sets.
pub fn cn_communities(
    g: &BipartiteGraph,
    params: &CnParams,
    pool: &WorkerPool,
) -> Vec<SuspiciousGroup> {
    let view = GraphView::full(g);
    let n = g.num_users();

    // Similarity edges (u < u') with enough common neighbors, found by
    // wedge counting per user in parallel.
    let pairs: Vec<Vec<(u32, u32)>> = pool.run_partitioned(n, |range| {
        let mut scratch = CommonNeighborScratch::new(n);
        let mut local = Vec::new();
        for u in range {
            let uid = UserId(u as u32);
            twohop::for_each_user_common_neighbor(&view, uid, &mut scratch, |other, count| {
                if other.0 > u as u32 && count >= params.cn_threshold {
                    local.push((u as u32, other.0));
                }
            });
        }
        local
    });

    // Union-find over users.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for batch in pairs {
        for (a, b) in batch {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra as usize] = rb;
            }
        }
    }

    // Clusters with ≥ 2 members (singletons carry no CN evidence).
    let mut clusters: std::collections::HashMap<u32, Vec<UserId>> =
        std::collections::HashMap::new();
    for u in 0..n as u32 {
        clusters
            .entry(find(&mut parent, u))
            .or_default()
            .push(UserId(u));
    }
    let mut out = Vec::new();
    for (_, users) in clusters {
        if users.len() < 2 {
            continue;
        }
        // Item support count within the cluster.
        let mut support: std::collections::HashMap<ItemId, usize> =
            std::collections::HashMap::new();
        for &u in &users {
            for v in g.user_adjacency(u) {
                *support.entry(*v).or_default() += 1;
            }
        }
        let mut items: Vec<ItemId> = support
            .into_iter()
            .filter(|&(_, s)| s >= params.min_item_support)
            .map(|(v, _)| v)
            .collect();
        items.sort_unstable();
        let mut users = users;
        users.sort_unstable();
        out.push(SuspiciousGroup {
            users,
            items,
            ridden_hot_items: vec![],
        });
    }
    out.sort_by_key(|c| c.users.first().copied());
    out
}

/// CN + UI screening.
pub fn cn_detect(
    g: &BipartiteGraph,
    params: &CnParams,
    ricd_params: &RicdParams,
    pool: &WorkerPool,
) -> DetectionResult {
    let sw = Stopwatch::start();
    let comms = cn_communities(g, params, pool);
    let detect_time = sw.elapsed();
    with_ui(g, comms, ricd_params, detect_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::GraphBuilder;

    fn block_graph() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        // 12 users sharing 11 items (CN = 11 ≥ 10).
        for u in 0..12u32 {
            for v in 0..11u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        // Two users sharing only 3 items (below threshold).
        for v in 50..53u32 {
            b.add_click(UserId(20), ItemId(v), 1);
            b.add_click(UserId(21), ItemId(v), 1);
        }
        b.build()
    }

    #[test]
    fn clusters_form_at_threshold() {
        let g = block_graph();
        let comms = cn_communities(&g, &CnParams::default(), &WorkerPool::new(2));
        assert_eq!(comms.len(), 1, "only the dense block clusters");
        assert_eq!(comms[0].users.len(), 12);
        assert_eq!(comms[0].items.len(), 11);
    }

    #[test]
    fn low_threshold_links_weak_pairs() {
        let g = block_graph();
        let p = CnParams {
            cn_threshold: 3,
            ..CnParams::default()
        };
        let comms = cn_communities(&g, &p, &WorkerPool::new(2));
        assert_eq!(comms.len(), 2);
    }

    #[test]
    fn item_support_filters_stray_items() {
        let mut b = GraphBuilder::new();
        for u in 0..12u32 {
            for v in 0..11u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        // One member also clicked a personal item.
        b.add_click(UserId(0), ItemId(99), 3);
        let g = b.build();
        let comms = cn_communities(&g, &CnParams::default(), &WorkerPool::new(2));
        assert!(!comms[0].items.contains(&ItemId(99)));
    }

    #[test]
    fn detect_with_ui_outputs_block() {
        let g = block_graph();
        let r = cn_detect(
            &g,
            &CnParams::default(),
            &RicdParams::default(),
            &WorkerPool::new(2),
        );
        assert_eq!(r.groups.len(), 1);
        assert_eq!(r.groups[0].users.len(), 12);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let comms = cn_communities(&g, &CnParams::default(), &WorkerPool::new(2));
        assert!(comms.is_empty());
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let g = block_graph();
        let a = cn_communities(&g, &CnParams::default(), &WorkerPool::new(1));
        let b = cn_communities(&g, &CnParams::default(), &WorkerPool::new(4));
        assert_eq!(a, b);
    }
}
