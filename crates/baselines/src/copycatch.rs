//! COPYCATCH (Beutel et al., WWW'13) in its degenerate no-timestamp form.
//!
//! COPYCATCH proper finds *temporally coherent* near-bipartite cores; the
//! paper's dataset has no timestamps, so (Section VI-A) "the algorithm
//! degenerates to enumerate (near) biclique cores, which is a #P-hard
//! problem. So we refer to the imbea [Zhang et al.] for the implementation
//! and take the result of running the algorithm in a limited time (about
//! 600 seconds) as the final output."
//!
//! This module implements that: an iMBEA-style branch-and-bound maximal
//! biclique enumeration with a wall-clock budget, keeping bicliques of at
//! least `m` users × `n` items (mapped from RICD's `k₁`, `k₂`). On any
//! realistic graph the budget expires long before the enumeration finishes —
//! reproducing the poor quality the paper reports for this baseline.

use crate::ui::with_ui;
use ricd_core::params::RicdParams;
use ricd_core::result::{DetectionResult, SuspiciousGroup};
use ricd_engine::Stopwatch;
use ricd_graph::{BipartiteGraph, ItemId, UserId};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// COPYCATCH (degenerate) parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CopyCatchParams {
    /// Minimum users per biclique (`m`, mapped from `k₁`).
    pub m: usize,
    /// Minimum items per biclique (`n`, mapped from `k₂`).
    pub n: usize,
    /// Wall-clock enumeration budget (paper: ~600 s; tests use much less).
    pub time_budget: Duration,
    /// Cap on collected bicliques (memory guard).
    pub max_results: usize,
    /// Cap on bicliques collected from one seed item before moving to the
    /// next seed. A dense benign region (e.g. a group-buying community)
    /// contains combinatorially many maximal bicliques; without this cap a
    /// time-budgeted run exhausts itself inside the first such region and
    /// never covers the rest of the catalog.
    pub max_results_per_seed: usize,
}

impl Default for CopyCatchParams {
    fn default() -> Self {
        Self {
            m: 10,
            n: 10,
            time_budget: Duration::from_secs(600),
            max_results: 10_000,
            max_results_per_seed: 20,
        }
    }
}

struct Enumerator<'g> {
    g: &'g BipartiteGraph,
    params: CopyCatchParams,
    deadline: Instant,
    results: Vec<SuspiciousGroup>,
    expired: bool,
    /// Results limit for the current seed's subtree.
    seed_cap: usize,
}

impl<'g> Enumerator<'g> {
    /// iMBEA-style expansion: `items` is the current right set (sorted),
    /// `users` the exact common-neighbor set of `items`, `cand` the item
    /// candidates (id > last item in `items`) that can still extend.
    fn expand(&mut self, items: &mut Vec<ItemId>, users: &[UserId], cand: &[ItemId]) {
        if self.results.len() >= self.params.max_results.min(self.seed_cap) {
            return;
        }
        if Instant::now() >= self.deadline {
            self.expired = true;
            return;
        }
        // Size-bound prune: this subtree can never reach `n` items.
        if items.len() + cand.len() < self.params.n {
            return;
        }
        let mut maximal = true;
        for (i, &v) in cand.iter().enumerate() {
            if self.expired || self.results.len() >= self.params.max_results.min(self.seed_cap) {
                return;
            }
            // Forward candidates left are too few to ever reach `n`.
            if items.len() + (cand.len() - i) < self.params.n {
                break;
            }
            // users ∩ adj(v)
            let new_users: Vec<UserId> = intersect_sorted(users, self.g.item_adjacency(v));
            if new_users.len() < self.params.m {
                continue;
            }
            if new_users.len() == users.len() {
                // v extends without shrinking: current set not maximal.
                maximal = false;
            }
            items.push(v);
            // Remaining candidates after v: found by wedge counting over the
            // new user set (only items actually adjacent to those users can
            // qualify), then filtered to forward ids and coverage ≥ m. This
            // keeps each branch O(Σ deg(user)) instead of O(|V| · deg).
            let mut coverage: std::collections::HashMap<ItemId, usize> =
                std::collections::HashMap::new();
            for &u in &new_users {
                for w in self.g.user_adjacency(u) {
                    *coverage.entry(*w).or_default() += 1;
                }
            }
            // Keep cand's visit order (the filter is order-preserving) so
            // the forward-only rule stays consistent across levels.
            let rest: Vec<ItemId> = cand[i + 1..]
                .iter()
                .copied()
                .filter(|w| coverage.get(w).copied().unwrap_or(0) >= self.params.m)
                .collect();
            self.expand(items, &new_users, &rest);
            items.pop();
        }
        if maximal
            && items.len() >= self.params.n
            && users.len() >= self.params.m
            // The forward-candidate check above is only a fast path: an item
            // *before* the branch point could also extend this set without
            // shrinking it, so confirm maximality against the whole catalog.
            && self.is_globally_maximal(users, items)
        {
            self.results.push(SuspiciousGroup {
                users: users.to_vec(),
                items: items.clone(),
                ridden_hot_items: vec![],
            });
        }
    }

    /// True iff no item outside `items` is adjacent to *every* user.
    fn is_globally_maximal(&self, users: &[UserId], items: &[ItemId]) -> bool {
        let mut coverage: std::collections::HashMap<ItemId, usize> =
            std::collections::HashMap::new();
        for &u in users {
            for v in self.g.user_adjacency(u) {
                *coverage.entry(*v).or_default() += 1;
            }
        }
        !coverage
            .iter()
            .any(|(v, &c)| c == users.len() && !items.contains(v))
    }
}

fn intersect_sorted(a: &[UserId], b: &[UserId]) -> Vec<UserId> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Enumerates (a time-budgeted prefix of) the maximal bicliques of size
/// ≥ `m × n`. Returns the bicliques found and whether the budget expired.
pub fn enumerate_bicliques(
    g: &BipartiteGraph,
    params: &CopyCatchParams,
) -> (Vec<SuspiciousGroup>, bool) {
    let mut e = Enumerator {
        g,
        params: *params,
        deadline: Instant::now() + params.time_budget,
        results: Vec::new(),
        expired: false,
        seed_cap: usize::MAX,
    };
    // Seed the expansion at every item with enough users. Seeds are visited
    // in ascending-degree order (iMBEA's vertex ordering): cheap low-degree
    // seeds first, so the time budget is spent where maximal bicliques are
    // found quickly. The "forward-only" candidate rule uses the same order,
    // so each maximal biclique is reached exactly once from its
    // order-smallest item. Each seed's subtree is capped at
    // `max_results_per_seed` so one dense region cannot monopolize the
    // budget.
    let mut all_items: Vec<ItemId> = g
        .items()
        .filter(|&v| g.item_degree(v) >= params.m)
        .collect();
    all_items.sort_by_key(|&v| (g.item_degree(v), v));
    for (i, &v) in all_items.iter().enumerate() {
        if e.expired || e.results.len() >= params.max_results {
            break;
        }
        if Instant::now() >= e.deadline {
            e.expired = true;
            break;
        }
        e.seed_cap = e.results.len() + params.max_results_per_seed;
        let users: Vec<UserId> = g.item_adjacency(v).to_vec();
        // Forward candidates sharing >= m users with the seed.
        let mut coverage: std::collections::HashMap<ItemId, usize> =
            std::collections::HashMap::new();
        for &u in &users {
            for w in g.user_adjacency(u) {
                *coverage.entry(*w).or_default() += 1;
            }
        }
        let rest: Vec<ItemId> = all_items[i + 1..]
            .iter()
            .copied()
            .filter(|w| coverage.get(w).copied().unwrap_or(0) >= params.m)
            .collect();
        let mut items = vec![v];
        e.expand(&mut items, &users, &rest);
    }
    let expired = e.expired;
    // Dedup identical user/item sets found through different paths.
    let mut results = e.results;
    results.sort_by(|a, b| (&a.users, &a.items).cmp(&(&b.users, &b.items)));
    results.dedup_by(|a, b| a.users == b.users && a.items == b.items);
    (results, expired)
}

/// COPYCATCH (degenerate) + UI screening.
pub fn copycatch_detect(
    g: &BipartiteGraph,
    params: &CopyCatchParams,
    ricd_params: &RicdParams,
) -> DetectionResult {
    let sw = Stopwatch::start();
    let (comms, _expired) = enumerate_bicliques(g, params);
    let detect_time = sw.elapsed();
    with_ui(g, comms, ricd_params, detect_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::GraphBuilder;

    fn biclique(k: u32, base_u: u32, base_v: u32, b: &mut GraphBuilder) {
        for u in 0..k {
            for v in 0..k {
                b.add_click(UserId(base_u + u), ItemId(base_v + v), 14);
            }
        }
    }

    fn params(m: usize, n: usize) -> CopyCatchParams {
        CopyCatchParams {
            m,
            n,
            time_budget: Duration::from_secs(5),
            max_results: 1000,
            max_results_per_seed: 1000,
        }
    }

    #[test]
    fn finds_a_planted_biclique() {
        let mut b = GraphBuilder::new();
        biclique(10, 0, 0, &mut b);
        let g = b.build();
        let (found, expired) = enumerate_bicliques(&g, &params(10, 10));
        assert!(!expired);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].users.len(), 10);
        assert_eq!(found[0].items.len(), 10);
    }

    #[test]
    fn finds_two_disjoint_bicliques() {
        let mut b = GraphBuilder::new();
        biclique(10, 0, 0, &mut b);
        biclique(11, 100, 100, &mut b);
        let g = b.build();
        let (found, _) = enumerate_bicliques(&g, &params(10, 10));
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn maximality_no_subsets_reported() {
        // A 12x12 biclique: only the maximal one comes out, not sub-bicliques.
        let mut b = GraphBuilder::new();
        biclique(12, 0, 0, &mut b);
        let g = b.build();
        let (found, _) = enumerate_bicliques(&g, &params(10, 10));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].users.len(), 12);
    }

    #[test]
    fn overlapping_structures_enumerate_both_maximals() {
        // Users 0..10 click items 0..10; users 5..15 click items 10..20:
        // two maximal bicliques overlapping at users 5..10 / item 10 region.
        let mut b = GraphBuilder::new();
        for u in 0..10u32 {
            for v in 0..10u32 {
                b.add_click(UserId(u), ItemId(v), 1);
            }
        }
        for u in 5..15u32 {
            for v in 10..20u32 {
                b.add_click(UserId(u), ItemId(v), 1);
            }
        }
        let g = b.build();
        let (found, _) = enumerate_bicliques(&g, &params(5, 5));
        assert!(found.len() >= 2, "found {}", found.len());
    }

    #[test]
    fn zero_budget_returns_early() {
        let mut b = GraphBuilder::new();
        biclique(10, 0, 0, &mut b);
        let g = b.build();
        let p = CopyCatchParams {
            time_budget: Duration::ZERO,
            ..params(10, 10)
        };
        let (found, expired) = enumerate_bicliques(&g, &p);
        assert!(expired);
        assert!(found.is_empty());
    }

    #[test]
    fn undersized_bicliques_ignored() {
        let mut b = GraphBuilder::new();
        biclique(4, 0, 0, &mut b);
        let g = b.build();
        let (found, _) = enumerate_bicliques(&g, &params(5, 5));
        assert!(found.is_empty());
    }

    #[test]
    fn detect_with_ui_runs() {
        let mut b = GraphBuilder::new();
        biclique(12, 0, 0, &mut b);
        for u in 100..1200u32 {
            b.add_click(UserId(u), ItemId(50), 1);
        }
        let g = b.build();
        let r = copycatch_detect(&g, &params(10, 10), &RicdParams::default());
        assert_eq!(r.groups.len(), 1);
        assert!(r.timings.get("detect").is_some());
    }
}
