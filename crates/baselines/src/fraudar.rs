//! FRAUDAR (Hooi et al., KDD'16): camouflage-resistant dense-block
//! detection by greedy peeling, extended to multiple blocks as the paper's
//! MaxCompute re-implementation was.
//!
//! The metric is `g(S) = f(S) / |S|` where `f(S)` sums the suspiciousness of
//! the edges inside the node set `S`. Edges are **column-weighted**
//! `w(u, v) = 1 / log(deg(v) + 5)` — clicks on popular items count less, so
//! camouflage clicks on hot items barely help an attacker (the FRAUDAR
//! paper's Theorem 2 camouflage resistance).
//!
//! Greedy peeling removes the node of minimum weighted degree, tracking the
//! prefix with the best `g(S)`; that prefix is the densest block. For
//! multiple blocks the found block's nodes are removed and the peeling
//! repeats until the block score falls below `min_score_ratio` of the first
//! block's or `max_blocks` is reached.

use crate::ui::with_ui;
use ricd_core::params::RicdParams;
use ricd_core::result::{DetectionResult, SuspiciousGroup};
use ricd_engine::Stopwatch;
use ricd_graph::{BipartiteGraph, GraphView, ItemId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// FRAUDAR parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FraudarParams {
    /// Maximum blocks to extract.
    pub max_blocks: usize,
    /// Stop when a block's `g(S)` drops below this fraction of the first
    /// block's.
    pub min_score_ratio: f64,
    /// Use the click counts as edge multiplicities (`true`) or treat every
    /// edge as weight 1 before column weighting (`false`, the original
    /// "who-follows-whom" setting).
    pub use_click_counts: bool,
}

impl Default for FraudarParams {
    fn default() -> Self {
        // The paper's MaxCompute re-implementation extracts a fixed number
        // of blocks with no relative-score cutoff ("without determining the
        // number of blocks in advance, the algorithm can't find multiple
        // attack groups"); min_score_ratio = 0 reproduces that behavior and
        // can be raised to study the cutoff as an ablation.
        Self {
            max_blocks: 16,
            min_score_ratio: 0.0,
            use_click_counts: false,
        }
    }
}

/// One extracted dense block with its score.
#[derive(Clone, Debug)]
pub struct Block {
    /// Users in the block.
    pub users: Vec<UserId>,
    /// Items in the block.
    pub items: Vec<ItemId>,
    /// The block's `g(S)` value.
    pub score: f64,
}

/// Column weight `1 / log(deg + 5)` (natural log, FRAUDAR's choice).
fn column_weight(item_degree: usize) -> f64 {
    1.0 / ((item_degree as f64 + 5.0).ln())
}

/// Runs one greedy peeling on the alive part of `view`, returning the best
/// block (or `None` if the view has no edges).
fn peel_once(view: &GraphView<'_>, params: &FraudarParams) -> Option<Block> {
    let g = view.graph();
    let col_w: Vec<f64> = (0..g.num_items())
        .map(|v| column_weight(g.item_degree(ItemId(v as u32))))
        .collect();
    let edge_w = |v: ItemId, clicks: u32| -> f64 {
        let mult = if params.use_click_counts {
            clicks as f64
        } else {
            1.0
        };
        mult * col_w[v.index()]
    };

    // Node ids: users 0..U, items U..U+V.
    let nu = g.num_users();
    let n_total = nu + g.num_items();
    let mut alive: Vec<bool> = (0..n_total)
        .map(|x| {
            if x < nu {
                view.user_alive(UserId(x as u32)) && view.user_degree(UserId(x as u32)) > 0
            } else {
                view.item_alive(ItemId((x - nu) as u32))
                    && view.item_degree(ItemId((x - nu) as u32)) > 0
            }
        })
        .collect();
    let alive_count = alive.iter().filter(|&&a| a).count();
    if alive_count == 0 {
        return None;
    }

    // Weighted degrees and total f(S).
    let mut wdeg = vec![0.0f64; n_total];
    let mut f_total = 0.0;
    for u in view.users() {
        for (v, c) in view.user_neighbors(u) {
            let w = edge_w(v, c);
            wdeg[u.index()] += w;
            wdeg[nu + v.index()] += w;
            f_total += w;
        }
    }

    // Min-heap via Reverse on (wdeg, node); lazy deletion on stale entries.
    #[derive(PartialEq)]
    struct Entry(f64, usize);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reversed: smallest wdeg pops first; ties by node id.
            other
                .0
                .partial_cmp(&self.0)
                .unwrap()
                .then(other.1.cmp(&self.1))
        }
    }
    let mut heap: BinaryHeap<Entry> = (0..n_total)
        .filter(|&x| alive[x])
        .map(|x| Entry(wdeg[x], x))
        .collect();

    // Peel, recording the removal order and score of every prefix.
    let mut removal_order: Vec<usize> = Vec::with_capacity(alive_count);
    let mut best_score = f_total / alive_count as f64;
    let mut best_prefix = 0usize; // how many removals before the best set
    let mut step = 0usize;
    let mut f_cur = f_total;
    let mut cur_alive = alive_count;

    while cur_alive > 0 {
        let Entry(w, x) = heap.pop().expect("alive nodes remain");
        if !alive[x] || (w - wdeg[x]).abs() > 1e-9 {
            continue; // stale entry
        }
        // Remove x.
        alive[x] = false;
        cur_alive -= 1;
        f_cur -= wdeg[x];
        removal_order.push(x);
        step += 1;
        if x < nu {
            let u = UserId(x as u32);
            for (v, c) in view.user_neighbors(u) {
                let y = nu + v.index();
                if alive[y] {
                    wdeg[y] -= edge_w(v, c);
                    heap.push(Entry(wdeg[y], y));
                }
            }
        } else {
            let v = ItemId((x - nu) as u32);
            let wv = col_w[v.index()];
            for (u, c) in view.item_neighbors(v) {
                let y = u.index();
                if alive[y] {
                    let mult = if params.use_click_counts {
                        c as f64
                    } else {
                        1.0
                    };
                    wdeg[y] -= mult * wv;
                    heap.push(Entry(wdeg[y], y));
                }
            }
        }
        if cur_alive > 0 {
            let score = f_cur / cur_alive as f64;
            if score > best_score {
                best_score = score;
                best_prefix = step;
            }
        }
    }
    // The best block = everything not removed within the best prefix.
    let removed: std::collections::HashSet<usize> =
        removal_order[..best_prefix].iter().copied().collect();
    let mut users = Vec::new();
    let mut items = Vec::new();
    for u in view.users() {
        if view.user_degree(u) > 0 && !removed.contains(&u.index()) {
            users.push(u);
        }
    }
    for v in view.items() {
        if view.item_degree(v) > 0 && !removed.contains(&(nu + v.index())) {
            items.push(v);
        }
    }
    if users.is_empty() && items.is_empty() {
        return None;
    }
    Some(Block {
        users,
        items,
        score: best_score,
    })
}

/// Extracts up to `max_blocks` dense blocks.
pub fn fraudar_blocks(g: &BipartiteGraph, params: &FraudarParams) -> Vec<Block> {
    let mut view = GraphView::full(g);
    let mut blocks: Vec<Block> = Vec::new();
    for _ in 0..params.max_blocks {
        let Some(block) = peel_once(&view, params) else {
            break;
        };
        if let Some(first) = blocks.first() {
            if block.score < params.min_score_ratio * first.score {
                break;
            }
        }
        for &u in &block.users {
            view.remove_user(u);
        }
        for &v in &block.items {
            view.remove_item(v);
        }
        blocks.push(block);
    }
    blocks
}

/// FRAUDAR + UI screening.
pub fn fraudar_detect(
    g: &BipartiteGraph,
    params: &FraudarParams,
    ricd_params: &RicdParams,
) -> DetectionResult {
    let sw = Stopwatch::start();
    let blocks = fraudar_blocks(g, params);
    let comms: Vec<SuspiciousGroup> = blocks
        .into_iter()
        .map(|b| SuspiciousGroup {
            users: b.users,
            items: b.items,
            ridden_hot_items: vec![],
        })
        .collect();
    let detect_time = sw.elapsed();
    with_ui(g, comms, ricd_params, detect_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::GraphBuilder;

    /// Dense fraud block + sparse background.
    fn fraud_graph() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..12u32 {
            for v in 0..11u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        // Sparse organic background.
        for u in 100..400u32 {
            b.add_click(UserId(u), ItemId(100 + u % 50), 2);
        }
        b.build()
    }

    #[test]
    fn densest_block_is_the_fraud_block() {
        let g = fraud_graph();
        let blocks = fraudar_blocks(&g, &FraudarParams::default());
        assert!(!blocks.is_empty());
        let b0 = &blocks[0];
        assert_eq!(b0.users.len(), 12, "users: {:?}", b0.users);
        assert!(b0.users.iter().all(|u| u.0 < 12));
        assert_eq!(b0.items.len(), 11);
    }

    #[test]
    fn two_equal_blocks_fully_covered() {
        // Two identical disjoint dense blocks: the union has the same g(S)
        // as each block alone, so one peel may return both at once; either
        // way the full 24 workers must be covered by the extracted blocks.
        let mut b = GraphBuilder::new();
        for u in 0..12u32 {
            for v in 0..11u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        for u in 50..62u32 {
            for v in 50..61u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        let g = b.build();
        let blocks = fraudar_blocks(&g, &FraudarParams::default());
        let all_users: usize = blocks.iter().map(|b| b.users.len()).sum();
        assert_eq!(all_users, 24, "blocks: {}", blocks.len());
    }

    #[test]
    fn unequal_blocks_found_separately() {
        // A denser block and a sparser one: the greedy peels the dense one
        // first, then the next peel finds the other.
        let mut b = GraphBuilder::new();
        for u in 0..20u32 {
            for v in 0..18u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        for u in 50..62u32 {
            for v in 50..61u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        let g = b.build();
        let blocks = fraudar_blocks(&g, &FraudarParams::default());
        assert!(blocks.len() >= 2, "got {} blocks", blocks.len());
        assert_eq!(blocks[0].users.len(), 20, "densest block first");
        let all_users: usize = blocks.iter().map(|b| b.users.len()).sum();
        assert_eq!(all_users, 32);
    }

    #[test]
    fn camouflage_resistance() {
        // An attacker adding camouflage clicks on a popular item should not
        // drag that item into the block: its column weight is tiny.
        let mut b = GraphBuilder::new();
        for u in 0..12u32 {
            for v in 0..11u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        // Popular item 99 with 500 organic users + camouflage from workers.
        for u in 100..600u32 {
            b.add_click(UserId(u), ItemId(99), 1);
        }
        for u in 0..12u32 {
            b.add_click(UserId(u), ItemId(99), 2);
        }
        let g = b.build();
        let blocks = fraudar_blocks(&g, &FraudarParams::default());
        let b0 = &blocks[0];
        assert!(
            !b0.items.contains(&ItemId(99)),
            "hot camouflage item stayed out of the block"
        );
        assert_eq!(b0.users.len(), 12);
    }

    #[test]
    fn empty_graph_no_blocks() {
        let g = GraphBuilder::new().build();
        assert!(fraudar_blocks(&g, &FraudarParams::default()).is_empty());
    }

    #[test]
    fn max_blocks_respected() {
        let g = fraud_graph();
        let p = FraudarParams {
            max_blocks: 1,
            ..FraudarParams::default()
        };
        assert!(fraudar_blocks(&g, &p).len() <= 1);
    }

    #[test]
    fn detect_with_ui_runs() {
        let mut b = GraphBuilder::new();
        for u in 0..12u32 {
            for v in 0..11u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        for u in 100..1200u32 {
            b.add_click(UserId(u), ItemId(50), 1);
        }
        let g = b.build();
        let r = fraudar_detect(&g, &FraudarParams::default(), &RicdParams::default());
        assert_eq!(r.groups.len(), 1);
        assert_eq!(r.groups[0].users.len(), 12);
    }

    #[test]
    fn column_weight_decreasing() {
        assert!(column_weight(1) > column_weight(10));
        assert!(column_weight(10) > column_weight(1000));
        assert!(column_weight(0) > 0.0);
    }
}
