#![warn(missing_docs)]

//! # ricd-baselines — the comparison methods of Section VI
//!
//! Every method the paper benchmarks RICD against, implemented from scratch
//! on the same [`ricd_graph::BipartiteGraph`] substrate:
//!
//! * [`lpa`] — Label Propagation (Raghavan et al.), the Grape implementation
//!   the paper uses: unique initial labels, `max_round = 20`.
//! * [`cn`] — Common Neighbors grouping with `cn_threshold = 10`.
//! * [`louvain`] — Louvain modularity optimization.
//! * [`copycatch`] — the degenerate (no-timestamp) COPYCATCH: time-budgeted
//!   maximal-biclique enumeration in the spirit of iMBEA, as the paper's
//!   Section VI describes ("take the result of running the algorithm in a
//!   limited time as the final output").
//! * [`fraudar`] — FRAUDAR's camouflage-resistant greedy block peeling with
//!   logarithmic column weights, extended to emit multiple blocks (the
//!   paper re-implemented it in MaxCompute "for detecting multiple
//!   blocks").
//!
//! Fig 8 compares all baselines **with the UI screening attached** ("for the
//! sake of fairness, we add the suspicious group screening module to all
//! baselines"); [`ui::with_ui`] is that adapter: size-filter the raw
//! communities by `(k₁, k₂)`, then run RICD's user behavior check and item
//! behavior verification on each.

pub mod cn;
pub mod copycatch;
pub mod fraudar;
pub mod louvain;
pub mod lpa;
pub mod ui;

pub use cn::{cn_detect, CnParams};
pub use copycatch::{copycatch_detect, CopyCatchParams};
pub use fraudar::{fraudar_detect, FraudarParams};
pub use louvain::{louvain_detect, LouvainParams};
pub use lpa::{lpa_detect, LpaParams};
pub use ui::with_ui;
