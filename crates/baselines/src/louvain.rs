//! Louvain modularity optimization (Blondel et al. 2008), applied to the
//! click graph viewed as a weighted undirected graph (users and items as one
//! node space), as Grape's implementation does in the paper.
//!
//! Classic two-phase structure: (1) greedy local moves — each node joins the
//! neighboring community with the best modularity gain — swept until a pass
//! improves modularity by less than `tolerance` or moves fewer than
//! `min_progress` nodes; (2) community aggregation into a coarser graph;
//! repeated until no further improvement.

use crate::ui::with_ui;
use ricd_core::params::RicdParams;
use ricd_core::result::{DetectionResult, SuspiciousGroup};
use ricd_engine::Stopwatch;
use ricd_graph::{BipartiteGraph, ItemId, UserId};
use serde::{Deserialize, Serialize};

/// Louvain parameters (named after the Grape inputs the paper quotes).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LouvainParams {
    /// Minimum modularity improvement for a sweep to count as progress.
    pub tolerance: f64,
    /// Minimum node moves per sweep to keep sweeping.
    pub min_progress: usize,
    /// Cap on aggregation levels (safety valve).
    pub max_levels: usize,
}

impl Default for LouvainParams {
    fn default() -> Self {
        Self {
            tolerance: 1e-7,
            min_progress: 1,
            max_levels: 16,
        }
    }
}

/// Weighted undirected adjacency in flat form.
struct UGraph {
    adj: Vec<Vec<(u32, f64)>>,
    total_weight: f64, // m = sum of edge weights (each undirected edge once)
}

impl UGraph {
    fn from_bipartite(g: &BipartiteGraph) -> Self {
        let nu = g.num_users();
        let n = nu + g.num_items();
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut total = 0.0;
        for (u, v, c) in g.edges() {
            let a = u.0;
            let b = nu as u32 + v.0;
            adj[a as usize].push((b, c as f64));
            adj[b as usize].push((a, c as f64));
            total += c as f64;
        }
        Self {
            adj,
            total_weight: total,
        }
    }

    fn len(&self) -> usize {
        self.adj.len()
    }

    fn weighted_degree(&self, x: usize) -> f64 {
        self.adj[x].iter().map(|&(_, w)| w).sum()
    }
}

/// One level of local moving. Returns `(community of each node, moved_any)`.
fn local_moving(g: &UGraph, params: &LouvainParams) -> (Vec<u32>, bool) {
    let n = g.len();
    let m2 = 2.0 * g.total_weight;
    let mut community: Vec<u32> = (0..n as u32).collect();
    let k: Vec<f64> = (0..n).map(|x| g.weighted_degree(x)).collect();
    // Σ_tot per community (sum of degrees of members).
    let mut sigma_tot: Vec<f64> = k.clone();
    let mut improved_any = false;

    // links from node to each neighboring community, rebuilt per node.
    let mut weight_to: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();

    loop {
        let mut moves = 0usize;
        let mut gain_total = 0.0;
        for x in 0..n {
            let cx = community[x];
            weight_to.clear();
            for &(y, w) in &g.adj[x] {
                let cy = community[y as usize];
                *weight_to.entry(cy).or_default() += w;
            }
            // Remove x from its community for the gain math.
            sigma_tot[cx as usize] -= k[x];
            let w_own = weight_to.get(&cx).copied().unwrap_or(0.0);
            // Gain of staying put.
            let base_gain = w_own - sigma_tot[cx as usize] * k[x] / m2;
            let mut best_c = cx;
            let mut best_gain = base_gain;
            for (&c, &w) in &weight_to {
                if c == cx {
                    continue;
                }
                let gain = w - sigma_tot[c as usize] * k[x] / m2;
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_c = c;
                } else if (gain - best_gain).abs() <= 1e-12 && c < best_c {
                    // Deterministic tie-break toward the smaller community id.
                    best_c = c;
                }
            }
            sigma_tot[best_c as usize] += k[x];
            if best_c != cx {
                community[x] = best_c;
                moves += 1;
                gain_total += best_gain - base_gain;
                improved_any = true;
            }
        }
        if moves < params.min_progress || gain_total < params.tolerance {
            break;
        }
    }
    (community, improved_any)
}

/// Aggregates communities into a coarser graph; returns the new graph and
/// the dense relabeling `old community id → new node id`.
fn aggregate(g: &UGraph, community: &[u32]) -> (UGraph, Vec<u32>) {
    let mut relabel = vec![u32::MAX; g.len()];
    let mut next = 0u32;
    for &c in community.iter().take(g.len()) {
        let c = c as usize;
        if relabel[c] == u32::MAX {
            relabel[c] = next;
            next += 1;
        }
    }
    let mut edges: std::collections::HashMap<(u32, u32), f64> = std::collections::HashMap::new();
    for x in 0..g.len() {
        let cx = relabel[community[x] as usize];
        for &(y, w) in &g.adj[x] {
            let cy = relabel[community[y as usize] as usize];
            if cx <= cy {
                // Each undirected edge appears twice in adj; count each
                // direction once by the cx ≤ cy ordering, keeping self-loop
                // weight doubled, which Louvain's k_i accounting expects.
                *edges.entry((cx, cy)).or_default() += w;
            }
        }
    }
    let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); next as usize];
    let mut total = 0.0;
    for (&(a, b), &w) in &edges {
        if a == b {
            adj[a as usize].push((b, w));
            total += w / 2.0;
        } else {
            adj[a as usize].push((b, w));
            adj[b as usize].push((a, w));
            total += w;
        }
    }
    for l in &mut adj {
        l.sort_by_key(|&(id, _)| id);
    }
    (
        UGraph {
            adj,
            total_weight: total,
        },
        relabel,
    )
}

/// Runs full multi-level Louvain; returns the final community id per
/// original node (users `0..U`, items `U..U+V`).
pub fn louvain_communities_raw(g: &BipartiteGraph, params: &LouvainParams) -> Vec<u32> {
    let mut ug = UGraph::from_bipartite(g);
    let n0 = ug.len();
    let mut membership: Vec<u32> = (0..n0 as u32).collect();
    if ug.total_weight == 0.0 {
        return membership;
    }
    for _ in 0..params.max_levels {
        let (community, improved) = local_moving(&ug, params);
        if !improved {
            break;
        }
        let (coarse, relabel) = aggregate(&ug, &community);
        for m in &mut membership {
            *m = relabel[community[*m as usize] as usize];
        }
        if coarse.len() == ug.len() {
            break;
        }
        ug = coarse;
    }
    membership
}

/// Community groups in bipartite terms.
pub fn louvain_communities(g: &BipartiteGraph, params: &LouvainParams) -> Vec<SuspiciousGroup> {
    let membership = louvain_communities_raw(g, params);
    let nu = g.num_users();
    let mut by: std::collections::HashMap<u32, SuspiciousGroup> = std::collections::HashMap::new();
    for (u, &label) in membership.iter().enumerate().take(nu) {
        by.entry(label).or_default().users.push(UserId(u as u32));
    }
    for v in 0..g.num_items() {
        by.entry(membership[nu + v])
            .or_default()
            .items
            .push(ItemId(v as u32));
    }
    let mut out: Vec<SuspiciousGroup> = by.into_values().collect();
    out.sort_by_key(|c| (c.users.first().copied(), c.items.first().copied()));
    out
}

/// Louvain + UI screening.
pub fn louvain_detect(
    g: &BipartiteGraph,
    params: &LouvainParams,
    ricd_params: &RicdParams,
) -> DetectionResult {
    let sw = Stopwatch::start();
    let comms = louvain_communities(g, params);
    let detect_time = sw.elapsed();
    with_ui(g, comms, ricd_params, detect_time)
}

/// Newman–Girvan modularity of a partition (for tests and ablations).
pub fn modularity(g: &BipartiteGraph, membership: &[u32]) -> f64 {
    let ug = UGraph::from_bipartite(g);
    let m2 = 2.0 * ug.total_weight;
    if m2 == 0.0 {
        return 0.0;
    }
    let n_comm = membership.iter().copied().max().unwrap_or(0) as usize + 1;
    let mut internal = vec![0.0; n_comm];
    let mut degree = vec![0.0; n_comm];
    for x in 0..ug.len() {
        let cx = membership[x] as usize;
        degree[cx] += ug.weighted_degree(x);
        for &(y, w) in &ug.adj[x] {
            if membership[y as usize] as usize == cx {
                internal[cx] += w; // counted twice (both directions)
            }
        }
    }
    (0..n_comm)
        .map(|c| internal[c] / m2 - (degree[c] / m2).powi(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::GraphBuilder;

    fn two_blocks() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..12u32 {
            for v in 0..11u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        for u in 20..32u32 {
            for v in 20..31u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        // Weak bridge.
        b.add_click(UserId(0), ItemId(20), 1);
        b.build()
    }

    #[test]
    fn separates_blocks_despite_bridge() {
        let g = two_blocks();
        let membership = louvain_communities_raw(&g, &LouvainParams::default());
        let nu = g.num_users();
        assert!(membership[..12].iter().all(|&c| c == membership[0]));
        assert!(membership[20..32].iter().all(|&c| c == membership[20]));
        assert_ne!(membership[0], membership[20]);
        // Items follow their block.
        assert_eq!(membership[nu], membership[0]);
        assert_eq!(membership[nu + 20], membership[20]);
    }

    #[test]
    fn partition_beats_trivial_modularity() {
        let g = two_blocks();
        let membership = louvain_communities_raw(&g, &LouvainParams::default());
        let q = modularity(&g, &membership);
        let trivial = vec![0u32; g.num_users() + g.num_items()];
        assert!(q > modularity(&g, &trivial));
        assert!(q > 0.3, "clear two-block structure, q = {q}");
    }

    #[test]
    fn communities_partition_nodes() {
        let g = two_blocks();
        let comms = louvain_communities(&g, &LouvainParams::default());
        let users: usize = comms.iter().map(|c| c.users.len()).sum();
        let items: usize = comms.iter().map(|c| c.items.len()).sum();
        assert_eq!(users, g.num_users());
        assert_eq!(items, g.num_items());
    }

    #[test]
    fn detect_with_ui() {
        let g = two_blocks();
        let r = louvain_detect(&g, &LouvainParams::default(), &RicdParams::default());
        assert_eq!(r.groups.len(), 2);
    }

    #[test]
    fn empty_graph_safe() {
        let g = GraphBuilder::new().build();
        let comms = louvain_communities(&g, &LouvainParams::default());
        assert!(comms.is_empty());
        assert_eq!(modularity(&g, &[]), 0.0);
    }

    #[test]
    fn singleton_edges_stay_together() {
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(0), 5);
        let g = b.build();
        let membership = louvain_communities_raw(&g, &LouvainParams::default());
        assert_eq!(membership[0], membership[1], "u0 and i0 merge");
    }
}
