//! Label Propagation (Raghavan et al. 2007), as offered by Grape and used in
//! the paper: every node starts with a unique label, then for `max_round`
//! rounds each node adopts the label most frequent among its neighbors
//! (smallest label on ties, which makes the algorithm deterministic).
//! Rounds are bulk-synchronous on the worker pool, matching Grape's model.

use crate::ui::with_ui;
use ricd_core::params::RicdParams;
use ricd_core::result::{DetectionResult, SuspiciousGroup};
use ricd_engine::{Stopwatch, WorkerPool};
use ricd_graph::{BipartiteGraph, ItemId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// LPA parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LpaParams {
    /// Maximum propagation rounds (paper default: 20).
    pub max_round: usize,
    /// Weight votes by click counts instead of counting each neighbor once.
    pub weighted: bool,
}

impl Default for LpaParams {
    fn default() -> Self {
        Self {
            max_round: 20,
            weighted: false,
        }
    }
}

/// One bulk-synchronous label update for one side.
///
/// `labels` are global: users occupy `0..U`, items `U..U+V`.
fn best_label<I: Iterator<Item = (u32, u32)>>(neighbors: I, weighted: bool, fallback: u32) -> u32 {
    // (label → votes); small maps dominate, HashMap is fine here.
    let mut votes: HashMap<u32, u64> = HashMap::new();
    for (label, clicks) in neighbors {
        *votes.entry(label).or_default() += if weighted { clicks as u64 } else { 1 };
    }
    votes
        .into_iter()
        // Max votes, ties by smallest label.
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(l, _)| l)
        .unwrap_or(fallback)
}

/// Runs LPA and returns the per-node labels `(user_labels, item_labels)`.
pub fn propagate(
    g: &BipartiteGraph,
    params: &LpaParams,
    pool: &WorkerPool,
) -> (Vec<u32>, Vec<u32>) {
    let num_users = g.num_users();
    // Unique initial labels: users get their id, items get U + id.
    let mut user_labels: Vec<u32> = (0..num_users as u32).collect();
    let mut item_labels: Vec<u32> = (0..g.num_items() as u32)
        .map(|v| num_users as u32 + v)
        .collect();

    for _ in 0..params.max_round {
        let new_user: Vec<u32> = pool.map_vertices(num_users, |u| {
            let uid = UserId(u as u32);
            best_label(
                g.user_neighbors(uid)
                    .map(|(v, c)| (item_labels[v.index()], c)),
                params.weighted,
                user_labels[u],
            )
        });
        let new_item: Vec<u32> = pool.map_vertices(g.num_items(), |v| {
            let vid = ItemId(v as u32);
            best_label(
                g.item_neighbors(vid).map(|(u, c)| (new_user[u.index()], c)),
                params.weighted,
                item_labels[v],
            )
        });
        let converged = new_user == user_labels && new_item == item_labels;
        user_labels = new_user;
        item_labels = new_item;
        if converged {
            break;
        }
    }
    (user_labels, item_labels)
}

/// Groups nodes by final label.
pub fn communities(user_labels: &[u32], item_labels: &[u32]) -> Vec<SuspiciousGroup> {
    let mut by_label: HashMap<u32, SuspiciousGroup> = HashMap::new();
    for (u, &l) in user_labels.iter().enumerate() {
        by_label.entry(l).or_default().users.push(UserId(u as u32));
    }
    for (v, &l) in item_labels.iter().enumerate() {
        by_label.entry(l).or_default().items.push(ItemId(v as u32));
    }
    let mut out: Vec<SuspiciousGroup> = by_label.into_values().collect();
    out.sort_by_key(|c| (c.users.first().copied(), c.items.first().copied()));
    out
}

/// LPA + UI screening, producing a comparable [`DetectionResult`].
pub fn lpa_detect(
    g: &BipartiteGraph,
    params: &LpaParams,
    ricd_params: &RicdParams,
    pool: &WorkerPool,
) -> DetectionResult {
    let sw = Stopwatch::start();
    let (ul, il) = propagate(g, params, pool);
    let comms = communities(&ul, &il);
    let detect_time = sw.elapsed();
    with_ui(g, comms, ricd_params, detect_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::GraphBuilder;

    /// Two disjoint dense blocks.
    fn two_blocks() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..12u32 {
            for v in 0..11u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        for u in 20..32u32 {
            for v in 20..31u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        b.build()
    }

    #[test]
    fn disjoint_blocks_get_distinct_labels() {
        let g = two_blocks();
        let (ul, il) = propagate(&g, &LpaParams::default(), &WorkerPool::new(2));
        // Within-block labels agree.
        assert!(ul[..12].iter().all(|&l| l == ul[0]));
        assert!(ul[20..32].iter().all(|&l| l == ul[20]));
        assert_ne!(ul[0], ul[20]);
        assert!(il[..11].iter().all(|&l| l == ul[0]));
    }

    #[test]
    fn communities_partition_nodes() {
        let g = two_blocks();
        let (ul, il) = propagate(&g, &LpaParams::default(), &WorkerPool::new(2));
        let comms = communities(&ul, &il);
        let total_users: usize = comms.iter().map(|c| c.users.len()).sum();
        let total_items: usize = comms.iter().map(|c| c.items.len()).sum();
        assert_eq!(total_users, g.num_users());
        assert_eq!(total_items, g.num_items());
    }

    #[test]
    fn detect_finds_both_blocks() {
        let g = two_blocks();
        let r = lpa_detect(
            &g,
            &LpaParams::default(),
            &RicdParams::default(),
            &WorkerPool::new(2),
        );
        assert_eq!(r.groups.len(), 2);
        assert!(r.timings.get("detect").is_some());
    }

    #[test]
    fn zero_rounds_keeps_unique_labels() {
        let g = two_blocks();
        let p = LpaParams {
            max_round: 0,
            ..LpaParams::default()
        };
        let (ul, _) = propagate(&g, &p, &WorkerPool::new(2));
        let mut sorted = ul.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), ul.len(), "labels untouched");
    }

    #[test]
    fn weighted_votes_follow_heavy_edges() {
        // u0 is pulled between i0 (1 click) and i1 (10 clicks): weighted LPA
        // groups it with i1's side.
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(0), 1);
        b.add_click(UserId(0), ItemId(1), 10);
        // anchor each item in its own block
        for u in 1..4u32 {
            b.add_click(UserId(u), ItemId(0), 5);
        }
        for u in 4..7u32 {
            b.add_click(UserId(u), ItemId(1), 5);
        }
        let g = b.build();
        let p = LpaParams {
            weighted: true,
            max_round: 20,
        };
        let (ul, il) = propagate(&g, &p, &WorkerPool::new(1));
        assert_eq!(ul[0], il[1], "u0 joins the heavy item's community");
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let g = two_blocks();
        let a = propagate(&g, &LpaParams::default(), &WorkerPool::new(1));
        let b = propagate(&g, &LpaParams::default(), &WorkerPool::new(4));
        assert_eq!(a, b);
    }
}
