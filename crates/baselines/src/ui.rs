//! The "+UI" adapter: attach RICD's suspicious-group-screening module to a
//! baseline's raw communities (Section VI-B: "for the sake of fairness, we
//! add the suspicious group screening module to all baselines … we filter
//! out communities that do not include enough users and items (less than
//! k₁ and k₂), then perform user behavior check and item behavior
//! verification in every remaining community").

use ricd_core::params::RicdParams;
use ricd_core::result::{DetectionResult, SuspiciousGroup};
use ricd_core::screen::screen_groups;
use ricd_engine::timing::TimingReport;
use ricd_graph::BipartiteGraph;
use std::time::Duration;

/// Applies the size filter and screening to raw communities and assembles a
/// [`DetectionResult`]. `detect_time` is the baseline's own elapsed time,
/// recorded under the phase name `detect`; screening time is measured here
/// under `screen` (the Fig 8b split).
pub fn with_ui(
    g: &BipartiteGraph,
    communities: Vec<SuspiciousGroup>,
    params: &RicdParams,
    detect_time: Duration,
) -> DetectionResult {
    let sized: Vec<SuspiciousGroup> = communities
        .into_iter()
        .filter(|c| c.users.len() >= params.k1 && c.items.len() >= params.k2)
        .collect();

    let start = std::time::Instant::now();
    let (groups, _) = screen_groups(g, sized, params);
    let screen_time = start.elapsed();

    let (ranked_users, ranked_items) = ricd_core::identify::rank_output(g, &groups);

    let mut result = DetectionResult {
        groups,
        ranked_users,
        ranked_items,
        timings: TimingReport {
            phases: vec![
                ("detect".to_string(), detect_time),
                ("screen".to_string(), screen_time),
            ],
        },
        status: Default::default(),
    };
    result.prune_empty();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::{GraphBuilder, ItemId, UserId};

    fn graph() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        // Hot item background.
        for u in 100..1200u32 {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        // 12 workers x 10 targets.
        for u in 0..12u32 {
            b.add_click(UserId(u), ItemId(0), 1);
            for v in 1..11u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        b.build()
    }

    #[test]
    fn small_communities_filtered() {
        let g = graph();
        let communities = vec![SuspiciousGroup {
            users: (0..5).map(UserId).collect(), // < k1
            items: (1..11).map(ItemId).collect(),
            ridden_hot_items: vec![],
        }];
        let r = with_ui(&g, communities, &RicdParams::default(), Duration::ZERO);
        assert!(r.groups.is_empty());
    }

    #[test]
    fn screening_runs_on_surviving_community() {
        let g = graph();
        let communities = vec![SuspiciousGroup {
            users: (0..12).map(UserId).collect(),
            items: (0..11).map(ItemId).collect(), // includes the hot item
            ridden_hot_items: vec![],
        }];
        let r = with_ui(
            &g,
            communities,
            &RicdParams::default(),
            Duration::from_millis(7),
        );
        assert_eq!(r.groups.len(), 1);
        assert_eq!(r.groups[0].users.len(), 12);
        assert_eq!(r.groups[0].items.len(), 10, "hot item screened out");
        assert_eq!(r.groups[0].ridden_hot_items, vec![ItemId(0)]);
        assert_eq!(r.timings.get("detect"), Some(Duration::from_millis(7)));
        assert!(r.timings.get("screen").is_some());
        assert_eq!(r.ranked_users.len(), 12);
    }
}
