//! Property tests for the baseline detectors: partition validity,
//! determinism, and structural guarantees on random graphs.

use proptest::prelude::*;
use ricd_baselines::copycatch::{enumerate_bicliques, CopyCatchParams};
use ricd_baselines::fraudar::{fraudar_blocks, FraudarParams};
use ricd_baselines::louvain::{louvain_communities_raw, modularity, LouvainParams};
use ricd_baselines::lpa::{communities, propagate, LpaParams};
use ricd_engine::WorkerPool;
use ricd_graph::{BipartiteGraph, GraphBuilder, ItemId, UserId};
use std::time::Duration;

fn graphs() -> impl Strategy<Value = BipartiteGraph> {
    proptest::collection::vec((0u32..40, 0u32..30, 1u32..10), 1..250).prop_map(|recs| {
        let mut b = GraphBuilder::new();
        for (u, v, c) in recs {
            b.add_click(UserId(u), ItemId(v), c);
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// LPA communities partition the node set and are worker-count
    /// independent.
    #[test]
    fn lpa_partitions_and_is_deterministic(g in graphs()) {
        let p = LpaParams::default();
        let (u1, i1) = propagate(&g, &p, &WorkerPool::new(1));
        let (u4, i4) = propagate(&g, &p, &WorkerPool::new(4));
        prop_assert_eq!((&u1, &i1), (&u4, &i4));
        let comms = communities(&u1, &i1);
        let users: usize = comms.iter().map(|c| c.users.len()).sum();
        let items: usize = comms.iter().map(|c| c.items.len()).sum();
        prop_assert_eq!(users, g.num_users());
        prop_assert_eq!(items, g.num_items());
    }

    /// Louvain's final partition never has *worse* modularity than the
    /// all-singletons start, and community ids form a partition.
    #[test]
    fn louvain_improves_modularity(g in graphs()) {
        let membership = louvain_communities_raw(&g, &LouvainParams::default());
        prop_assert_eq!(membership.len(), g.num_users() + g.num_items());
        let singletons: Vec<u32> = (0..membership.len() as u32).collect();
        let q = modularity(&g, &membership);
        let q0 = modularity(&g, &singletons);
        prop_assert!(q >= q0 - 1e-9, "q {q} < singleton q {q0}");
    }

    /// Every FRAUDAR block is non-empty, disjoint from later blocks, and
    /// its score is non-negative.
    #[test]
    fn fraudar_blocks_disjoint(g in graphs()) {
        let blocks = fraudar_blocks(&g, &FraudarParams::default());
        let mut seen_users = std::collections::HashSet::new();
        let mut seen_items = std::collections::HashSet::new();
        for b in &blocks {
            prop_assert!(!b.users.is_empty() || !b.items.is_empty());
            prop_assert!(b.score >= 0.0);
            for u in &b.users {
                prop_assert!(seen_users.insert(*u), "user {u} in two blocks");
            }
            for v in &b.items {
                prop_assert!(seen_items.insert(*v), "item {v} in two blocks");
            }
        }
    }

    /// Every structure COPYCATCH reports is a genuine biclique of at least
    /// (m, n), and maximal.
    #[test]
    fn copycatch_reports_true_maximal_bicliques(g in graphs()) {
        let p = CopyCatchParams {
            m: 3,
            n: 3,
            time_budget: Duration::from_secs(2),
            max_results: 50,
            max_results_per_seed: 10,
        };
        let (found, _) = enumerate_bicliques(&g, &p);
        for b in &found {
            prop_assert!(b.users.len() >= p.m && b.items.len() >= p.n);
            // Completeness: every (user, item) pair is an edge.
            for &u in &b.users {
                for &v in &b.items {
                    prop_assert!(g.clicks(u, v).is_some(), "({u},{v}) missing");
                }
            }
            // User-maximality: no user outside is adjacent to all items.
            for u in g.users() {
                if b.users.contains(&u) {
                    continue;
                }
                let covers_all = b.items.iter().all(|&v| g.clicks(u, v).is_some());
                prop_assert!(!covers_all, "{u} extends the user side");
            }
        }
    }
}
