//! Ablations of the design choices DESIGN.md calls out:
//!
//! * **SquarePruning strategy** — bulk-synchronous parallel rounds (the
//!   Grape formulation) vs the literal sequential pseudocode with
//!   `reduce2Hop` ordering. Both reach the same fixpoint; this measures the
//!   wall-clock difference.
//! * **Worker count** — the engine's scaling from 1 to 16 workers (the
//!   paper's default worker count).
//! * **FRAUDAR edge weighting** — binary adjacency (the released code /
//!   our default) vs click-count multiplicities.
//! * **COPYCATCH budget curve** — quality as a function of the enumeration
//!   budget, the knob the paper's degenerate variant lives or dies by.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ricd_baselines::copycatch::{copycatch_detect, CopyCatchParams};
use ricd_baselines::fraudar::{fraudar_detect, FraudarParams};
use ricd_bench::eval_dataset;
use ricd_core::extract::SquareStrategy;
use ricd_core::prelude::*;
use ricd_engine::WorkerPool;
use ricd_eval::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let ds = eval_dataset();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    // SquarePruning strategy.
    for strategy in [SquareStrategy::Parallel, SquareStrategy::SequentialOrdered] {
        let pipeline = RicdPipeline::new(RicdParams::default()).with_strategy(strategy);
        group.bench_with_input(
            BenchmarkId::new("square_strategy", format!("{strategy:?}")),
            &pipeline,
            |b, p| b.iter(|| black_box(p.run(&ds.graph))),
        );
    }

    // Worker scaling.
    for workers in [1usize, 2, 4, 8, 16] {
        let pipeline = RicdPipeline::new(RicdParams::default()).with_pool(WorkerPool::new(workers));
        group.bench_with_input(
            BenchmarkId::new("ricd_workers", workers),
            &pipeline,
            |b, p| b.iter(|| black_box(p.run(&ds.graph))),
        );
    }

    // FRAUDAR weighting.
    eprintln!("\n=== Ablation: FRAUDAR edge weighting ===");
    for use_clicks in [false, true] {
        let params = FraudarParams {
            use_click_counts: use_clicks,
            ..FraudarParams::default()
        };
        let r = fraudar_detect(&ds.graph, &params, &RicdParams::default());
        let e = evaluate(&r, &ds.truth);
        eprintln!(
            "use_click_counts={use_clicks}: precision={:.3} recall={:.3} f1={:.3}",
            e.precision, e.recall, e.f1
        );
        group.bench_with_input(
            BenchmarkId::new("fraudar_weighting", use_clicks),
            &params,
            |b, p| b.iter(|| black_box(fraudar_detect(&ds.graph, p, &RicdParams::default()))),
        );
    }

    // Naive algorithm's T_risk trade-off ("the risk threshold is used to
    // balance the trade-off between precision and recall", Section V-A).
    eprintln!("\n=== Ablation: naive algorithm T_risk curve ===");
    for t_risk in [100.0f64, 500.0, 2_000.0, 8_000.0] {
        let params = ricd_core::naive::NaiveParams {
            t_hot: 1_000,
            t_risk_item: t_risk,
            t_risk_user: 12.0,
        };
        let r = ricd_core::naive::naive_detect(&ds.graph, &params, &WorkerPool::new(4));
        let e = evaluate(&r, &ds.truth);
        eprintln!(
            "t_risk={t_risk}: precision={:.3} recall={:.3} f1={:.3} output={}",
            e.precision, e.recall, e.f1, e.num_output
        );
    }

    // COPYCATCH budget curve (quality only; timing IS the budget).
    eprintln!("\n=== Ablation: COPYCATCH budget curve ===");
    for secs in [1u64, 2, 5, 10] {
        let params = CopyCatchParams {
            time_budget: Duration::from_secs(secs),
            ..CopyCatchParams::default()
        };
        let r = copycatch_detect(&ds.graph, &params, &RicdParams::default());
        let e = evaluate(&r, &ds.truth);
        eprintln!(
            "budget={secs}s: precision={:.3} recall={:.3} f1={:.3}",
            e.precision, e.recall, e.f1
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
