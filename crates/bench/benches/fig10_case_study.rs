//! Regenerates **Fig 10**: the Section VII case-study campaign timeline —
//! a daily RICD job over the campaign's cumulative click snapshots, the
//! detection day, and the post-cleaning traffic series.
//!
//! Paper shape: fake traffic ramps before the campaign (mission posted
//! early), normal traffic grows rapidly once the campaign starts (inflated
//! I2I exposure), detection on ~day 9 cleans the fake clicks, traffic falls
//! back to base, and the sellers delist on day 13.

use criterion::{criterion_group, criterion_main, Criterion};
use ricd_datagen::prelude::*;
use ricd_eval::figures::fig10;
use ricd_eval::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let campaign = CampaignConfig::default();
    let cfg = MethodConfig::default();

    let report = fig10(&campaign, &cfg, 0.5).expect("campaign simulates");
    eprintln!("\n=== Fig 10: historical traffic of the target items ===");
    eprintln!(
        "detection day: {:?} (worker recall {:.2})",
        report.detection_day, report.worker_recall_at_detection
    );
    eprintln!("day  normal  fake   (post-cleaning series)");
    for d in &report.cleaned {
        let bar = "#".repeat(((d.normal_clicks + d.fake_clicks) / 20) as usize);
        eprintln!(
            "{:>3}  {:>6}  {:>5}  {bar}",
            d.day, d.normal_clicks, d.fake_clicks
        );
    }

    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("daily_detection_job", |b| {
        let timeline = simulate_campaign(&campaign).unwrap();
        let g = timeline.cumulative_graph(9);
        b.iter(|| black_box(cfg.run(Method::Ricd, &g)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
