//! Regenerates **Fig 8a** (precision/recall/F1 of RICD vs the six
//! baselines, all "+UI") and **Fig 8b** (elapsed time; COPYCATCH and
//! FRAUDAR excluded as in the paper).
//!
//! Paper shape to check against: RICD best F1; LPA ≈ recall-strong /
//! precision-weaker; FRAUDAR precision-strong / recall-weaker; CN, Naive,
//! Louvain, COPYCATCH trail; Naive fastest, LPA slightly faster than RICD,
//! CN/Louvain ≈ 35%+ slower than RICD.

use criterion::{criterion_group, criterion_main, Criterion};
use ricd_bench::eval_dataset;
use ricd_eval::figures::fig8;
use ricd_eval::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let ds = eval_dataset();
    let cfg = MethodConfig {
        copycatch_budget: Duration::from_secs(10),
        ..MethodConfig::default()
    };

    let outcomes = fig8(&ds.graph, &ds.truth, &cfg);
    eprintln!("\n=== Fig 8a: quality comparison (all methods +UI) ===");
    eprintln!("{}", report::format_quality(&outcomes));
    eprintln!("=== Fig 8b: elapsed time (COPYCATCH/FRAUDAR excluded) ===");
    let timed: Vec<_> = outcomes
        .iter()
        .filter(|o| Method::fig8b_lineup().contains(&o.method))
        .cloned()
        .collect();
    eprintln!("{}", report::format_timing(&timed));

    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    for method in Method::fig8b_lineup() {
        group.bench_function(method.name(), |b| {
            b.iter(|| black_box(cfg.run(method, &ds.graph)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
