//! Regenerates **Fig 9a–e**: RICD's sensitivity to `k₁`, `k₂`, `α`,
//! `T_click`, `T_hot` around the paper's defaults.
//!
//! Paper shape: monotone precision/recall trade-offs everywhere except
//! `T_hot`, whose recall peaks at an interior value; `k₁` and `k₂` move
//! precision in opposite directions (attacks are many-item / few-user).

use criterion::{criterion_group, criterion_main, Criterion};
use ricd_bench::sensitivity_dataset;
use ricd_eval::figures::fig9;
use ricd_eval::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ds = sensitivity_dataset();
    let cfg = MethodConfig::default();

    let sweep = fig9(&ds.graph, &ds.truth, &cfg);
    eprintln!("\n=== Fig 9: parameter sensitivity of RICD ===");
    eprintln!("{}", report::format_sensitivity(&sweep));

    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("full_sweep", |b| {
        b.iter(|| black_box(fig9(&ds.graph, &ds.truth, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
