//! Survival-kernel shoot-out: the three two-hop kernels (early-exit wedge
//! scan, cache-blocked SWAR bitset, sorted intersection) answering the
//! same SquarePruning survival query on the three shapes that span the
//! dispatch space:
//!
//! * **hub** — organic anchors riding a handful of ultra-popular items,
//!   the shape the blocked kernel exists for: the wedge scan must walk
//!   every hot adjacency list edge by edge, the blocked kernel ANDs
//!   64 candidates per word against the hub registry.
//! * **sparse** — the organic long tail (degree ≈ 3): the blocked
//!   kernel's open phase *is* the wedge walk here, so the two should be
//!   within noise of each other.
//! * **biclique** — a planted dense block, the attack structure itself:
//!   every kernel early-exits almost immediately.
//!
//! The measured numbers are what justify the `KernelPolicy` defaults in
//! `ricd-core/src/params.rs` — see the doc comment there and the
//! DESIGN.md "Wedge kernel selection" section. Run with
//! `cargo bench --bench kernels`.

use criterion::{criterion_group, criterion_main, Criterion};
use ricd_graph::twohop::{
    blocked_user_has_qualified_neighbors, user_has_qualified_neighbors,
    user_has_qualified_neighbors_sorted, CommonNeighborScratch, HubBitmaps, KernelScratch,
    SortedNeighborScratch,
};
use ricd_graph::{BipartiteGraph, GraphBuilder, GraphView, ItemId, UserId};
use std::hint::black_box;

/// Deterministic splitmix64 so the shapes are identical across runs.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `n` organic users each riding 12 random picks out of `hubs` hot items,
/// plus two private items each (the cheap prefix the wedge scan loves).
/// With `hubs` ≫ 12 almost no user pair shares ≥ 10 items, so survival
/// queries cannot early-exit — the shape where candidate mass is huge but
/// unqualified, which is exactly what the blocked kernel is for.
fn hub_world(n: u32, hubs: u32) -> BipartiteGraph {
    let mut b = GraphBuilder::new();
    let mut rng = 0x40b_u64 ^ 0xdead_beef;
    for u in 0..n {
        for _ in 0..12 {
            b.add_click(
                UserId(u),
                ItemId((splitmix(&mut rng) % hubs as u64) as u32),
                1,
            );
        }
        b.add_click(UserId(u), ItemId(hubs + 2 * u), 1);
        b.add_click(UserId(u), ItemId(hubs + 2 * u + 1), 1);
    }
    b.build()
}

/// Organic tail: `n` users clicking ~3 random mid-tail items.
fn sparse_world(n: u32) -> BipartiteGraph {
    let mut b = GraphBuilder::new();
    let mut rng = 0x5eed_u64;
    for u in 0..n {
        for _ in 0..3 {
            b.add_click(
                UserId(u),
                ItemId((splitmix(&mut rng) % (n as u64 / 2)) as u32),
                1,
            );
        }
    }
    b.build()
}

/// A planted k×k biclique (the attack structure) plus background noise.
fn biclique_world(k: u32) -> BipartiteGraph {
    let mut b = GraphBuilder::new();
    for u in 0..k {
        for v in 0..k {
            b.add_click(UserId(u), ItemId(v), 13);
        }
    }
    let mut rng = 0xfeed_u64;
    for u in 0..4 * k {
        for _ in 0..3 {
            b.add_click(
                UserId(k + u),
                ItemId(k + (splitmix(&mut rng) % (2 * k) as u64) as u32),
                1,
            );
        }
    }
    b.build()
}

struct Shape {
    name: &'static str,
    g: BipartiteGraph,
    /// Anchors to query (subset so the wedge kernel's O(Σ deg(v)) cost per
    /// anchor keeps the bench under a second).
    anchors: Vec<UserId>,
    bound: u32,
    need: usize,
}

fn shapes() -> Vec<Shape> {
    let hub_n = 4096u32;
    let hub = Shape {
        name: "hub",
        g: hub_world(hub_n, 64),
        anchors: (0..64).map(UserId).collect(),
        // The paper's defaults: bound = ⌈α·k₂⌉ = 10, need = k₁ = 10.
        bound: 10,
        need: 10,
    };
    let sparse_n = 8192u32;
    let sparse = Shape {
        name: "sparse",
        g: sparse_world(sparse_n),
        anchors: (0..sparse_n).step_by(8).map(UserId).collect(),
        bound: 2,
        need: 3,
    };
    let k = 64u32;
    let biclique = Shape {
        name: "biclique",
        g: biclique_world(k),
        anchors: (0..k).map(UserId).collect(),
        bound: k,
        need: (k - 1) as usize,
    };
    vec![hub, sparse, biclique]
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);

    for shape in shapes() {
        let view = GraphView::full(&shape.g);
        let hubs = HubBitmaps::build(&view, 64, 64);
        let (bound, need) = (shape.bound, shape.need);

        // Sanity: all three kernels agree on this shape before timing it.
        {
            let mut w = CommonNeighborScratch::new(shape.g.num_users());
            let mut s = SortedNeighborScratch::new(shape.g.num_users());
            let mut k = KernelScratch::new(shape.g.num_users());
            for &u in &shape.anchors {
                let want = user_has_qualified_neighbors(&view, u, bound, need, &mut w);
                assert_eq!(
                    blocked_user_has_qualified_neighbors(&view, &hubs, u, bound, need, &mut k),
                    want
                );
                assert_eq!(
                    user_has_qualified_neighbors_sorted(&view, u, bound, need, &mut s),
                    want
                );
            }
        }

        group.bench_function(format!("{}/wedge", shape.name), |b| {
            let mut scratch = CommonNeighborScratch::new(shape.g.num_users());
            b.iter(|| {
                let mut survivors = 0u32;
                for &u in &shape.anchors {
                    survivors += u32::from(user_has_qualified_neighbors(
                        &view,
                        u,
                        bound,
                        need,
                        &mut scratch,
                    ));
                }
                black_box(survivors)
            })
        });

        group.bench_function(format!("{}/blocked", shape.name), |b| {
            let mut scratch = KernelScratch::new(shape.g.num_users());
            b.iter(|| {
                let mut survivors = 0u32;
                for &u in &shape.anchors {
                    survivors += u32::from(blocked_user_has_qualified_neighbors(
                        &view,
                        &hubs,
                        u,
                        bound,
                        need,
                        &mut scratch,
                    ));
                }
                black_box(survivors)
            })
        });

        group.bench_function(format!("{}/sorted", shape.name), |b| {
            let mut scratch = SortedNeighborScratch::new(shape.g.num_users());
            b.iter(|| {
                let mut survivors = 0u32;
                for &u in &shape.anchors {
                    survivors += u32::from(user_has_qualified_neighbors_sorted(
                        &view,
                        u,
                        bound,
                        need,
                        &mut scratch,
                    ));
                }
                black_box(survivors)
            })
        });

        group.bench_function(format!("{}/hub_registry_build", shape.name), |b| {
            b.iter(|| black_box(HubBitmaps::build(&view, 64, 64)))
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
