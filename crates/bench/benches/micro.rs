//! Component microbenches: the substrate operations the complexity analysis
//! (Section V-D) reasons about, measured in isolation — CSR construction,
//! view removals, wedge counting, connected components, I2I scoring, and
//! the parallel engine's superstep overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use ricd_bench::eval_dataset;
use ricd_core::i2i;
use ricd_engine::WorkerPool;
use ricd_graph::twohop::{self, CommonNeighborScratch};
use ricd_graph::{components, GraphBuilder, GraphView, ItemId, UserId};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ds = eval_dataset();
    let g = &ds.graph;

    let mut group = c.benchmark_group("micro");

    group.bench_function("csr_build_90k_edges", |b| {
        let edges: Vec<_> = g.edges().collect();
        b.iter(|| {
            let mut builder = GraphBuilder::with_capacity(edges.len());
            builder.extend(edges.iter().copied());
            black_box(builder.build())
        })
    });

    group.bench_function("view_full_init", |b| {
        b.iter(|| black_box(GraphView::full(g)))
    });

    group.bench_function("view_remove_1000_users", |b| {
        b.iter(|| {
            let mut view = GraphView::full(g);
            for u in 0..1000u32 {
                view.remove_user(UserId(u));
            }
            black_box(view.alive_users())
        })
    });

    group.bench_function("wedge_count_100_users", |b| {
        let view = GraphView::full(g);
        let mut scratch = CommonNeighborScratch::new(g.num_users());
        b.iter(|| {
            let mut acc = 0u64;
            for u in 0..100u32 {
                twohop::for_each_user_common_neighbor(&view, UserId(u), &mut scratch, |_, c| {
                    acc += c as u64;
                });
            }
            black_box(acc)
        })
    });

    group.bench_function("connected_components", |b| {
        let view = GraphView::full(g);
        b.iter(|| black_box(components::connected_components(&view)))
    });

    group.bench_function("i2i_ranking_hot_item", |b| {
        // The most-clicked item is the hottest recommendation anchor.
        let hot = g
            .items()
            .max_by_key(|&v| g.item_total_clicks(v))
            .unwrap_or(ItemId(0));
        b.iter(|| black_box(i2i::i2i_ranking(g, hot)))
    });

    group.bench_function("i2i_index_build_top20", |b| {
        let pool = WorkerPool::new(4);
        b.iter(|| black_box(ricd_recommender::I2iIndex::build(g, 20, &pool)))
    });

    for workers in [1usize, 4, 16] {
        group.bench_function(format!("engine_map_vertices_w{workers}"), |b| {
            let pool = WorkerPool::new(workers);
            b.iter(|| {
                black_box(
                    pool.map_vertices(g.num_users(), |u| g.user_total_clicks(UserId(u as u32))),
                )
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
