//! The Section V-D complexity claims, empirically: CorePruning is
//! `O(|U| + |V| + |E|)` and the full extraction is dominated by
//! SquarePruning's wedge work. We time the RICD pipeline across graph
//! scales (0.25×, 0.5×, 1×, 2× of the default) and print the per-module
//! split so the near-linear growth is visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ricd_bench::scaled_dataset;
use ricd_core::prelude::*;
use ricd_obs::MetricsRegistry;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);

    eprintln!("\n=== Scaling: RICD end-to-end across dataset scales ===");
    for factor in [0.25f64, 0.5, 1.0, 2.0] {
        let ds = scaled_dataset(factor);
        let registry = MetricsRegistry::new();
        let pipeline = RicdPipeline::new(RicdParams::default()).with_metrics(registry.clone());
        let r = pipeline.run(&ds.graph);
        let snap = registry.snapshot();
        let ms = |p: &str| snap.span_millis(&format!("pipeline/{p}"));
        eprintln!(
            "scale {factor:>4}x: users={:>6} edges={:>7} detect={:>8.1}ms screen={:>6.1}ms identify={:>6.1}ms groups={}",
            ds.graph.num_users(),
            ds.graph.num_edges(),
            ms("detect"),
            ms("screen"),
            ms("identify"),
            r.groups.len()
        );
        group.bench_with_input(BenchmarkId::new("ricd_end_to_end", factor), &ds, |b, ds| {
            b.iter(|| black_box(pipeline.run(&ds.graph)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
