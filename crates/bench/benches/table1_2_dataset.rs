//! Regenerates **Table I** (data scale), **Table II** (data statistics) and
//! the **Fig 2** click distributions, timing dataset generation and the
//! statistics passes.
//!
//! Paper values at 1000× this scale: 20M users / 4M items / 90M edges /
//! 200M clicks; user row (11.35, 4.32, 33.34); item row (54.94, 20.49,
//! 992.78); T_hot = 1,320; T_click = 12.

use criterion::{criterion_group, criterion_main, Criterion};
use ricd_bench::eval_dataset;
use ricd_datagen::prelude::*;
use ricd_eval::figures::dataset_report;
use std::hint::black_box;

fn print_report() {
    let ds = eval_dataset();
    let r = dataset_report(&ds.graph);
    eprintln!("\n=== Table I: data scale of the synthetic TaoBao_UI_Clicks ===");
    eprintln!(
        "users={} items={} edges={} total_clicks={}",
        r.scale.users, r.scale.items, r.scale.edges, r.scale.total_clicks
    );
    eprintln!("=== Table II: data statistics ===");
    eprintln!(
        "user: avg_clk={:.2} avg_cnt={:.2} stdev={:.2}",
        r.user_stats.avg_clk, r.user_stats.avg_cnt, r.user_stats.stdev
    );
    eprintln!(
        "item: avg_clk={:.2} avg_cnt={:.2} stdev={:.2}",
        r.item_stats.avg_clk, r.item_stats.avg_cnt, r.item_stats.stdev
    );
    eprintln!(
        "pareto: top-20% of items hold {:.1}% of clicks; derived T_hot={} T_click={}",
        r.pareto_top20_share * 100.0,
        r.t_hot_pareto,
        r.t_click_derived
    );
    eprintln!("=== Fig 2a: items' click distribution (log-binned) ===");
    for (lo, n) in r
        .item_distribution
        .bin_lower
        .iter()
        .zip(&r.item_distribution.count)
    {
        eprintln!("clicks>={lo:<8} items={n}");
    }
    eprintln!("=== Fig 2b: users' click distribution (log-binned) ===");
    for (lo, n) in r
        .user_distribution
        .bin_lower
        .iter()
        .zip(&r.user_distribution.count)
    {
        eprintln!("clicks>={lo:<8} users={n}");
    }
}

fn bench(c: &mut Criterion) {
    print_report();
    let mut group = c.benchmark_group("table1_2");
    group.sample_size(10);
    group.bench_function("generate_default_dataset", |b| {
        b.iter(|| black_box(generate(&DatasetConfig::default(), &AttackConfig::default()).unwrap()))
    });
    let ds = eval_dataset();
    group.bench_function("dataset_report", |b| {
        b.iter(|| black_box(dataset_report(&ds.graph)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
