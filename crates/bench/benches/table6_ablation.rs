//! Regenerates **Table VI** (effectiveness of suspicious group screening):
//! RICD-UI (no screening) → RICD-I (user check only) → RICD (full).
//!
//! Paper values: RICD-UI (0.03 / 0.82 / 0.06), RICD-I (0.14 / 0.78 / 0.23),
//! RICD (0.81 / 0.51 / 0.63) — precision rises sharply with each screening
//! step at some recall cost; full RICD wins on F1.

use criterion::{criterion_group, criterion_main, Criterion};
use ricd_bench::eval_dataset;
use ricd_eval::figures::table6;
use ricd_eval::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ds = eval_dataset();
    let cfg = MethodConfig::default();

    let rows = table6(&ds.graph, &ds.truth, &cfg);
    eprintln!("\n=== Table VI: effectiveness of suspicious group screening ===");
    eprintln!("{}", report::format_quality(&rows));

    let mut group = c.benchmark_group("table6");
    group.sample_size(10);
    for method in Method::table6_lineup() {
        group.bench_function(method.name(), |b| {
            b.iter(|| black_box(cfg.run(method, &ds.graph)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
