//! No-criterion adversarial-matrix bench: the adaptive-attacker artifact.
//!
//! Runs the full strategy × budget matrix from `ricd-eval::adversarial`
//! (every detector-aware strategy in `ricd-datagen::adversary`, with the
//! Module-3 feedback loop re-tuning thresholds between rounds) and writes
//! the report to `BENCH_adversarial.json`.
//!
//! Acceptance gates (the ISSUE's criteria, enforced on every CI run):
//!
//! * the library ships ≥ 4 detector-aware strategies;
//! * the fixed paper-optimal strategy stays at seed-level recall (≥ 0.8)
//!   at round 0 in every budget column;
//! * at least one adaptive strategy drops round-0 recall below 0.8 AND
//!   the feedback loop recovers ≥ 0.15 absolute recall within 3 rounds;
//! * no cell ever spends more clicks than its budget column grants;
//! * the report is deterministic — a re-run of a reduced matrix
//!   serializes byte-identically.
//!
//! The JSON artifact itself contains no timings or host-dependent fields,
//! so successive CI runs diff clean; wall time goes to stderr only.

use ricd_eval::adversarial::{run_adversarial, AdversarialConfig};
use std::time::Instant;

fn main() {
    let cfg = AdversarialConfig::tiny(0x5eed_0010);
    let t = Instant::now();
    let report = run_adversarial(&cfg).expect("matrix completes");
    eprintln!(
        "adversarial matrix: {} cells in {:.0}ms",
        report.cells.len(),
        t.elapsed().as_secs_f64() * 1e3
    );
    for c in &report.cells {
        eprintln!(
            "{:<18} budget {:>6}: r0 {:.3} final {:.3} recovery {:+.3} rounds {} converged {}",
            c.strategy,
            c.budget,
            c.round0_recall,
            c.final_recall,
            c.recovery,
            c.rounds.len(),
            c.converged
        );
    }

    assert!(
        report.strategies.len() >= 4,
        "strategy library shrank: {:?}",
        report.strategies
    );
    for c in &report.cells {
        assert!(
            c.injected_clicks <= c.budget,
            "{} overspent its budget: {c:?}",
            c.strategy
        );
    }
    for &budget in &report.budgets {
        let fixed = report
            .cell("paper_optimal", budget)
            .expect("fixed strategy present in every column");
        assert!(
            fixed.round0_recall >= 0.8,
            "paper-optimal cell lost seed-level recall: {fixed:?}"
        );
    }
    let recovered = report
        .cells
        .iter()
        .find(|c| c.round0_recall < 0.8 && c.recovery >= 0.15 && c.rounds.len() <= 4);
    assert!(
        recovered.is_some(),
        "no strategy broke the boundary and was recovered by feedback: {:?}",
        report
            .cells
            .iter()
            .map(|c| (c.strategy.as_str(), c.budget, c.round0_recall, c.recovery))
            .collect::<Vec<_>>()
    );

    // Determinism gate on a reduced matrix (full re-run would double the
    // bench; one column is enough to catch an unseeded draw).
    let reduced = AdversarialConfig {
        budgets: vec![6_000],
        ..AdversarialConfig::tiny(0x5eed_0010)
    };
    let a =
        serde_json::to_string(&run_adversarial(&reduced).expect("reduced run")).expect("serialize");
    let b = serde_json::to_string(&run_adversarial(&reduced).expect("reduced rerun"))
        .expect("serialize");
    assert_eq!(a, b, "adversarial matrix must be deterministic");

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_adversarial.json", format!("{json}\n"))
        .expect("write BENCH_adversarial.json");
    eprintln!(
        "wrote BENCH_adversarial.json ({} cells)",
        report.cells.len()
    );
}
