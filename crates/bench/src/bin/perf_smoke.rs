//! No-criterion perf smoke test for the extraction fixpoint.
//!
//! Runs Algorithm 3 on the default datagen world in both fixpoint modes
//! (full-rescan baseline vs. delta-driven), checks they reach the identical
//! alive set, and writes `BENCH_extract.json` with wall times and delta
//! counters so CI keeps a trajectory of the fixpoint's cost. One row is
//! recorded per worker count — always `workers = 1` (the serial floor) and,
//! when the host has more cores, `workers = available_parallelism` — so the
//! artifact also tracks how well the fixpoint scales.
//!
//! A second section runs whole-detection sharded vs. unsharded on the 100×
//! scale-down world (≈200k users / 40k items / ~900k edges). The unsharded
//! baseline is measured ONCE — median of `BASELINE_REPS` reps on the
//! host-parallel pool — and reused across every worker row, so the per-row
//! speedups move only when the *sharded* runtime moves (a re-measured
//! baseline used to inject its own noise into the trajectory). Each row
//! carries a per-phase wall breakdown (plan / local prune / reconcile /
//! merge, from the `shard.*_nanos` histograms) and the kernel mix the
//! dispatcher chose, and asserts the group outputs are identical. The
//! ≥ 1.3× sharded-vs-unsharded gate is enforced on ≥ 4-core hosts, where
//! the shard fan-out actually overlaps; on serial hosts only a 2×
//! blowup floor applies, because the kernel dispatcher made the unsharded
//! fixpoint fast enough that sharding's constant costs need real
//! parallelism to pay back.
//!
//! A third section runs sharded-only detection on the 1000× world
//! (≈2M users / 400k items / ~10M edges) for workers ∈ dedup{1, host},
//! once under the PR 7 wedge-only kernel and once under the dispatched
//! kernel mix. Group outputs must match, the dispatched run must beat
//! wedge-only by ≥ 1.3× per row, and the wall-clock budget is asserted on
//! the dispatched runtime — but only on hosts with
//! `available_parallelism() >= 4`, so single-core CI runners still produce
//! trajectory rows without flaking on a budget sized for parallel hardware.
//!
//! Deliberately not a criterion bench: one warm-up plus a few timed
//! iterations is enough to see a ≥2× regression, and the JSON artifact is
//! trivially diffable across runs.

use ricd_core::detect::{detect_groups_with, Seeds};
use ricd_core::extract::{extract_with, ExtractionStats, FixpointMode, SquareStrategy};
use ricd_core::kernel::KernelSelection;
use ricd_core::params::RicdParams;
use ricd_core::shard_run::{detect_groups_sharded, ShardConfig};
use ricd_datagen::prelude::*;
use ricd_engine::WorkerPool;
use ricd_graph::{CompactBigraph, GraphView};
use ricd_obs::{MetricsRegistry, MetricsSnapshot};
use serde::Serialize;
use std::time::Instant;

const ITERS: usize = 3;
/// The 100× world's detection runs take seconds, so best-of-two keeps the
/// sharded section's wall time bounded.
const SHARD_ITERS: usize = 2;
/// Reps for the once-measured unsharded baseline (median taken).
const BASELINE_REPS: usize = 3;
/// Wall-clock budget for one *dispatched-kernel* sharded detection pass
/// over the 1000× world. The wedge-only kernel measured ≈332s single-core;
/// the blocked-kernel dispatcher brings that to ≈140s single-core (2.38×),
/// so 180s carries >20% headroom already at one core, and a ≥4-core host
/// parallelizes the shard fan-out and reconciliation (together ≈99% of the
/// wall per the phase breakdown) on top of that. Tightened from the 300s
/// the wedge kernel needed. Only asserted when the host actually has
/// ≥ 4 cores.
const SCALE1000_BUDGET_MS: f64 = 180_000.0;
/// Per-row floor for dispatched-vs-wedge-only on the 1000× world.
const KERNEL_SPEEDUP_FLOOR: f64 = 1.3;

#[derive(Serialize)]
struct Report {
    world: WorldInfo,
    rows: Vec<WorkerRow>,
    alive_users: usize,
    alive_items: usize,
    sharded: ShardedSection,
    scale1000: Scale1000Section,
}

#[derive(Serialize)]
struct ShardedSection {
    world: WorldInfo,
    baseline: UnshardedBaseline,
    /// Whether the ≥1.3× sharded-vs-unsharded gate was asserted (≥4-core
    /// hosts only — on a serial host the shard fan-out cannot overlap, and
    /// since the kernel dispatcher took the *unsharded* fixpoint from ~8s
    /// to ~2s on this world, sharding's constant costs are no longer paid
    /// back without real parallelism).
    speedup_enforced: bool,
    rows: Vec<ShardedRow>,
}

/// The unsharded reference measurement, taken once and shared by every
/// sharded row so baseline noise cannot masquerade as a speedup trend.
#[derive(Serialize)]
struct UnshardedBaseline {
    pool_workers: usize,
    reps: usize,
    median_ms: f64,
    samples_ms: Vec<f64>,
}

#[derive(Serialize)]
struct ShardedRow {
    /// Worker count actually used by the shard runtime, read back from the
    /// `shard.workers` gauge it sets (not the requested pool size).
    workers: usize,
    sharded_ms: f64,
    speedup: f64,
    groups: usize,
    planned_shards: u64,
    exact_shards: u64,
    hash_shards: u64,
    replicated_items: u64,
    halo_users: u64,
    phases: PhaseBreakdown,
    kernels: KernelMix,
}

/// Where the sharded wall-clock went, summed from the `shard.*_nanos`
/// duration histograms of the row's best iteration. `prune` is the
/// parallel fan-out's coordinator-side wall, so phases are comparable
/// across worker counts.
#[derive(Serialize)]
struct PhaseBreakdown {
    plan_ms: f64,
    prune_ms: f64,
    reconcile_ms: f64,
    merge_ms: f64,
}

impl PhaseBreakdown {
    fn from_snapshot(snap: &MetricsSnapshot) -> Self {
        let sum_ms = |name: &str| {
            snap.histograms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.sum as f64 / 1e6)
                .unwrap_or(0.0)
        };
        Self {
            plan_ms: sum_ms("shard.plan_nanos"),
            prune_ms: sum_ms("shard.prune_nanos"),
            reconcile_ms: sum_ms("shard.reconcile_nanos"),
            merge_ms: sum_ms("shard.merge_nanos"),
        }
    }
}

/// How many survival queries each kernel answered, plus the peak hub
/// registry footprint — the dispatcher's observable decision record.
#[derive(Serialize)]
struct KernelMix {
    wedge: u64,
    blocked: u64,
    sorted: u64,
    hub_bitmap_bytes: usize,
}

impl KernelMix {
    fn from_stats(stats: &ExtractionStats) -> Self {
        Self {
            wedge: stats.kernel_wedge,
            blocked: stats.kernel_blocked,
            sorted: stats.kernel_sorted,
            hub_bitmap_bytes: stats.hub_bitmap_bytes,
        }
    }
}

#[derive(Serialize)]
struct Scale1000Section {
    world: WorldInfo,
    /// Adjacency id+offset footprint of the dense CSR (clicks excluded, to
    /// compare like with like — the compact form carries no click counts).
    dense_adjacency_bytes: usize,
    /// The same adjacency in the compact delta-varint CSR.
    compact_adjacency_bytes: usize,
    compression_ratio: f64,
    budget_ms: f64,
    budget_enforced: bool,
    rows: Vec<Scale1000Row>,
}

#[derive(Serialize)]
struct Scale1000Row {
    /// Worker count read back from the `shard.workers` gauge.
    workers: usize,
    /// Wall of the PR 7 baseline: every survival query on the wedge scan.
    wedge_only_ms: f64,
    /// Wall of the same detection under the per-anchor kernel dispatcher.
    sharded_ms: f64,
    /// `wedge_only_ms / sharded_ms`; gated at [`KERNEL_SPEEDUP_FLOOR`].
    kernel_speedup: f64,
    groups: usize,
    planned_shards: u64,
    hash_shards: u64,
    phases: PhaseBreakdown,
    kernels: KernelMix,
}

#[derive(Serialize)]
struct WorldInfo {
    users: usize,
    items: usize,
    edges: usize,
}

#[derive(Serialize)]
struct WorkerRow {
    workers: usize,
    full_rescan: ModeReport,
    delta: ModeReport,
    speedup: f64,
}

#[derive(Serialize)]
struct ModeReport {
    wall_ms: f64,
    rounds: usize,
    dirty_users: usize,
    dirty_items: usize,
    skipped_users: usize,
    skipped_items: usize,
    compactions: usize,
}

impl ModeReport {
    fn new(r: &ModeResult) -> Self {
        Self {
            wall_ms: r.best_ms,
            rounds: r.stats.rounds,
            dirty_users: r.stats.dirty_users,
            dirty_items: r.stats.dirty_items,
            skipped_users: r.stats.skipped_users,
            skipped_items: r.stats.skipped_items,
            compactions: r.stats.compactions,
        }
    }
}

struct ModeResult {
    best_ms: f64,
    stats: ExtractionStats,
    alive: (Vec<ricd_graph::UserId>, Vec<ricd_graph::ItemId>),
}

fn run_mode(
    graph: &ricd_graph::BipartiteGraph,
    params: &RicdParams,
    pool: &WorkerPool,
    mode: FixpointMode,
) -> ModeResult {
    // Warm-up run (page-in, allocator steady state), then best-of-N.
    let mut view = GraphView::full(graph);
    extract_with(
        &mut view,
        params,
        pool,
        SquareStrategy::Parallel,
        mode,
        None,
    );
    let mut best_ms = f64::INFINITY;
    let mut stats = ExtractionStats::default();
    let mut alive = view.alive_sets();
    for _ in 0..ITERS {
        let mut view = GraphView::full(graph);
        let t = Instant::now();
        let s = extract_with(
            &mut view,
            params,
            pool,
            SquareStrategy::Parallel,
            mode,
            None,
        );
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if ms < best_ms {
            best_ms = ms;
            stats = s;
            alive = view.alive_sets();
        }
    }
    ModeResult {
        best_ms,
        stats,
        alive,
    }
}

/// Worker count actually recorded by the shard runtime: reads back the
/// `shard.workers` gauge and insists it matches the pool that ran.
fn recorded_workers(snap: &MetricsSnapshot, pool: &WorkerPool) -> usize {
    let recorded = snap
        .gauge("shard.workers")
        .expect("shard runtime must record shard.workers");
    assert_eq!(
        recorded as usize,
        pool.workers(),
        "shard.workers gauge must report the executing pool's size"
    );
    recorded as usize
}

fn eprintln_kernel_mix(tag: &str, k: &KernelMix) {
    eprintln!(
        "{tag} kernel mix: wedge={} blocked={} sorted={} hub_bitmap_bytes={}",
        k.wedge, k.blocked, k.sorted, k.hub_bitmap_bytes
    );
}

/// Sharded-vs-unsharded whole-detection comparison on the 100× world, one
/// row per worker count against a single shared baseline. Asserts
/// identical groups and gates on the acceptance floor of 1.3×.
fn run_sharded_section(worker_counts: &[usize], host: usize) -> ShardedSection {
    let ds = generate(&DatasetConfig::scale100(), &AttackConfig::scale100()).expect("100x world");
    eprintln!(
        "sharded section world: {} users, {} items, {} edges",
        ds.graph.num_users(),
        ds.graph.num_items(),
        ds.graph.num_edges(),
    );
    let params = RicdParams::default();
    let cfg = ShardConfig::default();
    let speedup_enforced = std::thread::available_parallelism()
        .map(|n| n.get() >= 4)
        .unwrap_or(false);

    // Unsharded baseline: measured once on the host-parallel pool (its best
    // configuration), median of BASELINE_REPS, shared by every row below.
    let base_pool = WorkerPool::new(host);
    let mut samples = Vec::with_capacity(BASELINE_REPS);
    let mut baseline_groups = None;
    for _ in 0..BASELINE_REPS {
        let t = Instant::now();
        let un = detect_groups_with(
            &ds.graph,
            &Seeds::none(),
            &params,
            &base_pool,
            SquareStrategy::Parallel,
            FixpointMode::Delta,
            None,
        );
        samples.push(t.elapsed().as_secs_f64() * 1e3);
        baseline_groups = Some(un.groups);
    }
    let mut sorted = samples.clone();
    sorted.sort_by(f64::total_cmp);
    let unsharded_ms = sorted[BASELINE_REPS / 2];
    let baseline_groups = baseline_groups.expect("baseline ran");
    eprintln!("unsharded baseline (workers={host}): median={unsharded_ms:.0}ms over {samples:.0?}");

    let mut rows = Vec::new();
    for &workers in worker_counts {
        let pool = WorkerPool::new(workers);
        let mut sharded_ms = f64::INFINITY;
        let mut best: Option<(ricd_core::detect::DetectedGroups, MetricsSnapshot)> = None;
        for _ in 0..SHARD_ITERS {
            // Fresh registry per iteration so the recorded phase walls and
            // planner counters describe exactly one run, not an average.
            let registry = MetricsRegistry::new();
            let t = Instant::now();
            let sh = detect_groups_sharded(
                &ds.graph,
                &Seeds::none(),
                &params,
                &pool,
                &cfg,
                &(|| false),
                Some(&registry),
            )
            .expect("sharded detection completes");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                sh.groups, baseline_groups,
                "sharded detection must produce the unsharded group set (workers={workers})"
            );
            if ms < sharded_ms {
                sharded_ms = ms;
                best = Some((sh, registry.snapshot()));
            }
        }
        let (detected, snap) = best.expect("at least one iteration ran");

        let speedup = unsharded_ms / sharded_ms;
        let kernels = KernelMix::from_stats(&detected.stats);
        eprintln!(
            "sharded section (workers={workers}): unsharded={unsharded_ms:.0}ms sharded={sharded_ms:.0}ms speedup={speedup:.2}x"
        );
        eprintln_kernel_mix(&format!("sharded section (workers={workers})"), &kernels);
        if speedup_enforced {
            assert!(
                speedup >= 1.3,
                "sharded detection speedup {speedup:.2}x fell below the 1.3x floor (workers={workers})"
            );
        } else {
            eprintln!(
                "sharded speedup gate not enforced: available_parallelism < 4 (speedup {speedup:.2}x)"
            );
            // Unconditional blowup floor: even serial, sharding overhead
            // (plan + replication + reconciliation) must stay bounded.
            assert!(
                speedup >= 0.5,
                "sharded detection {sharded_ms:.0}ms blew past 2x the unsharded {unsharded_ms:.0}ms (workers={workers})"
            );
        }

        rows.push(ShardedRow {
            workers: recorded_workers(&snap, &pool),
            sharded_ms,
            speedup,
            groups: detected.groups.len(),
            planned_shards: snap.counter("shard.planned").unwrap_or(0),
            exact_shards: snap.counter("shard.exact").unwrap_or(0),
            hash_shards: snap.counter("shard.hash").unwrap_or(0),
            replicated_items: snap.counter("shard.replicated_items").unwrap_or(0),
            halo_users: snap.counter("shard.halo_users").unwrap_or(0),
            phases: PhaseBreakdown::from_snapshot(&snap),
            kernels,
        });
    }

    ShardedSection {
        world: WorldInfo {
            users: ds.graph.num_users(),
            items: ds.graph.num_items(),
            edges: ds.graph.num_edges(),
        },
        baseline: UnshardedBaseline {
            pool_workers: host,
            reps: BASELINE_REPS,
            median_ms: unsharded_ms,
            samples_ms: samples,
        },
        speedup_enforced,
        rows,
    }
}

/// Dense CSR adjacency footprint: both directions' id arrays plus the u64
/// offset arrays. Click counts are excluded so the comparison against the
/// compact form (which carries none) is apples-to-apples.
fn dense_adjacency_bytes(g: &ricd_graph::BipartiteGraph) -> usize {
    g.num_edges() * 2 * std::mem::size_of::<u32>()
        + (g.num_users() + g.num_items() + 2) * std::mem::size_of::<u64>()
}

/// Paper-scale section: sharded-only detection on the 1000× world, one row
/// per worker count, each row a wedge-only vs dispatched-kernel pair. The
/// wall-clock budget (on the dispatched time) is enforced only on hosts
/// that actually have ≥ 4 cores.
fn run_scale1000_section(worker_counts: &[usize]) -> Scale1000Section {
    let t = Instant::now();
    let ds =
        generate(&DatasetConfig::scale1000(), &AttackConfig::scale1000()).expect("1000x world");
    eprintln!(
        "scale1000 world: {} users, {} items, {} edges (generated in {:.0}ms)",
        ds.graph.num_users(),
        ds.graph.num_items(),
        ds.graph.num_edges(),
        t.elapsed().as_secs_f64() * 1e3,
    );
    let dense_bytes = dense_adjacency_bytes(&ds.graph);
    let compact_bytes = CompactBigraph::from_graph(&ds.graph).heap_bytes();
    eprintln!(
        "scale1000 adjacency: dense={dense_bytes}B compact={compact_bytes}B ({:.2}x smaller)",
        dense_bytes as f64 / compact_bytes as f64
    );
    assert!(
        compact_bytes < dense_bytes,
        "compact CSR must undercut the dense adjacency footprint"
    );

    let params = RicdParams::default();
    let budget_enforced = std::thread::available_parallelism()
        .map(|n| n.get() >= 4)
        .unwrap_or(false);

    let mut rows = Vec::new();
    let mut best_ms = f64::INFINITY;
    for &workers in worker_counts {
        let pool = WorkerPool::new(workers);

        // PR 7 baseline: same shard plan, every survival query answered by
        // the wedge scan.
        let wedge_cfg = ShardConfig {
            kernel: KernelSelection::WedgeOnly,
            ..ShardConfig::default()
        };
        let t = Instant::now();
        let wedge = detect_groups_sharded(
            &ds.graph,
            &Seeds::none(),
            &params,
            &pool,
            &wedge_cfg,
            &(|| false),
            None,
        )
        .expect("1000x wedge-only detection completes");
        let wedge_only_ms = t.elapsed().as_secs_f64() * 1e3;

        // Dispatched kernel mix (the default).
        let registry = MetricsRegistry::new();
        let t = Instant::now();
        let detected = detect_groups_sharded(
            &ds.graph,
            &Seeds::none(),
            &params,
            &pool,
            &ShardConfig::default(),
            &(|| false),
            Some(&registry),
        )
        .expect("1000x sharded detection completes");
        let sharded_ms = t.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(sharded_ms);

        assert_eq!(
            detected.groups, wedge.groups,
            "kernel dispatch must not change the 1000x group set (workers={workers})"
        );
        assert!(
            !detected.groups.is_empty(),
            "1000x world must surface its planted attack groups (workers={workers})"
        );
        let kernel_speedup = wedge_only_ms / sharded_ms;
        let kernels = KernelMix::from_stats(&detected.stats);
        eprintln!(
            "scale1000 (workers={workers}): wedge_only={wedge_only_ms:.0}ms dispatched={sharded_ms:.0}ms kernel_speedup={kernel_speedup:.2}x groups={}",
            detected.groups.len()
        );
        eprintln_kernel_mix(&format!("scale1000 (workers={workers})"), &kernels);
        assert!(
            kernel_speedup >= KERNEL_SPEEDUP_FLOOR,
            "dispatched kernel speedup {kernel_speedup:.2}x fell below the {KERNEL_SPEEDUP_FLOOR}x floor (workers={workers})"
        );

        let snap = registry.snapshot();
        rows.push(Scale1000Row {
            workers: recorded_workers(&snap, &pool),
            wedge_only_ms,
            sharded_ms,
            kernel_speedup,
            groups: detected.groups.len(),
            planned_shards: snap.counter("shard.planned").unwrap_or(0),
            hash_shards: snap.counter("shard.hash").unwrap_or(0),
            phases: PhaseBreakdown::from_snapshot(&snap),
            kernels,
        });
    }

    if budget_enforced {
        assert!(
            best_ms <= SCALE1000_BUDGET_MS,
            "1000x sharded detection took {best_ms:.0}ms, over the {SCALE1000_BUDGET_MS:.0}ms budget"
        );
    } else {
        eprintln!(
            "scale1000 budget not enforced: available_parallelism < 4 (best {best_ms:.0}ms vs {SCALE1000_BUDGET_MS:.0}ms budget)"
        );
    }

    Scale1000Section {
        world: WorldInfo {
            users: ds.graph.num_users(),
            items: ds.graph.num_items(),
            edges: ds.graph.num_edges(),
        },
        dense_adjacency_bytes: dense_bytes,
        compact_adjacency_bytes: compact_bytes,
        compression_ratio: dense_bytes as f64 / compact_bytes as f64,
        budget_ms: SCALE1000_BUDGET_MS,
        budget_enforced,
        rows,
    }
}

fn main() {
    let ds =
        generate(&DatasetConfig::default(), &AttackConfig::evaluation()).expect("datagen world");
    let params = RicdParams::default();
    eprintln!(
        "world: {} users, {} items, {} edges",
        ds.graph.num_users(),
        ds.graph.num_items(),
        ds.graph.num_edges(),
    );

    // Serial floor first, then the host's full parallelism (deduplicated on
    // single-core hosts so the artifact never carries two identical rows).
    let mut worker_counts = vec![1];
    let host = WorkerPool::default_for_host().workers();
    if host > 1 {
        worker_counts.push(host);
    }

    let mut rows = Vec::new();
    let mut alive: Option<(Vec<ricd_graph::UserId>, Vec<ricd_graph::ItemId>)> = None;
    for workers in worker_counts {
        let pool = WorkerPool::new(workers);
        let full = run_mode(&ds.graph, &params, &pool, FixpointMode::FullRescan);
        let delta = run_mode(&ds.graph, &params, &pool, FixpointMode::Delta);

        assert_eq!(
            full.alive, delta.alive,
            "delta fixpoint must reach the full-rescan alive set (workers={workers})"
        );
        match &alive {
            None => alive = Some(delta.alive.clone()),
            Some(first) => assert_eq!(
                first, &delta.alive,
                "alive set must not depend on the worker count"
            ),
        }

        let speedup = full.best_ms / delta.best_ms;
        eprintln!(
            "workers={workers}: full={:.1}ms delta={:.1}ms speedup={speedup:.2}x",
            full.best_ms, delta.best_ms
        );
        // Regression gate, deliberately lenient vs. the ~2.3x measured on a
        // quiet machine: shared CI runners are noisy, but delta regressing
        // to near-parity with the full rescan means the frontier or
        // compaction machinery stopped pulling its weight. Both modes use
        // the same kernel dispatcher, so the ratio is kernel-neutral.
        assert!(
            speedup >= 1.2,
            "delta fixpoint speedup {speedup:.2}x fell below the 1.2x floor (workers={workers})"
        );
        rows.push(WorkerRow {
            workers,
            full_rescan: ModeReport::new(&full),
            delta: ModeReport::new(&delta),
            speedup,
        });
    }

    let alive = alive.expect("at least one worker count ran");
    // 100×: serial floor plus a genuinely parallel pool even on one-core
    // hosts (oversubscription is harmless and keeps workers>1 in the
    // artifact); 1000×: serial floor plus the host's parallelism, the
    // worker axis the acceptance gate names.
    let mut sharded_counts = vec![1, host.max(2)];
    sharded_counts.dedup();
    let mut scale1000_counts = vec![1, host];
    scale1000_counts.dedup();
    let sharded = run_sharded_section(&sharded_counts, host);
    let scale1000 = run_scale1000_section(&scale1000_counts);
    let report = Report {
        world: WorldInfo {
            users: ds.graph.num_users(),
            items: ds.graph.num_items(),
            edges: ds.graph.num_edges(),
        },
        rows,
        alive_users: alive.0.len(),
        alive_items: alive.1.len(),
        sharded,
        scale1000,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_extract.json", &json).expect("write BENCH_extract.json");
    println!("{json}");
}
