//! No-criterion perf smoke test for the extraction fixpoint.
//!
//! Runs Algorithm 3 on the default datagen world in both fixpoint modes
//! (full-rescan baseline vs. delta-driven), checks they reach the identical
//! alive set, and writes `BENCH_extract.json` with wall times and delta
//! counters so CI keeps a trajectory of the fixpoint's cost. One row is
//! recorded per worker count — always `workers = 1` (the serial floor) and,
//! when the host has more cores, `workers = available_parallelism` — so the
//! artifact also tracks how well the fixpoint scales.
//!
//! A second section runs whole-detection sharded vs. unsharded on the 100×
//! scale-down world (≈200k users / 40k items / ~900k edges) once per worker
//! count — the serial floor and the host's parallelism — asserts the group
//! outputs are identical, and gates on the sharded runtime being ≥ 1.3×
//! faster. Each row records the worker count the shard runtime itself
//! reported through the `shard.workers` gauge, not the requested pool size,
//! so a regression back to single-worker execution shows up in the artifact.
//!
//! A third section runs sharded-only detection on the 1000× world
//! (≈2M users / 400k items / ~10M edges) for workers ∈ dedup{2, host},
//! records per-row wall times plus the dense-vs-compact adjacency footprint,
//! and asserts the wall-clock budget — but only on hosts with
//! `available_parallelism() >= 4`, so single-core CI runners still produce
//! trajectory rows without flaking on a budget sized for parallel hardware.
//!
//! Deliberately not a criterion bench: one warm-up plus a few timed
//! iterations is enough to see a ≥2× regression, and the JSON artifact is
//! trivially diffable across runs.

use ricd_core::detect::{detect_groups_with, Seeds};
use ricd_core::extract::{extract_with, ExtractionStats, FixpointMode, SquareStrategy};
use ricd_core::params::RicdParams;
use ricd_core::shard_run::{detect_groups_sharded, ShardConfig};
use ricd_datagen::prelude::*;
use ricd_engine::WorkerPool;
use ricd_graph::{CompactBigraph, GraphView};
use serde::Serialize;
use std::time::Instant;

const ITERS: usize = 3;
/// The 100× world's detection runs take seconds, so best-of-two keeps the
/// sharded section's wall time bounded.
const SHARD_ITERS: usize = 2;
/// Wall-clock budget for one sharded detection pass over the 1000× world.
/// Measured ≈330s on a single-core host; a ≥4-core host parallelizes the
/// shard fan-out (the dominant phase), so 300s holds comfortably there
/// while still catching an algorithmic blowup (the per-candidate
/// intersection regression this PR reverted measured 4× — well past it).
/// Only asserted when the host actually has ≥ 4 cores.
const SCALE1000_BUDGET_MS: f64 = 300_000.0;

#[derive(Serialize)]
struct Report {
    world: WorldInfo,
    rows: Vec<WorkerRow>,
    alive_users: usize,
    alive_items: usize,
    sharded: ShardedSection,
    scale1000: Scale1000Section,
}

#[derive(Serialize)]
struct ShardedSection {
    world: WorldInfo,
    rows: Vec<ShardedRow>,
}

#[derive(Serialize)]
struct ShardedRow {
    /// Worker count actually used by the shard runtime, read back from the
    /// `shard.workers` gauge it sets (not the requested pool size).
    workers: usize,
    unsharded_ms: f64,
    sharded_ms: f64,
    speedup: f64,
    groups: usize,
    planned_shards: u64,
    exact_shards: u64,
    hash_shards: u64,
    replicated_items: u64,
    halo_users: u64,
}

#[derive(Serialize)]
struct Scale1000Section {
    world: WorldInfo,
    /// Adjacency id+offset footprint of the dense CSR (clicks excluded, to
    /// compare like with like — the compact form carries no click counts).
    dense_adjacency_bytes: usize,
    /// The same adjacency in the compact delta-varint CSR.
    compact_adjacency_bytes: usize,
    compression_ratio: f64,
    budget_ms: f64,
    budget_enforced: bool,
    rows: Vec<Scale1000Row>,
}

#[derive(Serialize)]
struct Scale1000Row {
    /// Worker count read back from the `shard.workers` gauge.
    workers: usize,
    sharded_ms: f64,
    groups: usize,
    planned_shards: u64,
    hash_shards: u64,
}

#[derive(Serialize)]
struct WorldInfo {
    users: usize,
    items: usize,
    edges: usize,
}

#[derive(Serialize)]
struct WorkerRow {
    workers: usize,
    full_rescan: ModeReport,
    delta: ModeReport,
    speedup: f64,
}

#[derive(Serialize)]
struct ModeReport {
    wall_ms: f64,
    rounds: usize,
    dirty_users: usize,
    dirty_items: usize,
    skipped_users: usize,
    skipped_items: usize,
    compactions: usize,
}

impl ModeReport {
    fn new(r: &ModeResult) -> Self {
        Self {
            wall_ms: r.best_ms,
            rounds: r.stats.rounds,
            dirty_users: r.stats.dirty_users,
            dirty_items: r.stats.dirty_items,
            skipped_users: r.stats.skipped_users,
            skipped_items: r.stats.skipped_items,
            compactions: r.stats.compactions,
        }
    }
}

struct ModeResult {
    best_ms: f64,
    stats: ExtractionStats,
    alive: (Vec<ricd_graph::UserId>, Vec<ricd_graph::ItemId>),
}

fn run_mode(
    graph: &ricd_graph::BipartiteGraph,
    params: &RicdParams,
    pool: &WorkerPool,
    mode: FixpointMode,
) -> ModeResult {
    // Warm-up run (page-in, allocator steady state), then best-of-N.
    let mut view = GraphView::full(graph);
    extract_with(
        &mut view,
        params,
        pool,
        SquareStrategy::Parallel,
        mode,
        None,
    );
    let mut best_ms = f64::INFINITY;
    let mut stats = ExtractionStats::default();
    let mut alive = view.alive_sets();
    for _ in 0..ITERS {
        let mut view = GraphView::full(graph);
        let t = Instant::now();
        let s = extract_with(
            &mut view,
            params,
            pool,
            SquareStrategy::Parallel,
            mode,
            None,
        );
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if ms < best_ms {
            best_ms = ms;
            stats = s;
            alive = view.alive_sets();
        }
    }
    ModeResult {
        best_ms,
        stats,
        alive,
    }
}

/// Worker counts actually recorded by the shard runtime: reads back the
/// `shard.workers` gauge and insists it matches the pool that ran.
fn recorded_workers(registry: &ricd_obs::MetricsRegistry, pool: &WorkerPool) -> usize {
    let recorded = registry
        .snapshot()
        .gauge("shard.workers")
        .expect("shard runtime must record shard.workers");
    assert_eq!(
        recorded as usize,
        pool.workers(),
        "shard.workers gauge must report the executing pool's size"
    );
    recorded as usize
}

/// Sharded-vs-unsharded whole-detection comparison on the 100× world, one
/// row per worker count. Asserts identical groups and gates on the
/// acceptance floor of 1.3×.
fn run_sharded_section(worker_counts: &[usize]) -> ShardedSection {
    let ds = generate(&DatasetConfig::scale100(), &AttackConfig::scale100()).expect("100x world");
    eprintln!(
        "sharded section world: {} users, {} items, {} edges",
        ds.graph.num_users(),
        ds.graph.num_items(),
        ds.graph.num_edges(),
    );
    let params = RicdParams::default();
    let cfg = ShardConfig::default();

    let mut rows = Vec::new();
    for &workers in worker_counts {
        let pool = WorkerPool::new(workers);
        let mut unsharded_ms = f64::INFINITY;
        let mut sharded_ms = f64::INFINITY;
        let mut groups = None;
        let registry = ricd_obs::MetricsRegistry::new();
        for _ in 0..SHARD_ITERS {
            let t = Instant::now();
            let un = detect_groups_with(
                &ds.graph,
                &Seeds::none(),
                &params,
                &pool,
                SquareStrategy::Parallel,
                FixpointMode::Delta,
                None,
            );
            unsharded_ms = unsharded_ms.min(t.elapsed().as_secs_f64() * 1e3);

            let t = Instant::now();
            let sh = detect_groups_sharded(
                &ds.graph,
                &Seeds::none(),
                &params,
                &pool,
                &cfg,
                &(|| false),
                Some(&registry),
            )
            .expect("sharded detection completes");
            sharded_ms = sharded_ms.min(t.elapsed().as_secs_f64() * 1e3);

            assert_eq!(
                sh.groups, un.groups,
                "sharded detection must produce the unsharded group set (workers={workers})"
            );
            groups = Some(un.groups.len());
        }

        let speedup = unsharded_ms / sharded_ms;
        eprintln!(
            "sharded section (workers={workers}): unsharded={unsharded_ms:.0}ms sharded={sharded_ms:.0}ms speedup={speedup:.2}x"
        );
        assert!(
            speedup >= 1.3,
            "sharded detection speedup {speedup:.2}x fell below the 1.3x floor (workers={workers})"
        );

        // Counters accumulate across iterations; normalize to per-run values.
        let per_run =
            |name: &str| registry.snapshot().counter(name).unwrap_or(0) / SHARD_ITERS as u64;
        rows.push(ShardedRow {
            workers: recorded_workers(&registry, &pool),
            unsharded_ms,
            sharded_ms,
            speedup,
            groups: groups.expect("at least one iteration ran"),
            planned_shards: per_run("shard.planned"),
            exact_shards: per_run("shard.exact"),
            hash_shards: per_run("shard.hash"),
            replicated_items: per_run("shard.replicated_items"),
            halo_users: per_run("shard.halo_users"),
        });
    }

    ShardedSection {
        world: WorldInfo {
            users: ds.graph.num_users(),
            items: ds.graph.num_items(),
            edges: ds.graph.num_edges(),
        },
        rows,
    }
}

/// Dense CSR adjacency footprint: both directions' id arrays plus the u64
/// offset arrays. Click counts are excluded so the comparison against the
/// compact form (which carries none) is apples-to-apples.
fn dense_adjacency_bytes(g: &ricd_graph::BipartiteGraph) -> usize {
    g.num_edges() * 2 * std::mem::size_of::<u32>()
        + (g.num_users() + g.num_items() + 2) * std::mem::size_of::<u64>()
}

/// Paper-scale section: sharded-only detection on the 1000× world, one row
/// per worker count, with the wall-clock budget enforced only on hosts
/// that actually have ≥ 4 cores.
fn run_scale1000_section(worker_counts: &[usize]) -> Scale1000Section {
    let t = Instant::now();
    let ds =
        generate(&DatasetConfig::scale1000(), &AttackConfig::scale1000()).expect("1000x world");
    eprintln!(
        "scale1000 world: {} users, {} items, {} edges (generated in {:.0}ms)",
        ds.graph.num_users(),
        ds.graph.num_items(),
        ds.graph.num_edges(),
        t.elapsed().as_secs_f64() * 1e3,
    );
    let dense_bytes = dense_adjacency_bytes(&ds.graph);
    let compact_bytes = CompactBigraph::from_graph(&ds.graph).heap_bytes();
    eprintln!(
        "scale1000 adjacency: dense={dense_bytes}B compact={compact_bytes}B ({:.2}x smaller)",
        dense_bytes as f64 / compact_bytes as f64
    );
    assert!(
        compact_bytes < dense_bytes,
        "compact CSR must undercut the dense adjacency footprint"
    );

    let params = RicdParams::default();
    let cfg = ShardConfig::default();
    let budget_enforced = std::thread::available_parallelism()
        .map(|n| n.get() >= 4)
        .unwrap_or(false);

    let mut rows = Vec::new();
    let mut best_ms = f64::INFINITY;
    for &workers in worker_counts {
        let pool = WorkerPool::new(workers);
        let registry = ricd_obs::MetricsRegistry::new();
        let t = Instant::now();
        let detected = detect_groups_sharded(
            &ds.graph,
            &Seeds::none(),
            &params,
            &pool,
            &cfg,
            &(|| false),
            Some(&registry),
        )
        .expect("1000x sharded detection completes");
        let sharded_ms = t.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(sharded_ms);
        eprintln!(
            "scale1000 (workers={workers}): sharded={sharded_ms:.0}ms groups={}",
            detected.groups.len()
        );
        assert!(
            !detected.groups.is_empty(),
            "1000x world must surface its planted attack groups (workers={workers})"
        );
        let snap = registry.snapshot();
        rows.push(Scale1000Row {
            workers: recorded_workers(&registry, &pool),
            sharded_ms,
            groups: detected.groups.len(),
            planned_shards: snap.counter("shard.planned").unwrap_or(0),
            hash_shards: snap.counter("shard.hash").unwrap_or(0),
        });
    }

    if budget_enforced {
        assert!(
            best_ms <= SCALE1000_BUDGET_MS,
            "1000x sharded detection took {best_ms:.0}ms, over the {SCALE1000_BUDGET_MS:.0}ms budget"
        );
    } else {
        eprintln!(
            "scale1000 budget not enforced: available_parallelism < 4 (best {best_ms:.0}ms vs {SCALE1000_BUDGET_MS:.0}ms budget)"
        );
    }

    Scale1000Section {
        world: WorldInfo {
            users: ds.graph.num_users(),
            items: ds.graph.num_items(),
            edges: ds.graph.num_edges(),
        },
        dense_adjacency_bytes: dense_bytes,
        compact_adjacency_bytes: compact_bytes,
        compression_ratio: dense_bytes as f64 / compact_bytes as f64,
        budget_ms: SCALE1000_BUDGET_MS,
        budget_enforced,
        rows,
    }
}

fn main() {
    let ds =
        generate(&DatasetConfig::default(), &AttackConfig::evaluation()).expect("datagen world");
    let params = RicdParams::default();
    eprintln!(
        "world: {} users, {} items, {} edges",
        ds.graph.num_users(),
        ds.graph.num_items(),
        ds.graph.num_edges(),
    );

    // Serial floor first, then the host's full parallelism (deduplicated on
    // single-core hosts so the artifact never carries two identical rows).
    let mut worker_counts = vec![1];
    let host = WorkerPool::default_for_host().workers();
    if host > 1 {
        worker_counts.push(host);
    }

    let mut rows = Vec::new();
    let mut alive: Option<(Vec<ricd_graph::UserId>, Vec<ricd_graph::ItemId>)> = None;
    for workers in worker_counts {
        let pool = WorkerPool::new(workers);
        let full = run_mode(&ds.graph, &params, &pool, FixpointMode::FullRescan);
        let delta = run_mode(&ds.graph, &params, &pool, FixpointMode::Delta);

        assert_eq!(
            full.alive, delta.alive,
            "delta fixpoint must reach the full-rescan alive set (workers={workers})"
        );
        match &alive {
            None => alive = Some(delta.alive.clone()),
            Some(first) => assert_eq!(
                first, &delta.alive,
                "alive set must not depend on the worker count"
            ),
        }

        let speedup = full.best_ms / delta.best_ms;
        eprintln!(
            "workers={workers}: full={:.1}ms delta={:.1}ms speedup={speedup:.2}x",
            full.best_ms, delta.best_ms
        );
        // Regression gate, deliberately lenient vs. the ~2.3x measured on a
        // quiet machine: shared CI runners are noisy, but delta regressing
        // to near-parity with the full rescan means the frontier or
        // compaction machinery stopped pulling its weight.
        assert!(
            speedup >= 1.2,
            "delta fixpoint speedup {speedup:.2}x fell below the 1.2x floor (workers={workers})"
        );
        rows.push(WorkerRow {
            workers,
            full_rescan: ModeReport::new(&full),
            delta: ModeReport::new(&delta),
            speedup,
        });
    }

    let alive = alive.expect("at least one worker count ran");
    // 100×: serial floor plus a genuinely parallel pool even on one-core
    // hosts (oversubscription is harmless and keeps workers>1 in the
    // artifact); 1000×: parallel-only, the serial floor is not worth the
    // wall time at that scale.
    let mut sharded_counts = vec![1, host.max(2)];
    sharded_counts.dedup();
    let mut scale1000_counts = vec![2, host.max(4)];
    scale1000_counts.dedup();
    let sharded = run_sharded_section(&sharded_counts);
    let scale1000 = run_scale1000_section(&scale1000_counts);
    let report = Report {
        world: WorldInfo {
            users: ds.graph.num_users(),
            items: ds.graph.num_items(),
            edges: ds.graph.num_edges(),
        },
        rows,
        alive_users: alive.0.len(),
        alive_items: alive.1.len(),
        sharded,
        scale1000,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_extract.json", &json).expect("write BENCH_extract.json");
    println!("{json}");
}
