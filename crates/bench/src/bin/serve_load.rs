//! Load benchmark for the online detection service.
//!
//! Three scenarios, one report (`BENCH_serve.json`):
//!
//! * **monolith** — the classic single-state daemon with a deliberately
//!   small ingest queue: one ingester replays a datagen world while a
//!   query fleet hammers `QueryRisk`/`Recommend`; reports ingest
//!   throughput and query latency percentiles, and asserts backpressure
//!   engaged and no accepted batch was dropped.
//! * **sharded** — the supervised multi-shard router at 2 and 4 shards,
//!   same replay and query fleet; adds the degraded-query fraction
//!   (expected 0 on a healthy topology).
//! * **faulted** — the sharded tier under a kill plan: shard workers are
//!   crashed mid-replay while the fleet keeps querying. Reports the
//!   degraded-query fraction, supervisor restarts, and the p50/p99
//!   recovery time (outage window until every shard is `Up` again), and
//!   asserts zero accepted-batch loss end to end.

use ricd_core::{RicdParams, RicdPipeline};
use ricd_datagen::prelude::*;
use ricd_engine::{ServeFault, ServeFaultPlan, WorkerPool};
use ricd_graph::{ItemId, UserId};
use ricd_serve::{
    start, start_router, Client, IngestOutcome, RetryPolicy, RouterConfig, ServeConfig, ServeState,
    SupervisorConfig,
};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCH_RECORDS: usize = 400;
const QUERY_THREADS: usize = 4;

#[derive(Serialize)]
struct Report {
    world: WorldInfo,
    monolith: MonolithReport,
    sharded: Vec<ShardedReport>,
    faulted: FaultedReport,
}

#[derive(Serialize)]
struct WorldInfo {
    users: usize,
    items: usize,
    edges: usize,
}

#[derive(Serialize)]
struct MonolithReport {
    config: ConfigInfo,
    ingest: IngestReport,
    query: QueryReport,
    view: ViewReport,
}

#[derive(Serialize)]
struct ShardedReport {
    shards: usize,
    ingest: IngestReport,
    query: QueryReport,
    degraded_query_fraction: f64,
}

#[derive(Serialize)]
struct FaultedReport {
    shards: usize,
    kills: usize,
    ingest: IngestReport,
    query: QueryReport,
    degraded_query_fraction: f64,
    supervisor_restarts: u64,
    recovery_ms_p50: f64,
    recovery_ms_p99: f64,
}

#[derive(Serialize)]
struct ConfigInfo {
    queue_capacity: usize,
    swap_every_batches: usize,
    batch_records: usize,
    ingest_threads: usize,
    query_threads: usize,
    detection_workers: usize,
}

#[derive(Serialize)]
struct IngestReport {
    batches_accepted: u64,
    records: usize,
    backpressure_rejections: u64,
    wall_ms: f64,
    records_per_sec: f64,
}

#[derive(Serialize)]
struct QueryReport {
    queries: usize,
    p50_us: f64,
    p99_us: f64,
}

#[derive(Serialize)]
struct ViewReport {
    epoch: i64,
    groups: i64,
    flagged_users: i64,
    flagged_items: i64,
}

fn percentile_us(sorted_nanos: &[u64], p: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_nanos.len() - 1) as f64 * p).round() as usize;
    sorted_nanos[idx] as f64 / 1e3
}

fn percentile_ms(sorted_nanos: &[u64], p: f64) -> f64 {
    percentile_us(sorted_nanos, p) / 1e3
}

/// A query fleet against `addr`: per-call latencies plus the fraction of
/// risk queries answered in degraded mode.
struct Fleet {
    stop: Arc<AtomicBool>,
    degraded: Arc<AtomicU64>,
    total: Arc<AtomicU64>,
    threads: Vec<std::thread::JoinHandle<Vec<u64>>>,
}

impl Fleet {
    fn launch(addr: std::net::SocketAddr, num_users: u32) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let degraded = Arc::new(AtomicU64::new(0));
        let total = Arc::new(AtomicU64::new(0));
        let threads = (0..QUERY_THREADS)
            .map(|t| {
                let (stop, degraded, total) = (stop.clone(), degraded.clone(), total.clone());
                std::thread::spawn(move || -> Vec<u64> {
                    let mut c = Client::connect(addr).expect("query client connects");
                    let mut latencies = Vec::new();
                    let mut i = t as u32;
                    while !stop.load(Ordering::Relaxed) {
                        let user = UserId(i % num_users.max(1));
                        let started = Instant::now();
                        let was_degraded = if i.is_multiple_of(2) {
                            c.query_risk(vec![user], vec![ItemId(i % 100)])
                                .expect("risk query under load")
                                .degraded
                        } else {
                            c.recommend(user, 10)
                                .expect("recommend under load")
                                .degraded
                        };
                        latencies.push(started.elapsed().as_nanos() as u64);
                        total.fetch_add(1, Ordering::Relaxed);
                        if was_degraded {
                            degraded.fetch_add(1, Ordering::Relaxed);
                        }
                        i = i.wrapping_add(7);
                    }
                    latencies
                })
            })
            .collect();
        Self {
            stop,
            degraded,
            total,
            threads,
        }
    }

    /// Stops the fleet; returns (sorted latencies, degraded fraction).
    fn finish(self) -> (Vec<u64>, f64) {
        self.stop.store(true, Ordering::Relaxed);
        let mut latencies: Vec<u64> = self
            .threads
            .into_iter()
            .flat_map(|t| t.join().expect("query thread clean"))
            .collect();
        latencies.sort_unstable();
        let total = self.total.load(Ordering::Relaxed).max(1);
        let fraction = self.degraded.load(Ordering::Relaxed) as f64 / total as f64;
        (latencies, fraction)
    }
}

fn run_monolith(records: &[(UserId, ItemId, u32)], num_users: u32) -> MonolithReport {
    // A small queue + per-batch detection keeps the worker saturated, so
    // the bounded queue genuinely pushes back during the replay.
    let cfg = ServeConfig {
        queue_capacity: 2,
        swap_every_batches: 1,
        ..ServeConfig::default()
    };
    let pool = WorkerPool::default_for_host();
    let detection_workers = pool.workers();
    let state = ServeState::new(
        cfg.clone(),
        RicdPipeline::new(RicdParams::default()).with_pool(pool),
    );
    let handle = start(state, "127.0.0.1:0").expect("bind loopback");
    let addr = handle.addr();
    let fleet = Fleet::launch(addr, num_users);

    // Single ingester replaying the world; rejected sends are retried, so
    // every batch is eventually accepted exactly once.
    let mut ingester = Client::connect(addr).expect("ingest client connects");
    let replay_started = Instant::now();
    let mut rejections = 0u64;
    let mut accepted = 0u64;
    for chunk in records.chunks(BATCH_RECORDS) {
        loop {
            match ingester
                .ingest(accepted, chunk.to_vec())
                .expect("ingest send")
            {
                IngestOutcome::Accepted { .. } => {
                    accepted += 1;
                    break;
                }
                IngestOutcome::Backpressure { .. } => {
                    rejections += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
    let ingest_wall = replay_started.elapsed();

    // Let the worker drain, then freeze the fleet and collect latencies.
    let metrics = loop {
        let m = ingester.metrics(false).expect("metrics");
        if m.gauge("serve.ingest_queue_depth") == Some(0)
            && m.counter("serve.batches") == Some(accepted)
        {
            break m;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let (latencies, _) = fleet.finish();
    ingester.shutdown().expect("shutdown");
    drop(ingester);
    let final_state = handle.join();

    assert!(
        rejections > 0,
        "backpressure never engaged — queue {} too roomy for this replay",
        cfg.queue_capacity
    );
    assert_eq!(
        final_state.next_seq(),
        accepted,
        "accepted batches must all be processed, none dropped"
    );

    let report = MonolithReport {
        config: ConfigInfo {
            queue_capacity: cfg.queue_capacity,
            swap_every_batches: cfg.swap_every_batches,
            batch_records: BATCH_RECORDS,
            ingest_threads: 1,
            query_threads: QUERY_THREADS,
            detection_workers,
        },
        ingest: IngestReport {
            batches_accepted: accepted,
            records: records.len(),
            backpressure_rejections: rejections,
            wall_ms: ingest_wall.as_secs_f64() * 1e3,
            records_per_sec: records.len() as f64 / ingest_wall.as_secs_f64(),
        },
        query: QueryReport {
            queries: latencies.len(),
            p50_us: percentile_us(&latencies, 0.50),
            p99_us: percentile_us(&latencies, 0.99),
        },
        view: ViewReport {
            epoch: metrics.gauge("serve.epoch").unwrap_or(0),
            groups: metrics.gauge("serve.view_groups").unwrap_or(0),
            flagged_users: metrics.gauge("serve.view_flagged_users").unwrap_or(0),
            flagged_items: metrics.gauge("serve.view_flagged_items").unwrap_or(0),
        },
    };
    assert!(
        report.view.groups >= 2,
        "planted groups must be detected during the replay"
    );
    report
}

/// Fast supervision knobs so faulted-run recovery fits a bench budget.
fn bench_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        probe_interval: Duration::from_millis(5),
        stall_timeout: Duration::from_millis(500),
        restart: RetryPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(20),
            deadline: None,
            jitter_seed: 0x5eed_5a4d,
        },
        max_restarts_per_shard: 16,
    }
}

fn router_config(shards: usize, plan: ServeFaultPlan) -> RouterConfig {
    RouterConfig {
        shards,
        params: RicdParams::default(),
        serve: ServeConfig {
            swap_every_batches: 2,
            ..ServeConfig::default()
        },
        buffer_per_shard: 4096,
        supervisor: bench_supervisor(),
        checkpoint_every_batches: 0,
        fault_plan: plan,
        ..RouterConfig::default()
    }
}

/// Replays the world through the router and waits for a full drain.
/// Returns (accepted, rejections, wall, final status).
fn replay_routed(
    addr: std::net::SocketAddr,
    records: &[(UserId, ItemId, u32)],
) -> (u64, u64, Duration, ricd_serve::StatusReport) {
    let mut ingester = Client::connect(addr).expect("ingest client connects");
    let policy = RetryPolicy::with_deadline(Duration::from_secs(300));
    let replay_started = Instant::now();
    let mut rejections = 0u64;
    let mut accepted = 0u64;
    for chunk in records.chunks(BATCH_RECORDS) {
        let stats = ingester
            .ingest_blocking_with(accepted, chunk, &policy)
            .expect("batch accepted");
        rejections += stats.rejections;
        accepted += 1;
    }
    let wall = replay_started.elapsed();
    // Drain: every shard Up with an empty backlog.
    let status = loop {
        let st = ingester.status().expect("status");
        if st.shards.iter().all(|s| s.state == "up" && s.backlog == 0) {
            break st;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    ingester.shutdown().expect("shutdown");
    (accepted, rejections, wall, status)
}

fn run_sharded(shards: usize, records: &[(UserId, ItemId, u32)], num_users: u32) -> ShardedReport {
    let handle = start_router(
        router_config(shards, ServeFaultPlan::none()),
        ricd_obs::MetricsRegistry::new(),
        "127.0.0.1:0",
        None,
    )
    .expect("bind router");
    let addr = handle.addr();
    let fleet = Fleet::launch(addr, num_users);
    let (accepted, rejections, wall, _) = replay_routed(addr, records);
    let (latencies, degraded_fraction) = fleet.finish();
    let states = handle.join();
    let processed: u64 = states.iter().map(ServeState::next_seq).sum();
    assert!(
        processed >= accepted,
        "sharded drain lost batches: {processed} sub-batches < {accepted} accepted"
    );
    ShardedReport {
        shards,
        ingest: IngestReport {
            batches_accepted: accepted,
            records: records.len(),
            backpressure_rejections: rejections,
            wall_ms: wall.as_secs_f64() * 1e3,
            records_per_sec: records.len() as f64 / wall.as_secs_f64(),
        },
        query: QueryReport {
            queries: latencies.len(),
            p50_us: percentile_us(&latencies, 0.50),
            p99_us: percentile_us(&latencies, 0.99),
        },
        degraded_query_fraction: degraded_fraction,
    }
}

fn run_faulted(records: &[(UserId, ItemId, u32)], num_users: u32) -> FaultedReport {
    let shards = 2usize;
    // Kill both shards once, early in their local streams, plus a second
    // kill of shard 0 mid-replay.
    let mut plan = ServeFaultPlan::none();
    plan.add(0, 1, ServeFault::Kill)
        .add(1, 2, ServeFault::Kill)
        .add(0, 4, ServeFault::Kill);
    let kills = plan.len();
    let handle = start_router(
        router_config(shards, plan),
        ricd_obs::MetricsRegistry::new(),
        "127.0.0.1:0",
        None,
    )
    .expect("bind router");
    let addr = handle.addr();

    // Outage observer: samples shard health and records each window from
    // "some shard not Up" back to "all Up" as one recovery sample.
    let stop = Arc::new(AtomicBool::new(false));
    let observer = {
        let stop = stop.clone();
        std::thread::spawn(move || -> Vec<u64> {
            let mut c = Client::connect(addr).expect("observer connects");
            let mut windows = Vec::new();
            let mut outage_since: Option<Instant> = None;
            while !stop.load(Ordering::Relaxed) {
                let st = c.status().expect("status");
                let all_up = st.shards.iter().all(|s| s.state == "up");
                match (all_up, outage_since) {
                    (false, None) => outage_since = Some(Instant::now()),
                    (true, Some(t0)) => {
                        windows.push(t0.elapsed().as_nanos() as u64);
                        outage_since = None;
                    }
                    _ => {}
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            windows
        })
    };

    let fleet = Fleet::launch(addr, num_users);
    let (accepted, rejections, wall, status) = replay_routed(addr, records);
    let (latencies, degraded_fraction) = fleet.finish();
    stop.store(true, Ordering::Relaxed);
    let mut recovery = observer.join().expect("observer clean");
    recovery.sort_unstable();
    let restarts: u64 = status.shards.iter().map(|s| s.restarts).sum();
    let states = handle.join();
    let processed: u64 = states.iter().map(ServeState::next_seq).sum();
    assert!(
        processed >= accepted,
        "faulted drain lost batches: {processed} sub-batches < {accepted} accepted"
    );
    assert_eq!(
        restarts, kills as u64,
        "every kill must cause exactly one supervised restart"
    );
    assert!(
        !recovery.is_empty(),
        "the outage observer never saw a down window"
    );

    FaultedReport {
        shards,
        kills,
        ingest: IngestReport {
            batches_accepted: accepted,
            records: records.len(),
            backpressure_rejections: rejections,
            wall_ms: wall.as_secs_f64() * 1e3,
            records_per_sec: records.len() as f64 / wall.as_secs_f64(),
        },
        query: QueryReport {
            queries: latencies.len(),
            p50_us: percentile_us(&latencies, 0.50),
            p99_us: percentile_us(&latencies, 0.99),
        },
        degraded_query_fraction: degraded_fraction,
        supervisor_restarts: restarts,
        recovery_ms_p50: percentile_ms(&recovery, 0.50),
        recovery_ms_p99: percentile_ms(&recovery, 0.99),
    }
}

fn main() {
    let ds = generate(
        &DatasetConfig::tiny(),
        &AttackConfig {
            num_groups: 2,
            ..AttackConfig::default()
        },
    )
    .expect("datagen world");
    let records: Vec<(UserId, ItemId, u32)> = ds.graph.edges().collect();
    let num_users = ds.graph.num_users() as u32;

    let monolith = run_monolith(&records, num_users);
    let sharded: Vec<ShardedReport> = [2usize, 4]
        .into_iter()
        .map(|shards| run_sharded(shards, &records, num_users))
        .collect();
    let faulted = run_faulted(&records, num_users);

    let report = Report {
        world: WorldInfo {
            users: ds.graph.num_users(),
            items: ds.graph.num_items(),
            edges: ds.graph.num_edges(),
        },
        monolith,
        sharded,
        faulted,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!(
        "monolith: {:.0} records/s, {} rejections, query p99 {:.0}us | \
         faulted: {} kills, {} restarts, recovery p99 {:.1}ms, degraded {:.1}%",
        report.monolith.ingest.records_per_sec,
        report.monolith.ingest.backpressure_rejections,
        report.monolith.query.p99_us,
        report.faulted.kills,
        report.faulted.supervisor_restarts,
        report.faulted.recovery_ms_p99,
        report.faulted.degraded_query_fraction * 100.0
    );
}
