//! Load benchmark for the online detection service.
//!
//! Starts a loopback `ricd-serve` daemon with a deliberately small ingest
//! queue, replays a datagen world from one ingester thread (sequence
//! numbers are a single stream, so exactly one thread owns them) while a
//! fleet of query threads hammers `QueryRisk`/`Recommend` concurrently,
//! and writes `BENCH_serve.json` with ingest throughput and query latency
//! percentiles.
//!
//! Two invariants are asserted, matching the serving design:
//!
//! * backpressure actually engaged (the rejected counter is > 0 — the
//!   bounded queue pushed back under load), and
//! * no accepted batch was dropped (the server's final `next_seq` equals
//!   the number of accepted batches).

use ricd_core::{RicdParams, RicdPipeline};
use ricd_datagen::prelude::*;
use ricd_engine::WorkerPool;
use ricd_graph::{ItemId, UserId};
use ricd_serve::{start, Client, IngestOutcome, ServeConfig, ServeState};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const BATCH_RECORDS: usize = 400;
const QUERY_THREADS: usize = 4;

#[derive(Serialize)]
struct Report {
    world: WorldInfo,
    config: ConfigInfo,
    ingest: IngestReport,
    query: QueryReport,
    view: ViewReport,
}

#[derive(Serialize)]
struct WorldInfo {
    users: usize,
    items: usize,
    edges: usize,
}

#[derive(Serialize)]
struct ConfigInfo {
    queue_capacity: usize,
    swap_every_batches: usize,
    batch_records: usize,
    ingest_threads: usize,
    query_threads: usize,
    detection_workers: usize,
}

#[derive(Serialize)]
struct IngestReport {
    batches_accepted: u64,
    records: usize,
    backpressure_rejections: u64,
    wall_ms: f64,
    records_per_sec: f64,
}

#[derive(Serialize)]
struct QueryReport {
    queries: usize,
    p50_us: f64,
    p99_us: f64,
}

#[derive(Serialize)]
struct ViewReport {
    epoch: i64,
    groups: i64,
    flagged_users: i64,
    flagged_items: i64,
}

fn percentile_us(sorted_nanos: &[u64], p: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_nanos.len() - 1) as f64 * p).round() as usize;
    sorted_nanos[idx] as f64 / 1e3
}

fn main() {
    let ds = generate(
        &DatasetConfig::tiny(),
        &AttackConfig {
            num_groups: 2,
            ..AttackConfig::default()
        },
    )
    .expect("datagen world");
    let records: Vec<(UserId, ItemId, u32)> = ds.graph.edges().collect();
    let num_users = ds.graph.num_users() as u32;

    // A small queue + per-batch detection keeps the worker saturated, so
    // the bounded queue genuinely pushes back during the replay.
    let cfg = ServeConfig {
        queue_capacity: 2,
        swap_every_batches: 1,
        ..ServeConfig::default()
    };
    let pool = WorkerPool::default_for_host();
    let detection_workers = pool.workers();
    let state = ServeState::new(
        cfg.clone(),
        RicdPipeline::new(RicdParams::default()).with_pool(pool),
    );
    let handle = start(state, "127.0.0.1:0").expect("bind loopback");
    let addr = handle.addr();

    // Query fleet: each thread owns a connection and times every call.
    let stop = Arc::new(AtomicBool::new(false));
    let query_threads: Vec<_> = (0..QUERY_THREADS)
        .map(|t| {
            let stop = stop.clone();
            std::thread::spawn(move || -> Vec<u64> {
                let mut c = Client::connect(addr).expect("query client connects");
                let mut latencies = Vec::new();
                let mut i = t as u32;
                while !stop.load(Ordering::Relaxed) {
                    let user = UserId(i % num_users.max(1));
                    let started = Instant::now();
                    if i.is_multiple_of(2) {
                        c.query_risk(vec![user], vec![ItemId(i % 100)])
                            .expect("risk query under load");
                    } else {
                        c.recommend(user, 10).expect("recommend under load");
                    }
                    latencies.push(started.elapsed().as_nanos() as u64);
                    i = i.wrapping_add(7);
                }
                latencies
            })
        })
        .collect();

    // Single ingester replaying the world; rejected sends are retried, so
    // every batch is eventually accepted exactly once.
    let mut ingester = Client::connect(addr).expect("ingest client connects");
    let replay_started = Instant::now();
    let mut rejections = 0u64;
    let mut accepted = 0u64;
    for chunk in records.chunks(BATCH_RECORDS) {
        loop {
            match ingester
                .ingest(accepted, chunk.to_vec())
                .expect("ingest send")
            {
                IngestOutcome::Accepted { .. } => {
                    accepted += 1;
                    break;
                }
                IngestOutcome::Backpressure { .. } => {
                    rejections += 1;
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
    }
    let ingest_wall = replay_started.elapsed();

    // Let the worker drain, then freeze the fleet and collect latencies.
    let metrics = loop {
        let m = ingester.metrics(false).expect("metrics");
        if m.gauge("serve.ingest_queue_depth") == Some(0)
            && m.counter("serve.batches") == Some(accepted)
        {
            break m;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    stop.store(true, Ordering::Relaxed);
    let mut latencies: Vec<u64> = query_threads
        .into_iter()
        .flat_map(|t| t.join().expect("query thread clean"))
        .collect();
    latencies.sort_unstable();

    ingester.shutdown().expect("shutdown");
    drop(ingester);
    let final_state = handle.join();

    assert!(
        rejections > 0,
        "backpressure never engaged — queue {} too roomy for this replay",
        cfg.queue_capacity
    );
    assert_eq!(
        final_state.next_seq(),
        accepted,
        "accepted batches must all be processed, none dropped"
    );

    let report = Report {
        world: WorldInfo {
            users: ds.graph.num_users(),
            items: ds.graph.num_items(),
            edges: ds.graph.num_edges(),
        },
        config: ConfigInfo {
            queue_capacity: cfg.queue_capacity,
            swap_every_batches: cfg.swap_every_batches,
            batch_records: BATCH_RECORDS,
            ingest_threads: 1,
            query_threads: QUERY_THREADS,
            detection_workers,
        },
        ingest: IngestReport {
            batches_accepted: accepted,
            records: records.len(),
            backpressure_rejections: rejections,
            wall_ms: ingest_wall.as_secs_f64() * 1e3,
            records_per_sec: records.len() as f64 / ingest_wall.as_secs_f64(),
        },
        query: QueryReport {
            queries: latencies.len(),
            p50_us: percentile_us(&latencies, 0.50),
            p99_us: percentile_us(&latencies, 0.99),
        },
        view: ViewReport {
            epoch: metrics.gauge("serve.epoch").unwrap_or(0),
            groups: metrics.gauge("serve.view_groups").unwrap_or(0),
            flagged_users: metrics.gauge("serve.view_flagged_users").unwrap_or(0),
            flagged_items: metrics.gauge("serve.view_flagged_items").unwrap_or(0),
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!(
        "ingested {} records in {:.1}ms ({:.0} records/s, {} rejections); \
         {} queries, p50 {:.0}us p99 {:.0}us",
        records.len(),
        report.ingest.wall_ms,
        report.ingest.records_per_sec,
        rejections,
        report.query.queries,
        report.query.p50_us,
        report.query.p99_us
    );
    assert!(
        report.view.groups >= 2,
        "planted groups must be detected during the replay"
    );
}
