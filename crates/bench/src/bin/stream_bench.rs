//! No-criterion streaming-detection smoke bench: the time-to-flag
//! trajectory artifact.
//!
//! Replays the two canonical temporal scenarios through the windowed
//! streaming detector and writes `BENCH_stream.json`:
//!
//! * **burst** — a hard-ramped campaign under the default *infinite*
//!   window. The acceptance gate: every planted campaign must be flagged
//!   within [`BURST_BATCH_BUDGET`] batches of its first active batch.
//! * **slow-drip** — a long, low-rate campaign under a *sliding window*
//!   sized to one worker cohort's drip. The gate: the window must
//!   actually evict records (so the cumulative graph is provably not
//!   what detection ran on) AND the campaign must still be flagged.
//!
//! Each section records wall time, per-campaign batches/ticks-to-flag,
//! final precision/recall, and the `stream.*` counter family, so CI keeps
//! a trajectory of both detection latency and replay cost.
//!
//! Deliberately not a criterion bench: one replay per scenario is enough
//! to see a latency regression (the gates are on *batch counts*, which
//! are deterministic), and the JSON artifact is trivially diffable.

use ricd_core::temporal::WindowConfig;
use ricd_core::RicdParams;
use ricd_datagen::timeline::{build_timeline, ScenarioConfig};
use ricd_eval::temporal::{replay_timeline, StreamEvalConfig, StreamReport};
use ricd_obs::MetricsRegistry;
use serde::Serialize;
use std::time::Instant;

/// Batches from the burst campaign's first active batch within which the
/// campaign must be flagged (the CI gate the issue names).
const BURST_BATCH_BUDGET: u64 = 4;

/// Sliding-window span for the slow-drip scenario: covers one worker
/// cohort's full drip (800 ticks) plus slack, while evicting the organic
/// head of the 2400-tick horizon.
const DRIP_WINDOW: u64 = 1_000;

#[derive(Serialize)]
struct Report {
    burst: Section,
    slow_drip: Section,
}

#[derive(Serialize)]
struct Section {
    scenario: &'static str,
    window: Option<u64>,
    half_life: Option<u64>,
    replay_ms: f64,
    /// Deterministic `stream.*` counters from the replay's registry.
    stream_counters: Vec<(String, u64)>,
    report: StreamReport,
}

fn run_section(
    scenario: &'static str,
    cfg_fn: impl Fn() -> ScenarioConfig,
    window: WindowConfig,
) -> Section {
    let timeline = build_timeline(&cfg_fn()).expect("scenario config valid");
    let mut cfg = StreamEvalConfig::new(RicdParams::default());
    cfg.window = window;
    let registry = MetricsRegistry::new();
    let t = Instant::now();
    let report = replay_timeline(&timeline, &cfg, &registry).expect("replay completes");
    let replay_ms = t.elapsed().as_secs_f64() * 1e3;
    let snap = registry.snapshot();
    let stream_counters: Vec<(String, u64)> = snap
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("stream."))
        .map(|(name, v)| (name.clone(), *v))
        .collect();
    eprintln!(
        "{scenario}: {} batches, {} records, evicted {}, peak window {} ({replay_ms:.0}ms)",
        report.batches, report.records, report.evicted, report.peak_window_records
    );
    for c in &report.campaigns {
        eprintln!(
            "{scenario} campaign {}: batches-to-flag {:?} ticks-to-flag {:?} ({}/{} workers)",
            c.campaign, c.batches_to_flag, c.ticks_to_flag, c.flagged_workers, c.workers
        );
    }
    Section {
        scenario,
        window: window.window,
        half_life: window.half_life,
        replay_ms,
        stream_counters,
        report,
    }
}

fn main() {
    // Burst: infinite window — the campaign's hard ramp must be caught
    // within the fixed batch budget.
    let burst = run_section("burst", ScenarioConfig::burst, WindowConfig::default());
    assert!(
        burst.report.all_flagged(),
        "burst campaign must be flagged: {:?}",
        burst.report.campaigns
    );
    for c in &burst.report.campaigns {
        let b = c.batches_to_flag.expect("flagged campaign has a latency");
        assert!(
            b <= BURST_BATCH_BUDGET,
            "burst campaign {} took {b} batches to flag, over the {BURST_BATCH_BUDGET}-batch budget",
            c.campaign
        );
    }

    // Slow drip: sliding window — old traffic must age out while the
    // drip still accumulates enough in-window evidence to flag.
    let slow_drip = run_section(
        "slow-drip",
        ScenarioConfig::slow_drip,
        WindowConfig {
            window: Some(DRIP_WINDOW),
            ..WindowConfig::default()
        },
    );
    assert!(
        slow_drip.report.evicted > 0,
        "slow-drip window must evict records"
    );
    assert!(
        (slow_drip.report.peak_window_records) < slow_drip.report.records,
        "window must stay below the cumulative record count"
    );
    assert!(
        slow_drip.report.all_flagged(),
        "slow-drip campaign must be flagged under the sliding window: {:?}",
        slow_drip.report.campaigns
    );

    let report = Report { burst, slow_drip };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_stream.json", &json).expect("write BENCH_stream.json");
    println!("{json}");
}
