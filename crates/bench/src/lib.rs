#![warn(missing_docs)]

//! # ricd-bench — shared fixtures for the benchmark harness
//!
//! Each bench target regenerates one table/figure of the paper (see
//! `DESIGN.md`'s per-experiment index). Criterion measures the timings;
//! every bench also *prints* the corresponding table so
//! `cargo bench -p ricd-bench 2>&1 | tee bench_output.txt` doubles as the
//! EXPERIMENTS.md data source.
//!
//! Fixtures are deterministic: every bench sees the same synthetic dataset
//! for the same scale, so numbers are comparable across runs.

use ricd_datagen::prelude::*;

/// The default evaluation dataset: the calibrated 1000× scale-down of
/// `TaoBao_UI_Clicks` with 8 planted attack groups of heterogeneous size
/// (the regime where the baselines' weaknesses show, per Section VI).
pub fn eval_dataset() -> SyntheticDataset {
    generate(&DatasetConfig::default(), &AttackConfig::evaluation())
        .expect("default config is valid")
}

/// A smaller dataset for the expensive sweeps (sensitivity, ablation).
pub fn small_dataset() -> SyntheticDataset {
    let attack = AttackConfig {
        group_size_jitter: 0.3,
        ..AttackConfig::small()
    };
    generate(&DatasetConfig::small(), &attack).expect("small config is valid")
}

/// The sensitivity dataset: the Fig 9 attack mix (three waves straddling the
/// swept parameter ranges — see [`AttackConfig::sensitivity_mix`]) over an
/// organic population with *larger* bargain-hunter rings (8–12 × 8–12) whose
/// admission depends on the swept `α`/`k` values, giving the precision axis
/// structure as well.
pub fn sensitivity_dataset() -> SyntheticDataset {
    let dataset = DatasetConfig {
        hunter_users: (8, 12),
        hunter_items: (8, 12),
        ..DatasetConfig::default()
    };
    generate_with_attacks(&dataset, &AttackConfig::sensitivity_mix())
        .expect("sensitivity config is valid")
}

/// Scaled datasets for the complexity/scaling bench.
pub fn scaled_dataset(factor: f64) -> SyntheticDataset {
    let cfg = DatasetConfig::default().scaled(factor);
    let attack = AttackConfig {
        num_groups: ((8.0 * factor).round() as usize).max(1),
        ..AttackConfig::default()
    };
    generate(&cfg, &attack).expect("scaled config is valid")
}
