//! The Section IV exploratory analysis: the *rough screening* the paper
//! runs on the raw click table before designing RICD.
//!
//! Two passes:
//!
//! 1. **Abnormal click records** (Section IV-A, step 2): users who clicked
//!    both hot and ordinary items and put ≥ `T_click` clicks on some
//!    ordinary item. The paper finds "more than 1.4 million users (≥ 7% of
//!    all users)" this way — deliberately loose ("very rough and
//!    inaccurate"), which is the motivation for the real framework.
//! 2. **Suspicious items** (Section IV-B): the ordinary items appearing in
//!    those abnormal records ("more than 600,000 suspicious items, ≥ 15% of
//!    all items").
//!
//! Plus the Section IV-B contrast statistic: how much more often the
//! roughly-screened suspicious users appear in the click lists of
//! suspicious items than of normal items (paper: 1.98% vs 0.49%).

use ricd_engine::WorkerPool;
use ricd_graph::{BipartiteGraph, ItemId, UserId};
use serde::{Deserialize, Serialize};

/// Output of the rough screening.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RoughScreening {
    /// Users with abnormal click records, sorted.
    pub suspicious_users: Vec<UserId>,
    /// Ordinary items carrying a ≥ `T_click` edge from a suspicious user,
    /// sorted.
    pub suspicious_items: Vec<ItemId>,
    /// `suspicious_users.len() / num_users` (paper: ≥ 0.07).
    pub user_fraction: f64,
    /// `suspicious_items.len() / num_items` (paper: ≥ 0.15).
    pub item_fraction: f64,
}

/// Runs the Section IV rough screening.
pub fn rough_screening(
    g: &BipartiteGraph,
    t_hot: u64,
    t_click: u32,
    pool: &WorkerPool,
) -> RoughScreening {
    let hot: Vec<bool> = pool
        .map_vertices(g.num_items(), |v| g.item_total_clicks(ItemId(v as u32)))
        .into_iter()
        .map(|t| t >= t_hot)
        .collect();

    // Step 2: users who clicked hot AND ordinary items, with a heavy
    // ordinary edge.
    let suspicious_users: Vec<UserId> = pool
        .filter_vertices(g.num_users(), |u| {
            let u = UserId(u as u32);
            let mut clicked_hot = false;
            let mut heavy_ordinary = false;
            for (v, c) in g.user_neighbors(u) {
                if hot[v.index()] {
                    clicked_hot = true;
                } else if c >= t_click {
                    heavy_ordinary = true;
                }
            }
            clicked_hot && heavy_ordinary
        })
        .into_iter()
        .map(|u| UserId(u as u32))
        .collect();

    // The ordinary items those users hit heavily.
    let mut sus_user = vec![false; g.num_users()];
    for u in &suspicious_users {
        sus_user[u.index()] = true;
    }
    let suspicious_items: Vec<ItemId> = pool
        .filter_vertices(g.num_items(), |v| {
            let v = ItemId(v as u32);
            !hot[v.index()]
                && g.item_neighbors(v)
                    .any(|(u, c)| sus_user[u.index()] && c >= t_click)
        })
        .into_iter()
        .map(|v| ItemId(v as u32))
        .collect();

    let user_fraction = if g.num_users() == 0 {
        0.0
    } else {
        suspicious_users.len() as f64 / g.num_users() as f64
    };
    let item_fraction = if g.num_items() == 0 {
        0.0
    } else {
        suspicious_items.len() as f64 / g.num_items() as f64
    };

    RoughScreening {
        suspicious_users,
        suspicious_items,
        user_fraction,
        item_fraction,
    }
}

impl RoughScreening {
    /// The Section IV-B contrast: the fraction of an item's clickers that
    /// are roughly-screened suspicious users. The paper reports 1.98% for
    /// suspicious items vs 0.49% for normal items of similar popularity.
    pub fn suspicious_clicker_share(&self, g: &BipartiteGraph, item: ItemId) -> f64 {
        let deg = g.item_degree(item);
        if deg == 0 {
            return 0.0;
        }
        let hits = g
            .item_adjacency(item)
            .iter()
            .filter(|u| self.suspicious_users.binary_search(u).is_ok())
            .count();
        hits as f64 / deg as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::GraphBuilder;

    /// Hot item i0, target i1 hammered by u0/u1 (who also touch i0),
    /// ordinary traffic elsewhere.
    fn scenario() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 100..1200u32 {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        for u in 0..2u32 {
            b.add_click(UserId(u), ItemId(0), 1);
            b.add_click(UserId(u), ItemId(1), 14);
        }
        // u5: heavy ordinary clicks but never touched a hot item.
        b.add_click(UserId(5), ItemId(2), 20);
        // u6: hot only.
        b.add_click(UserId(6), ItemId(0), 9);
        b.build()
    }

    #[test]
    fn finds_users_with_both_signals() {
        let s = rough_screening(&scenario(), 1_000, 12, &WorkerPool::new(2));
        assert_eq!(s.suspicious_users, vec![UserId(0), UserId(1)]);
        assert!(!s.suspicious_users.contains(&UserId(5)), "no hot click");
        assert!(
            !s.suspicious_users.contains(&UserId(6)),
            "no heavy ordinary"
        );
    }

    #[test]
    fn items_follow_from_users() {
        let s = rough_screening(&scenario(), 1_000, 12, &WorkerPool::new(2));
        assert_eq!(s.suspicious_items, vec![ItemId(1)]);
        assert!(
            !s.suspicious_items.contains(&ItemId(2)),
            "u5 is not suspicious"
        );
        assert!(
            !s.suspicious_items.contains(&ItemId(0)),
            "hot items excluded"
        );
    }

    #[test]
    fn fractions_are_ratios() {
        let g = scenario();
        let s = rough_screening(&g, 1_000, 12, &WorkerPool::new(2));
        assert!((s.user_fraction - 2.0 / g.num_users() as f64).abs() < 1e-12);
        assert!((s.item_fraction - 1.0 / g.num_items() as f64).abs() < 1e-12);
    }

    #[test]
    fn clicker_share_contrast() {
        let g = scenario();
        let s = rough_screening(&g, 1_000, 12, &WorkerPool::new(2));
        let sus_share = s.suspicious_clicker_share(&g, ItemId(1));
        let hot_share = s.suspicious_clicker_share(&g, ItemId(0));
        assert!(
            sus_share > hot_share * 10.0,
            "suspicious item {sus_share} vs hot item {hot_share}"
        );
        assert_eq!(
            s.suspicious_clicker_share(&g, ItemId(2)),
            0.0,
            "item clicked only by non-suspicious users"
        );
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let s = rough_screening(&g, 1_000, 12, &WorkerPool::new(2));
        assert!(s.suspicious_users.is_empty());
        assert_eq!(s.user_fraction, 0.0);
    }

    #[test]
    fn rough_screen_is_loose_on_synthetic_data() {
        // The paper's point: the rough screen over-collects relative to the
        // real framework. On synthetic data it must cover (nearly) every
        // planted worker, while the full pipeline's output is much tighter.
        use ricd_datagen::prelude::*;
        let ds = generate(&DatasetConfig::small(), &AttackConfig::small()).unwrap();
        // T_hot must classify the ridden items as hot for the screen to see
        // the co-click link; derive it from the planted groups instead of
        // hard-coding an absolute count, so the test is robust to generator
        // calibration at this scale.
        let t_hot = ds
            .truth
            .groups
            .iter()
            .flat_map(|g| &g.ridden_hot_items)
            .map(|&v| ds.graph.item_total_clicks(v))
            .min()
            .unwrap();
        let s = rough_screening(&ds.graph, t_hot, 12, &WorkerPool::new(2));
        let workers = ds.truth.abnormal_users();
        let covered = workers
            .iter()
            .filter(|w| s.suspicious_users.binary_search(w).is_ok())
            .count();
        assert!(
            covered * 10 >= workers.len() * 8,
            "rough screen covers ≥80% of planted workers ({covered}/{})",
            workers.len()
        );
        // Looseness: the rough screen flags at least as many users as the
        // full pipeline outputs.
        let full =
            crate::pipeline::RicdPipeline::new(crate::params::RicdParams::default()).run(&ds.graph);
        assert!(s.suspicious_users.len() >= full.suspicious_users().len());
    }
}
