//! Run budgets: bounds a detection run agrees to respect, with graceful
//! degradation instead of abortion when one is exhausted.
//!
//! Production detection shares a cluster with serving workloads; the paper's
//! deployment runs daily over tens of billions of clicks. A run that
//! overruns its window must not take the day's report down with it — it
//! should fall back to the cheap naive algorithm (Algorithm 1) and say so.
//! [`RunBudget`] carries the bounds; the pipeline checks them at phase
//! boundaries and marks the output [`Degraded`](crate::result::RunStatus)
//! when it had to cut corners.

use std::time::{Duration, Instant};

/// Resource bounds for one detection run. `Default` is unbounded.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunBudget {
    /// Wall-clock limit. Checked at phase boundaries (detect → screen →
    /// identify), not preemptively: a phase in flight runs to completion.
    pub deadline: Option<Duration>,
    /// Cap on reported groups; excess (lowest-priority) groups are dropped.
    pub max_groups: Option<usize>,
    /// Cap on the streaming frontier per batch; excess seeds are deferred
    /// (they re-arm on the items' next heavy edge or the next full resync).
    pub max_frontier: Option<usize>,
}

impl RunBudget {
    /// An unbounded budget.
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Sets the group cap.
    pub fn with_max_groups(mut self, n: usize) -> Self {
        self.max_groups = Some(n);
        self
    }

    /// Sets the streaming frontier cap.
    pub fn with_max_frontier(mut self, n: usize) -> Self {
        self.max_frontier = Some(n);
        self
    }

    /// True if no bound is set.
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none() && self.max_groups.is_none() && self.max_frontier.is_none()
    }

    /// True when `elapsed` has consumed the whole deadline. The comparison
    /// is inclusive: a run that has spent *exactly* its budget is out of
    /// budget, so a zero deadline trips on the very first check even if no
    /// time has measurably passed.
    pub fn deadline_hit(&self, elapsed: Duration) -> bool {
        self.deadline.is_some_and(|d| elapsed >= d)
    }
}

/// A started clock measuring a run against its budget.
#[derive(Clone, Copy, Debug)]
pub struct BudgetClock {
    started: Instant,
    budget: RunBudget,
}

impl BudgetClock {
    /// Starts the clock now.
    pub fn start(budget: RunBudget) -> Self {
        Self {
            started: Instant::now(),
            budget,
        }
    }

    /// Elapsed wall-clock time since the run began.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// True once the deadline (if any) has passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.budget.deadline_hit(self.started.elapsed())
    }

    /// The budget this clock measures against.
    pub fn budget(&self) -> &RunBudget {
        &self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unbounded() {
        let b = RunBudget::none();
        assert!(b.is_unbounded());
        let clock = BudgetClock::start(b);
        assert!(!clock.deadline_exceeded());
    }

    #[test]
    fn builders_compose() {
        let b = RunBudget::none()
            .with_deadline(Duration::from_millis(5))
            .with_max_groups(3)
            .with_max_frontier(100);
        assert_eq!(b.deadline, Some(Duration::from_millis(5)));
        assert_eq!(b.max_groups, Some(3));
        assert_eq!(b.max_frontier, Some(100));
        assert!(!b.is_unbounded());
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let clock = BudgetClock::start(RunBudget::none().with_deadline(Duration::ZERO));
        assert!(clock.deadline_exceeded());
    }

    #[test]
    fn deadline_boundary_is_inclusive() {
        // The equality edge, with elapsed pinned instead of measured: at
        // exactly the deadline the run is out of budget (>=, not >), and
        // the zero/zero corner — no time passed, zero budget — still trips.
        let b = RunBudget::none().with_deadline(Duration::from_millis(10));
        assert!(!b.deadline_hit(Duration::from_millis(9)));
        assert!(
            b.deadline_hit(Duration::from_millis(10)),
            "elapsed == deadline is a trip"
        );
        assert!(b.deadline_hit(Duration::from_millis(11)));
        let zero = RunBudget::none().with_deadline(Duration::ZERO);
        assert!(
            zero.deadline_hit(Duration::ZERO),
            "zero budget is spent at t=0"
        );
        assert!(
            !RunBudget::none().deadline_hit(Duration::MAX),
            "no deadline never trips"
        );
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let clock = BudgetClock::start(RunBudget::none().with_deadline(Duration::from_secs(3600)));
        assert!(!clock.deadline_exceeded());
        assert!(clock.elapsed() < Duration::from_secs(1));
    }
}
