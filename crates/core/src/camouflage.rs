//! The camouflage-restriction guarantee (Section V-C, detection
//! property 3).
//!
//! "The reason why our framework can restrict camouflage is that each
//! (α, k₁, k₂)-extension biclique extracted by Algorithm 3 must contain a
//! biclique; if the attacker wants not to be detected by the algorithm, the
//! new edges he adds can't create a new biclique. This problem is known as
//! the Zarankiewicz problem and Füredi provides the best general upper
//! bound. In other words, for every attacker who is not detected by RICD,
//! the false clicks he can create have an upper bound."
//!
//! This module makes that guarantee executable:
//!
//! * [`kovari_sos_turan_bound`] — the classical Kővári–Sós–Turán upper
//!   bound on `z(m, n; s, t)`, the maximum number of edges an `m × n`
//!   bipartite graph can carry without containing a `K_{s,t}`;
//! * [`max_undetected_fake_edges`] — that bound instantiated at the
//!   detector's `(k₁, k₂)`: the ceiling on fake click *edges* an attacker
//!   confined to `m` accounts and `n` items can ever create while staying
//!   structurally invisible to Algorithm 3;
//! * [`contains_biclique`] — a direct (exponential in `s`, fine for the
//!   attack scales in question) witness search used by the property tests
//!   to validate the bound and by analysts to certify a suspicious block.

use ricd_graph::{BipartiteGraph, ItemId, UserId};

/// The Kővári–Sós–Turán bound (bipartite form):
/// `z(m, n; s, t) ≤ (s − 1)^{1/t} · (m − t + 1) · n^{1 − 1/t} + (t − 1) · n`.
///
/// Bounds the edges of an `m × n` bipartite graph (users × items) with no
/// `K_{s,t}` — no `s` users sharing `t` common items. Returns
/// `f64::INFINITY` for degenerate parameters (`s == 0 || t == 0`).
pub fn kovari_sos_turan_bound(m: usize, n: usize, s: usize, t: usize) -> f64 {
    if s == 0 || t == 0 {
        return f64::INFINITY;
    }
    if m == 0 || n == 0 {
        return 0.0;
    }
    let (m, n, s, t) = (m as f64, n as f64, s as f64, t as f64);
    (s - 1.0).powf(1.0 / t) * (m - t + 1.0).max(0.0) * n.powf(1.0 - 1.0 / t) + (t - 1.0) * n
}

/// The ceiling on fake click edges an attacker controlling `accounts`
/// accounts and targeting `items` items can create without forming the
/// `K_{k₁,k₂}` that Algorithm 3's extraction necessarily contains.
///
/// The bound is on *edges* (distinct user–item pairs): per-edge click
/// counts don't enter the structural argument, but each fake edge carries
/// at least one fake click, so total fake clicks from an undetected
/// attacker are at least bounded in their *spread* — exactly the property
/// the paper claims ("the false clicks he can create have an upper bound").
pub fn max_undetected_fake_edges(accounts: usize, items: usize, k1: usize, k2: usize) -> f64 {
    kovari_sos_turan_bound(accounts, items, k1, k2)
}

/// Exhaustively checks whether `g` contains a `K_{s,t}` (s users × t items,
/// complete). Branch-and-bound over item combinations with user-set
/// intersection, practical for the block sizes screening hands to analysts
/// (tens × tens).
pub fn contains_biclique(g: &BipartiteGraph, s: usize, t: usize) -> bool {
    if s == 0 || t == 0 {
        return true;
    }
    let items: Vec<ItemId> = g.items().filter(|&v| g.item_degree(v) >= s).collect();
    if items.len() < t {
        return false;
    }
    let all_users: Vec<UserId> = g.users().collect();
    search(g, s, t, &all_users, &items, 0)
}

fn search(
    g: &BipartiteGraph,
    s: usize,
    t: usize,
    users: &[UserId],
    cand: &[ItemId],
    depth: usize,
) -> bool {
    if depth == t {
        return users.len() >= s;
    }
    if cand.len() < t - depth {
        return false;
    }
    for (i, &v) in cand.iter().enumerate() {
        if cand.len() - i < t - depth {
            return false;
        }
        // users ∩ adj(v)
        let adj = g.item_adjacency(v);
        let mut next = Vec::with_capacity(users.len().min(adj.len()));
        let (mut a, mut b) = (0, 0);
        while a < users.len() && b < adj.len() {
            match users[a].cmp(&adj[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    next.push(users[a]);
                    a += 1;
                    b += 1;
                }
            }
        }
        if next.len() >= s && search(g, s, t, &next, &cand[i + 1..], depth + 1) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::GraphBuilder;

    #[test]
    fn bound_matches_known_small_cases() {
        // z(4, 4; 2, 2) = 9 (known Zarankiewicz value); any valid upper
        // bound must sit at or above it…
        let b = kovari_sos_turan_bound(4, 4, 2, 2);
        assert!(b >= 9.0, "bound {b}");
        // …and far below the complete graph for nontrivial sizes.
        let b = kovari_sos_turan_bound(100, 100, 2, 2);
        assert!(b < 100.0 * 100.0 / 5.0, "bound {b}");
        // z(3, 3; 2, 2) = 6.
        assert!(kovari_sos_turan_bound(3, 3, 2, 2) >= 6.0);
    }

    #[test]
    fn bound_monotone_in_forbidden_size() {
        // Forbidding a larger biclique permits more edges.
        let small = kovari_sos_turan_bound(1000, 1000, 2, 2);
        let large = kovari_sos_turan_bound(1000, 1000, 10, 10);
        assert!(large > small);
    }

    #[test]
    fn degenerate_parameters() {
        assert_eq!(kovari_sos_turan_bound(0, 10, 2, 2), 0.0);
        assert!(kovari_sos_turan_bound(10, 10, 0, 2).is_infinite());
    }

    #[test]
    fn undetected_attacker_budget_is_small() {
        // An attacker with 25 accounts and 12 targets, against the paper's
        // (k1, k2) = (10, 10): the structural ceiling is far below the
        // complete 25 x 12 = 300 edges the optimal attack wants.
        let bound = max_undetected_fake_edges(25, 12, 10, 10);
        assert!(bound < 300.0, "bound {bound}");
    }

    #[test]
    fn biclique_witness_found_and_absent() {
        let mut b = GraphBuilder::new();
        for u in 0..10u32 {
            for v in 0..10u32 {
                b.add_click(UserId(u), ItemId(v), 1);
            }
        }
        let g = b.build();
        assert!(contains_biclique(&g, 10, 10));
        assert!(contains_biclique(&g, 5, 7));
        assert!(!contains_biclique(&g, 11, 10));
        assert!(!contains_biclique(&g, 10, 11));
    }

    #[test]
    fn sparse_graph_has_no_large_biclique() {
        let mut b = GraphBuilder::new();
        for u in 0..50u32 {
            b.add_click(UserId(u), ItemId(u % 7), 1);
        }
        let g = b.build();
        assert!(!contains_biclique(&g, 3, 2));
    }

    #[test]
    fn near_biclique_with_one_missing_edge() {
        // Remove one edge from K_{10,10}: no K_{10,10}, but K_{9,10} and
        // K_{10,9} remain.
        let mut b = GraphBuilder::new();
        for u in 0..10u32 {
            for v in 0..10u32 {
                if !(u == 0 && v == 0) {
                    b.add_click(UserId(u), ItemId(v), 1);
                }
            }
        }
        let g = b.build();
        assert!(!contains_biclique(&g, 10, 10));
        assert!(contains_biclique(&g, 9, 10));
        assert!(contains_biclique(&g, 10, 9));
    }

    #[test]
    fn bound_certified_by_witness_search() {
        // Random-ish graphs staying under the KST bound for K_{2,2} at this
        // size usually avoid the biclique; graphs far above it must contain
        // one (pigeonhole). We assert only the "must contain" direction,
        // which is the theorem.
        let (m, n) = (12usize, 12usize);
        // Complete bipartite graph has z + something edges → must contain.
        let mut b = GraphBuilder::new();
        for u in 0..m as u32 {
            for v in 0..n as u32 {
                b.add_click(UserId(u), ItemId(v), 1);
            }
        }
        let g = b.build();
        let edges = g.num_edges() as f64;
        let bound = kovari_sos_turan_bound(m, n, 2, 2);
        assert!(edges > bound);
        assert!(contains_biclique(&g, 2, 2));
    }
}
