//! The suspicious group detection module (Algorithm 2).
//!
//! Builds the working bipartite graph — the whole click graph, or, when the
//! business department supplies known-abnormal **seeds**, only the region
//! around them (`GraphGenerator`'s `MaxBiGraph(node)` — here the two-hop
//! ball, which contains every biclique through the seed) — then runs the
//! Algorithm 3 extraction and splits the survivors into connected
//! components, each one a suspicious attack group.

use crate::extract::{extract_with, ExtractionStats, FixpointMode, SquareStrategy};
use crate::params::RicdParams;
use crate::result::SuspiciousGroup;
use ricd_engine::WorkerPool;
use ricd_graph::components::connected_components;
use ricd_graph::{BipartiteGraph, GraphView, ItemId, UserId};
use ricd_obs::MetricsRegistry;

/// Known-abnormal nodes supplied by the business department (optional
/// auxiliary input; Algorithm 2 lines 5–8).
#[derive(Clone, Debug, Default)]
pub struct Seeds {
    /// Known abnormal users.
    pub users: Vec<UserId>,
    /// Known abnormal items.
    pub items: Vec<ItemId>,
}

impl Seeds {
    /// No seed information — Algorithm 2's `else` branch ("this module can
    /// still work properly").
    pub fn none() -> Self {
        Self::default()
    }

    /// True if no seeds were given.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty() && self.items.is_empty()
    }
}

/// Output of the detection module.
#[derive(Clone, Debug)]
pub struct DetectedGroups {
    /// Candidate groups (pre-screening), each a connected component of the
    /// extraction survivors with at least `k₁` users and `k₂` items.
    pub groups: Vec<SuspiciousGroup>,
    /// Extraction counters.
    pub stats: ExtractionStats,
}

/// The two-hop ball around the seeds: seeds, their neighbors, and their
/// neighbors' neighbors. Any (α,k₁,k₂)-extension biclique containing a seed
/// lies inside this ball, so restricting to it loses nothing around seeds.
fn seed_ball(g: &BipartiteGraph, seeds: &Seeds) -> (Vec<UserId>, Vec<ItemId>) {
    let mut users: Vec<UserId> = seeds.users.clone();
    let mut items: Vec<ItemId> = seeds.items.clone();
    // First hop.
    for &u in &seeds.users {
        items.extend(g.user_adjacency(u));
    }
    for &v in &seeds.items {
        users.extend(g.item_adjacency(v));
    }
    users.sort_unstable();
    users.dedup();
    items.sort_unstable();
    items.dedup();
    // Second hop (close the ball so co-click structure is complete).
    let mut users2 = users.clone();
    let mut items2 = items.clone();
    for &u in &users {
        items2.extend(g.user_adjacency(u));
    }
    for &v in &items {
        users2.extend(g.item_adjacency(v));
    }
    users2.sort_unstable();
    users2.dedup();
    items2.sort_unstable();
    items2.dedup();
    (users2, items2)
}

/// The working view Algorithm 2 starts from: the full graph without seeds,
/// or the two-hop seed ball with them. Shared with the sharded runtime so
/// both paths search the identical region.
pub(crate) fn starting_view<'g>(g: &'g BipartiteGraph, seeds: &Seeds) -> GraphView<'g> {
    if seeds.is_empty() {
        GraphView::full(g)
    } else {
        let (users, items) = seed_ball(g, seeds);
        GraphView::restricted(g, users, items)
    }
}

/// Runs the full detection module on `g` with the default
/// ([`FixpointMode::Delta`]) extraction fixpoint and no metrics.
pub fn detect_groups(
    g: &BipartiteGraph,
    seeds: &Seeds,
    params: &RicdParams,
    pool: &WorkerPool,
    strategy: SquareStrategy,
) -> DetectedGroups {
    detect_groups_with(
        g,
        seeds,
        params,
        pool,
        strategy,
        FixpointMode::default(),
        None,
    )
}

/// [`detect_groups`] with an explicit extraction fixpoint mode and optional
/// metrics registry (for per-round extraction timings).
pub fn detect_groups_with(
    g: &BipartiteGraph,
    seeds: &Seeds,
    params: &RicdParams,
    pool: &WorkerPool,
    strategy: SquareStrategy,
    mode: FixpointMode,
    metrics: Option<&MetricsRegistry>,
) -> DetectedGroups {
    let mut view = starting_view(g, seeds);

    let stats = extract_with(&mut view, params, pool, strategy, mode, metrics);

    let groups = connected_components(&view)
        .into_iter()
        // A component smaller than (k₁, k₂) cannot contain a qualifying
        // structure; singletons and slivers are artifacts, not attacks.
        .filter(|c| c.users.len() >= params.k1 && c.items.len() >= params.k2)
        .map(|c| SuspiciousGroup {
            users: c.users,
            items: c.items,
            ridden_hot_items: Vec::new(),
        })
        .collect();

    DetectedGroups { groups, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::GraphBuilder;

    /// Two planted 10x10 attack bicliques + organic noise.
    fn graph() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for base in [0u32, 50] {
            for u in 0..10 {
                for v in 0..10 {
                    b.add_click(UserId(base + u), ItemId(base + v), 13);
                }
            }
        }
        for u in 0..100u32 {
            b.add_click(UserId(200 + u), ItemId(200 + (u % 30)), 2);
        }
        b.build()
    }

    #[test]
    fn finds_both_groups_without_seeds() {
        let g = graph();
        let out = detect_groups(
            &g,
            &Seeds::none(),
            &RicdParams::default(),
            &WorkerPool::new(4),
            SquareStrategy::Parallel,
        );
        assert_eq!(out.groups.len(), 2);
        for grp in &out.groups {
            assert_eq!(grp.users.len(), 10);
            assert_eq!(grp.items.len(), 10);
        }
    }

    #[test]
    fn seeded_detection_restricts_to_seed_region() {
        let g = graph();
        let seeds = Seeds {
            users: vec![],
            items: vec![ItemId(0)], // inside the first group
        };
        let out = detect_groups(
            &g,
            &seeds,
            &RicdParams::default(),
            &WorkerPool::new(4),
            SquareStrategy::Parallel,
        );
        assert_eq!(
            out.groups.len(),
            1,
            "only the seeded group's region is searched"
        );
        assert!(out.groups[0].items.contains(&ItemId(0)));
        assert!(out.groups[0].users.iter().all(|u| u.0 < 10));
    }

    #[test]
    fn seed_on_clean_node_yields_nothing() {
        let g = graph();
        let seeds = Seeds {
            users: vec![UserId(250)],
            items: vec![],
        };
        let out = detect_groups(
            &g,
            &seeds,
            &RicdParams::default(),
            &WorkerPool::new(4),
            SquareStrategy::Parallel,
        );
        assert!(out.groups.is_empty());
    }

    #[test]
    fn component_size_filter_drops_slivers() {
        // One 10x10 group and one 10x5 (too few items).
        let mut b = GraphBuilder::new();
        for u in 0..10u32 {
            for v in 0..10u32 {
                b.add_click(UserId(u), ItemId(v), 13);
            }
        }
        for u in 0..10u32 {
            for v in 0..5u32 {
                b.add_click(UserId(100 + u), ItemId(100 + v), 13);
            }
        }
        let g = b.build();
        let out = detect_groups(
            &g,
            &Seeds::none(),
            &RicdParams::default(),
            &WorkerPool::new(2),
            SquareStrategy::Parallel,
        );
        assert_eq!(out.groups.len(), 1);
        assert!(out.groups[0].users.iter().all(|u| u.0 < 10));
    }

    #[test]
    fn clean_graph_yields_no_groups() {
        let mut b = GraphBuilder::new();
        for u in 0..200u32 {
            b.add_click(UserId(u), ItemId(u % 40), 2);
            b.add_click(UserId(u), ItemId(40 + (u % 13)), 1);
        }
        let g = b.build();
        let out = detect_groups(
            &g,
            &Seeds::none(),
            &RicdParams::default(),
            &WorkerPool::new(2),
            SquareStrategy::Parallel,
        );
        assert!(out.groups.is_empty());
    }
}
