//! The (α, k₁, k₂)-extension biclique extraction algorithm (Algorithm 3).
//!
//! Two pruning rules, each a *necessary* condition for membership in an
//! (α, k₁, k₂)-extension biclique (Definitions 2–4):
//!
//! * **CorePruning** (Lemma 1): every member user needs live degree
//!   ≥ `⌈α·k₂⌉`, every member item ≥ `⌈α·k₁⌉`.
//! * **SquarePruning** (Lemma 2): every member user needs ≥ `k₁`
//!   (α, k₂)-neighbors — same-side vertices sharing ≥ `⌈k₂·α⌉` common
//!   neighbors — and every member item ≥ `k₂` (α, k₁)-neighbors.
//!
//! Two execution strategies are provided:
//!
//! * [`SquareStrategy::Parallel`] (default) — bulk-synchronous rounds on the
//!   worker pool, the Grape formulation: all removal decisions in a round
//!   are taken against the same snapshot, then applied, then the next round
//!   runs; iterated to a fixpoint. This is how the paper's implementation
//!   runs on Grape's 16 workers.
//! * [`SquareStrategy::SequentialOrdered`] — the literal pseudocode: one
//!   vertex at a time, candidates visited in non-decreasing two-hop
//!   neighborhood size (the `reduce2Hop` ordering of [Lyu et al.,
//!   VLDB'20] the paper cites), removals taking effect immediately.
//!
//! # Delta-driven fixpoint
//!
//! Removal is monotone: degrees and common-neighbor counts only fall as
//! vertices disappear, so a vertex that passes a bound can newly fail it
//! only if something in its neighborhood was removed — one hop away for the
//! degree bound, two hops for the common-neighbor bound. The default
//! [`FixpointMode::Delta`] exploits this: after one full seeding round,
//! every later round checks only the dirty frontier derived from the
//! [`GraphView`] removal log ([`ricd_graph::frontier`]), instead of
//! re-scanning every vertex every round. When most of the view has died,
//! the remaining work is compacted onto a small remapped graph
//! ([`InducedSubgraph::compact`]) so even adjacency walks stop touching
//! corpses. [`FixpointMode::FullRescan`] preserves the pre-delta behavior
//! for differential testing.
//!
//! All paths converge to the same fixpoint (by monotonicity the fixpoint is
//! unique and independent of removal order), so mode and strategy only
//! affect intermediate work, never the surviving vertex set.

use crate::kernel::{self, KernelTally};
use crate::params::{KernelPolicy, RicdParams};
use ricd_engine::WorkerPool;
use ricd_graph::frontier::{self, FrontierScratch};
use ricd_graph::twohop::{self, CommonNeighborScratch, HubBitmaps, KernelScratch};
use ricd_graph::view::LogMark;
use ricd_graph::{GraphView, InducedSubgraph, ItemId, UserId};
use ricd_obs::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How SquarePruning visits candidates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SquareStrategy {
    /// Bulk-synchronous rounds on the worker pool (Grape formulation).
    #[default]
    Parallel,
    /// Literal sequential pseudocode with `reduce2Hop` candidate ordering.
    SequentialOrdered,
}

/// How rounds after the first select their candidates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FixpointMode {
    /// One full seeding round, then dirty-frontier worklists derived from
    /// the removal log, with view compaction when most vertices have died.
    #[default]
    Delta,
    /// Re-scan every vertex every round (the pre-delta behavior), kept for
    /// differential testing and ablation.
    FullRescan,
}

/// Counters describing one extraction run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractionStats {
    /// Alternation rounds until the fixpoint.
    pub rounds: usize,
    /// Users removed by CorePruning.
    pub core_removed_users: usize,
    /// Items removed by CorePruning.
    pub core_removed_items: usize,
    /// Users removed by SquarePruning.
    pub square_removed_users: usize,
    /// Items removed by SquarePruning.
    pub square_removed_items: usize,
    /// Total size of the SquarePruning user worklists in delta rounds.
    pub dirty_users: usize,
    /// Total size of the SquarePruning item worklists in delta rounds.
    pub dirty_items: usize,
    /// Alive users *not* re-checked by SquarePruning in delta rounds — the
    /// work a full rescan would have done for nothing.
    pub skipped_users: usize,
    /// Alive items not re-checked by SquarePruning in delta rounds.
    pub skipped_items: usize,
    /// Times the view was compacted onto a remapped subgraph mid-fixpoint.
    pub compactions: usize,
    /// Survival queries answered by the wedge-counting kernel.
    pub kernel_wedge: u64,
    /// Survival queries answered by the blocked SWAR kernel.
    pub kernel_blocked: u64,
    /// Survival queries answered by the sorted-intersection kernel.
    pub kernel_sorted: u64,
    /// Largest hub-bitmap registry materialized during the run, in bytes
    /// (exported as the `twohop.hub_bitmap_bytes` gauge).
    pub hub_bitmap_bytes: usize,
}

impl ExtractionStats {
    /// Folds one worker's / one pass's kernel tally into the run counters.
    pub(crate) fn absorb_kernels(&mut self, tally: KernelTally) {
        self.kernel_wedge += tally.wedge;
        self.kernel_blocked += tally.blocked;
        self.kernel_sorted += tally.sorted;
    }
}

/// Compact the view once fewer than 1 in `COMPACT_ALIVE_DIVISOR` vertices
/// are still alive…
const COMPACT_ALIVE_DIVISOR: usize = 4;
/// …but only when the graph is big enough for rebuild cost to be noise.
const COMPACT_MIN_VERTICES: usize = 1024;

/// Runs Algorithm 3 in place on `view`, leaving only vertices that can
/// belong to an (α, k₁, k₂)-extension biclique.
pub fn extract(
    view: &mut GraphView<'_>,
    params: &RicdParams,
    pool: &WorkerPool,
    strategy: SquareStrategy,
) -> ExtractionStats {
    extract_with(view, params, pool, strategy, FixpointMode::default(), None)
}

/// [`extract`] with explicit fixpoint mode and optional metrics.
///
/// With a registry attached, per-round wall time is recorded under
/// `extract.round_nanos`; the dirty/skipped/compaction counters are in the
/// returned [`ExtractionStats`] for the caller to export.
pub fn extract_with(
    view: &mut GraphView<'_>,
    params: &RicdParams,
    pool: &WorkerPool,
    strategy: SquareStrategy,
    mode: FixpointMode,
    metrics: Option<&MetricsRegistry>,
) -> ExtractionStats {
    let ctx = FixpointCtx {
        params,
        pool,
        strategy,
        mode,
        metrics,
    };
    let mut stats = ExtractionStats::default();
    run_fixpoint(view, &ctx, None, 1, &mut stats);
    stats
}

/// Immutable per-run configuration threaded through the fixpoint.
struct FixpointCtx<'a> {
    params: &'a RicdParams,
    pool: &'a WorkerPool,
    strategy: SquareStrategy,
    mode: FixpointMode,
    metrics: Option<&'a MetricsRegistry>,
}

/// Pending worklists handed across a compaction boundary (already in the
/// compacted graph's local id space), so the first post-compaction round
/// stays worklist-only instead of paying a fresh full seeding pass.
struct Carryover {
    core_users: Vec<u32>,
    core_items: Vec<u32>,
    square_users: Vec<u32>,
    square_items: Vec<u32>,
    /// The compaction interrupted a round whose SquarePruning passes were
    /// going to re-check everything (the seeding round, mid-round, right
    /// after CorePruning): run them full on the compacted graph instead of
    /// carrying an "everything is dirty" worklist.
    square_full: bool,
}

/// The alternating pruning loop on one view. Recurses (at most once per
/// level) into a compacted copy when the alive fraction collapses.
fn run_fixpoint(
    view: &mut GraphView<'_>,
    ctx: &FixpointCtx<'_>,
    carryover: Option<Carryover>,
    start_round: usize,
    stats: &mut ExtractionStats,
) {
    let user_scratch = ScratchPool::new(view.graph().num_users());
    let item_scratch = ScratchPool::new(view.graph().num_items());
    let mut fscratch = FrontierScratch::for_view(view);
    let policy = KernelPolicy::default();
    // Hub bitmaps are built at most once per fixpoint level — lazily,
    // after the first CorePruning fixpoint has collapsed the degree
    // distribution — and stay sound for every later round (monotone
    // removals; see `HubBitmaps`' staleness contract). A compaction starts
    // a new level with fresh ids, so the recursion rebuilds there.
    let mut hubs: Option<HubBitmaps> = None;
    let round_hist = ctx
        .metrics
        .map(|m| m.duration_histogram("extract.round_nanos"));
    // Per-pass log positions: each pass's next frontier is derived from
    // everything removed since it last ran (for CorePruning: since it last
    // *finished*, because it runs to its own fixpoint).
    let mut core_mark = view.log_mark();
    let mut sq_user_mark = view.log_mark();
    let mut sq_item_mark = view.log_mark();
    let mut carry = carryover;

    for round in start_round..=ctx.params.max_rounds {
        stats.rounds = round;
        let round_started = ctx.metrics.map(|m| m.clock().now());
        // A full round re-checks every alive vertex: always in FullRescan
        // mode, and as the seeding round of a delta level that has no
        // carryover (the top level's first round).
        let full = matches!(ctx.mode, FixpointMode::FullRescan)
            || (round == start_round && carry.is_none());
        let carry_now = carry.take();

        // --- CorePruning, to its own fixpoint ---
        let (mut seed_users, mut seed_items) = if full {
            (alive_user_ids(view), alive_item_ids(view))
        } else {
            let (ru, ri) = view.removed_since(core_mark);
            (
                frontier::core_dirty_users(view, ri, &mut fscratch),
                frontier::core_dirty_items(view, ru, &mut fscratch),
            )
        };
        if let Some(c) = &carry_now {
            merge_sorted(&mut seed_users, &c.core_users);
            merge_sorted(&mut seed_items, &c.core_items);
        }
        let core = core_pruning(view, ctx, seed_users, seed_items, &mut fscratch);
        core_mark = view.log_mark();
        stats.core_removed_users += core.0;
        stats.core_removed_items += core.1;

        // Whether this round's square passes re-check everything: a genuinely
        // full round, or the resumption of one interrupted by a mid-round
        // compaction below.
        let square_full = full || carry_now.as_ref().is_some_and(|c| c.square_full);

        // Compact *before* the wedge walks when CorePruning just gutted the
        // view. This matters most on the seeding round: CorePruning alone
        // can kill the vast majority of vertices, and every SquarePruning
        // wedge walk on the original CSR still pays to skip the dead
        // adjacency entries. The square passes resume on the dense copy.
        if matches!(ctx.mode, FixpointMode::Delta) && should_compact(view) {
            compact_and_recurse(
                view,
                ctx,
                core_mark,
                sq_user_mark,
                sq_item_mark,
                &mut fscratch,
                round,
                square_full,
                stats,
            );
            return;
        }

        // --- SquarePruning, one user pass + one item pass ---
        // Both modes keep the pseudocode's user-then-item order; the fixpoint
        // is order-independent (monotonicity), so delta rounds only change
        // *which* vertices are checked, never the outcome.
        let (carry_sq_users, carry_sq_items) = match &carry_now {
            Some(c) if !c.square_full => (
                Some(c.square_users.as_slice()),
                Some(c.square_items.as_slice()),
            ),
            _ => (None, None),
        };
        if matches!(ctx.strategy, SquareStrategy::Parallel) && hubs.is_none() {
            let h = kernel::build_hubs(view, &policy);
            stats.hub_bitmap_bytes = stats.hub_bitmap_bytes.max(h.heap_bytes());
            hubs = Some(h);
        }
        let sq_users = square_user_round(
            view,
            ctx,
            square_full,
            &mut sq_user_mark,
            carry_sq_users,
            &mut fscratch,
            &user_scratch,
            hubs.as_ref(),
            &policy,
            stats,
        );
        let sq_items = square_item_round(
            view,
            ctx,
            square_full,
            &mut sq_item_mark,
            carry_sq_items,
            &mut fscratch,
            &item_scratch,
            hubs.as_ref(),
            &policy,
            stats,
        );
        stats.square_removed_users += sq_users;
        stats.square_removed_items += sq_items;

        if let (Some(h), Some(t0)) = (&round_hist, round_started) {
            let clock = ctx.metrics.unwrap().clock();
            h.observe_duration(clock.now().saturating_sub(t0));
        }

        if sq_users == 0 && sq_items == 0 {
            // CorePruning is already at its own fixpoint when its pass
            // returns; no square removals on top means no frontier is left
            // anywhere (monotonicity), so the global fixpoint is reached.
            break;
        }
    }
}

/// True once the view is mostly corpses and big enough that rebuilding a
/// dense subgraph is cheaper than dragging dead adjacency entries through
/// every remaining pass.
fn should_compact(view: &GraphView<'_>) -> bool {
    let total = view.graph().num_users() + view.graph().num_items();
    let alive = view.alive_users() + view.alive_items();
    alive > 0 && total >= COMPACT_MIN_VERTICES && alive * COMPACT_ALIVE_DIVISOR < total
}

/// Rebuilds the alive region as a dense graph, continues the fixpoint
/// there (worklists translated in), and applies the deaths back to `view`.
#[allow(clippy::too_many_arguments)]
fn compact_and_recurse(
    view: &mut GraphView<'_>,
    ctx: &FixpointCtx<'_>,
    core_mark: LogMark,
    sq_user_mark: LogMark,
    sq_item_mark: LogMark,
    fscratch: &mut FrontierScratch,
    round: usize,
    square_full: bool,
    stats: &mut ExtractionStats,
) {
    // Pending frontiers in parent-id space, derived before the ids change.
    // When the interrupted round's square passes were full anyway, there is
    // no point materialising an "everything alive" frontier — the flag makes
    // the resumed round re-check the whole (now dense) view.
    let (core_users, core_items) = {
        let (ru, ri) = view.removed_since(core_mark);
        (
            frontier::core_dirty_users(view, ri, fscratch),
            frontier::core_dirty_items(view, ru, fscratch),
        )
    };
    let (square_users, square_items) = if square_full {
        (Vec::new(), Vec::new())
    } else {
        let su = {
            let (ru, ri) = view.removed_since(sq_user_mark);
            frontier::square_dirty_users(view, ru, ri, fscratch)
        };
        let si = {
            let (ru, ri) = view.removed_since(sq_item_mark);
            frontier::square_dirty_items(view, ru, ri, fscratch)
        };
        (su, si)
    };

    let sub = InducedSubgraph::compact(view);
    stats.compactions += 1;
    // `user_map`/`item_map` are sorted, so translation preserves worklist
    // order; vertices the maps don't contain are dead and need no check.
    let carry = Carryover {
        core_users: to_local_users(&sub, &core_users),
        core_items: to_local_items(&sub, &core_items),
        square_users: to_local_users(&sub, &square_users),
        square_items: to_local_items(&sub, &square_items),
        square_full,
    };
    let mut local = GraphView::full(&sub.graph);
    run_fixpoint(&mut local, ctx, Some(carry), round, stats);
    for (li, &parent) in sub.user_map.iter().enumerate() {
        if !local.user_alive(UserId(li as u32)) {
            view.remove_user(parent);
        }
    }
    for (li, &parent) in sub.item_map.iter().enumerate() {
        if !local.item_alive(ItemId(li as u32)) {
            view.remove_item(parent);
        }
    }
}

fn to_local_users(sub: &InducedSubgraph, parents: &[u32]) -> Vec<u32> {
    parents
        .iter()
        .filter_map(|&u| sub.local_user(UserId(u)).map(|l| l.0))
        .collect()
}

fn to_local_items(sub: &InducedSubgraph, parents: &[u32]) -> Vec<u32> {
    parents
        .iter()
        .filter_map(|&v| sub.local_item(ItemId(v)).map(|l| l.0))
        .collect()
}

fn alive_user_ids(view: &GraphView<'_>) -> Vec<u32> {
    view.users().map(|u| u.0).collect()
}

fn alive_item_ids(view: &GraphView<'_>) -> Vec<u32> {
    view.items().map(|v| v.0).collect()
}

/// Merges sorted, deduplicated id lists, keeping the invariant.
fn merge_sorted(into: &mut Vec<u32>, other: &[u32]) {
    if other.is_empty() {
        return;
    }
    into.extend_from_slice(other);
    into.sort_unstable();
    into.dedup();
}

/// Lemma 1 pruning over worklists, iterated to its own fixpoint.
///
/// Seeded with the given candidate lists; every removal enqueues its
/// one-hop neighborhood on the opposite side (the only vertices whose live
/// degree changed). With full alive seeds this visits exactly what the old
/// whole-range scan visited, minus the vertices that never got dirty.
fn core_pruning(
    view: &mut GraphView<'_>,
    ctx: &FixpointCtx<'_>,
    mut users: Vec<u32>,
    mut items: Vec<u32>,
    fscratch: &mut FrontierScratch,
) -> (usize, usize) {
    let user_bound = ctx.params.user_degree_bound();
    let item_bound = ctx.params.item_degree_bound();
    let (mut removed_users, mut removed_items) = (0, 0);
    loop {
        let doomed_users: Vec<UserId> = {
            let view_ref: &GraphView<'_> = view;
            ctx.pool
                .run_worklist(
                    &users,
                    || (),
                    |_, chunk| {
                        chunk
                            .iter()
                            .copied()
                            .map(UserId)
                            .filter(|&u| {
                                view_ref.user_alive(u) && view_ref.user_degree(u) < user_bound
                            })
                            .collect::<Vec<UserId>>()
                    },
                )
                .into_iter()
                .flatten()
                .collect()
        };
        for &u in &doomed_users {
            view.remove_user(u);
        }
        merge_sorted(
            &mut items,
            &frontier::core_dirty_items(view, &doomed_users, fscratch),
        );

        let doomed_items: Vec<ItemId> = {
            let view_ref: &GraphView<'_> = view;
            ctx.pool
                .run_worklist(
                    &items,
                    || (),
                    |_, chunk| {
                        chunk
                            .iter()
                            .copied()
                            .map(ItemId)
                            .filter(|&v| {
                                view_ref.item_alive(v) && view_ref.item_degree(v) < item_bound
                            })
                            .collect::<Vec<ItemId>>()
                    },
                )
                .into_iter()
                .flatten()
                .collect()
        };
        for &v in &doomed_items {
            view.remove_item(v);
        }
        removed_users += doomed_users.len();
        removed_items += doomed_items.len();
        if doomed_users.is_empty() && doomed_items.is_empty() {
            return (removed_users, removed_items);
        }
        users = frontier::core_dirty_users(view, &doomed_items, fscratch);
        items.clear();
    }
}

/// Counts `u`'s (α, k₂)-neighbors among alive users, including `u` itself
/// when its own degree meets the bound (Definition 4 quantifies over all of
/// `U(C)`, so a perfect k₁×k₂ biclique member counts itself — excluding self
/// with the same `< k₁` test would wrongly prune exact bicliques).
fn user_neighbor_count(
    view: &GraphView<'_>,
    u: UserId,
    bound: u32,
    scratch: &mut CommonNeighborScratch,
) -> usize {
    let mut num = usize::from(view.user_degree(u) as u32 >= bound);
    twohop::for_each_user_common_neighbor(view, u, scratch, |_, c| {
        if c >= bound {
            num += 1;
        }
    });
    num
}

/// Item-side analogue of [`user_neighbor_count`].
fn item_neighbor_count(
    view: &GraphView<'_>,
    v: ItemId,
    bound: u32,
    scratch: &mut CommonNeighborScratch,
) -> usize {
    let mut num = usize::from(view.item_degree(v) as u32 >= bound);
    twohop::for_each_item_common_neighbor(view, v, scratch, |_, c| {
        if c >= bound {
            num += 1;
        }
    });
    num
}

/// One SquarePruning user pass: derive the worklist (full or dirty), record
/// delta stats, advance the pass mark, check and remove.
#[allow(clippy::too_many_arguments)]
fn square_user_round(
    view: &mut GraphView<'_>,
    ctx: &FixpointCtx<'_>,
    full: bool,
    mark: &mut LogMark,
    carry: Option<&[u32]>,
    fscratch: &mut FrontierScratch,
    scratch_pool: &ScratchPool,
    hubs: Option<&HubBitmaps>,
    policy: &KernelPolicy,
    stats: &mut ExtractionStats,
) -> usize {
    let worklist: Vec<u32> = if full {
        alive_user_ids(view)
    } else {
        let mut wl = {
            let (ru, ri) = view.removed_since(*mark);
            frontier::square_dirty_users(view, ru, ri, fscratch)
        };
        if let Some(c) = carry {
            merge_sorted(&mut wl, c);
        }
        stats.dirty_users += wl.len();
        stats.skipped_users += view.alive_users().saturating_sub(wl.len());
        wl
    };
    // Mark *before* the pass: its own removals (applied below) belong to the
    // next frontier.
    *mark = view.log_mark();
    square_user_pass(view, ctx, &worklist, scratch_pool, hubs, policy, stats)
}

/// Item-side analogue of [`square_user_round`].
#[allow(clippy::too_many_arguments)]
fn square_item_round(
    view: &mut GraphView<'_>,
    ctx: &FixpointCtx<'_>,
    full: bool,
    mark: &mut LogMark,
    carry: Option<&[u32]>,
    fscratch: &mut FrontierScratch,
    scratch_pool: &ScratchPool,
    hubs: Option<&HubBitmaps>,
    policy: &KernelPolicy,
    stats: &mut ExtractionStats,
) -> usize {
    let worklist: Vec<u32> = if full {
        alive_item_ids(view)
    } else {
        let mut wl = {
            let (ru, ri) = view.removed_since(*mark);
            frontier::square_dirty_items(view, ru, ri, fscratch)
        };
        if let Some(c) = carry {
            merge_sorted(&mut wl, c);
        }
        stats.dirty_items += wl.len();
        stats.skipped_items += view.alive_items().saturating_sub(wl.len());
        wl
    };
    *mark = view.log_mark();
    square_item_pass(view, ctx, &worklist, scratch_pool, hubs, policy, stats)
}

/// Lemma 2 user check over a worklist; decisions against the pass-start
/// snapshot (Parallel) or with immediate effect in `reduce2Hop` order
/// (SequentialOrdered). Returns the number of removals.
///
/// The Parallel arm answers each check through the kernel dispatcher with
/// the self-inclusion folded into `need` (`count ≥ k₁ ⟺ others ≥ k₁ −
/// selfq`) — the same predicate as [`user_neighbor_count`]` < k₁` with
/// early exit, against the same snapshot, so the removal set per round is
/// unchanged. SequentialOrdered keeps the literal full-count pseudocode as
/// the differential reference.
fn square_user_pass(
    view: &mut GraphView<'_>,
    ctx: &FixpointCtx<'_>,
    worklist: &[u32],
    scratch_pool: &ScratchPool,
    hubs: Option<&HubBitmaps>,
    policy: &KernelPolicy,
    stats: &mut ExtractionStats,
) -> usize {
    if worklist.is_empty() {
        return 0;
    }
    let bound = ctx.params.user_common_bound();
    let k1 = ctx.params.k1;
    match ctx.strategy {
        SquareStrategy::Parallel => {
            let results: Vec<(Vec<UserId>, KernelTally)> = {
                let view_ref: &GraphView<'_> = view;
                ctx.pool.run_worklist(
                    worklist,
                    || scratch_pool.lease(),
                    |lease, chunk| {
                        let scratch = lease.get();
                        let mut doomed = Vec::new();
                        let mut tally = KernelTally::default();
                        for &u in chunk {
                            let u = UserId(u);
                            if !view_ref.user_alive(u) {
                                continue;
                            }
                            let selfq = usize::from(view_ref.user_degree(u) as u32 >= bound);
                            let need = k1.saturating_sub(selfq);
                            if !kernel::user_survives(
                                view_ref, hubs, policy, u, bound, need, scratch, &mut tally,
                            ) {
                                doomed.push(u);
                            }
                        }
                        (doomed, tally)
                    },
                )
            };
            let mut removed = 0;
            for (doomed, tally) in results {
                stats.absorb_kernels(tally);
                removed += doomed.len();
                for u in doomed {
                    view.remove_user(u);
                }
            }
            removed
        }
        SquareStrategy::SequentialOrdered => {
            let mut lease = scratch_pool.lease();
            let scratch = lease.get().wedge_mut();
            let mut order: Vec<(usize, UserId)> = worklist
                .iter()
                .map(|&u| {
                    let u = UserId(u);
                    (twohop::user_two_hop_size(view, u, scratch), u)
                })
                .collect();
            order.sort_unstable();
            let mut removed = 0;
            for (_, u) in order {
                if !view.user_alive(u) {
                    continue;
                }
                stats.kernel_wedge += 1;
                if user_neighbor_count(view, u, bound, scratch) < k1 {
                    view.remove_user(u);
                    removed += 1;
                }
            }
            removed
        }
    }
}

/// Item-side analogue of [`square_user_pass`].
fn square_item_pass(
    view: &mut GraphView<'_>,
    ctx: &FixpointCtx<'_>,
    worklist: &[u32],
    scratch_pool: &ScratchPool,
    hubs: Option<&HubBitmaps>,
    policy: &KernelPolicy,
    stats: &mut ExtractionStats,
) -> usize {
    if worklist.is_empty() {
        return 0;
    }
    let bound = ctx.params.item_common_bound();
    let k2 = ctx.params.k2;
    match ctx.strategy {
        SquareStrategy::Parallel => {
            let results: Vec<(Vec<ItemId>, KernelTally)> = {
                let view_ref: &GraphView<'_> = view;
                ctx.pool.run_worklist(
                    worklist,
                    || scratch_pool.lease(),
                    |lease, chunk| {
                        let scratch = lease.get();
                        let mut doomed = Vec::new();
                        let mut tally = KernelTally::default();
                        for &v in chunk {
                            let v = ItemId(v);
                            if !view_ref.item_alive(v) {
                                continue;
                            }
                            let selfq = usize::from(view_ref.item_degree(v) as u32 >= bound);
                            let need = k2.saturating_sub(selfq);
                            if !kernel::item_survives(
                                view_ref, hubs, policy, v, bound, need, scratch, &mut tally,
                            ) {
                                doomed.push(v);
                            }
                        }
                        (doomed, tally)
                    },
                )
            };
            let mut removed = 0;
            for (doomed, tally) in results {
                stats.absorb_kernels(tally);
                removed += doomed.len();
                for v in doomed {
                    view.remove_item(v);
                }
            }
            removed
        }
        SquareStrategy::SequentialOrdered => {
            let mut lease = scratch_pool.lease();
            let scratch = lease.get().wedge_mut();
            let mut order: Vec<(usize, ItemId)> = worklist
                .iter()
                .map(|&v| {
                    let v = ItemId(v);
                    (twohop::item_two_hop_size(view, v, scratch), v)
                })
                .collect();
            order.sort_unstable();
            let mut removed = 0;
            for (_, v) in order {
                if !view.item_alive(v) {
                    continue;
                }
                stats.kernel_wedge += 1;
                if item_neighbor_count(view, v, bound, scratch) < k2 {
                    view.remove_item(v);
                    removed += 1;
                }
            }
            removed
        }
    }
}

/// A pool of [`KernelScratch`] buffers (wedge counts, sorted-merge buffers,
/// and the blocked kernel's candidate bitmap) shared across workers, passes,
/// and rounds: each `O(V)` zeroed allocation is paid at most once per
/// concurrently-active worker for the whole fixpoint, instead of once per
/// partition per round — the steady state allocates nothing.
///
/// Safe to reuse without cleanup: every kernel clears its counters and
/// bitmap words via its touched-lists at the *start* of each call, which
/// also heals a buffer abandoned mid-enumeration by a panicking worker.
struct ScratchPool {
    size: usize,
    free: Mutex<Vec<KernelScratch>>,
    /// Fresh `O(V)` allocations — bounded by peak concurrent leases.
    created: AtomicU64,
    /// Leases served from the free list (the steady state).
    reused: AtomicU64,
}

impl ScratchPool {
    fn new(size: usize) -> Self {
        Self {
            size,
            free: Mutex::new(Vec::new()),
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    fn lease(&self) -> ScratchLease<'_> {
        let pooled = self.free.lock().unwrap_or_else(|e| e.into_inner()).pop();
        let scratch = match pooled {
            Some(s) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                s
            }
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                KernelScratch::new(self.size)
            }
        };
        ScratchLease {
            pool: self,
            scratch: Some(scratch),
        }
    }
}

/// RAII handle returning the scratch to its pool on drop (including during
/// a panic unwind, so the buffer survives worker retries).
struct ScratchLease<'p> {
    pool: &'p ScratchPool,
    scratch: Option<KernelScratch>,
}

impl ScratchLease<'_> {
    fn get(&mut self) -> &mut KernelScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.scratch.take() {
            self.pool
                .free
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::GraphBuilder;

    /// A planted k×k biclique plus sparse organic noise.
    fn biclique_plus_noise(k: usize) -> ricd_graph::BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..k as u32 {
            for v in 0..k as u32 {
                b.add_click(UserId(u), ItemId(v), 13);
            }
        }
        // Sparse noise: users 100.. each click 2 distinct items 200.. once.
        for u in 0..50u32 {
            b.add_click(UserId(100 + u), ItemId(200 + u), 1);
            b.add_click(UserId(100 + u), ItemId(200 + (u + 1) % 50), 1);
        }
        b.build()
    }

    fn params(k: usize, alpha: f64) -> RicdParams {
        RicdParams {
            k1: k,
            k2: k,
            alpha,
            ..RicdParams::default()
        }
    }

    #[test]
    fn exact_biclique_survives_noise_removed() {
        let g = biclique_plus_noise(10);
        for strategy in [SquareStrategy::Parallel, SquareStrategy::SequentialOrdered] {
            let mut view = GraphView::full(&g);
            let stats = extract(&mut view, &params(10, 1.0), &WorkerPool::new(4), strategy);
            let (users, items) = view.alive_sets();
            assert_eq!(users.len(), 10, "{strategy:?}");
            assert_eq!(items.len(), 10, "{strategy:?}");
            assert!(users.iter().all(|u| u.0 < 10));
            assert!(items.iter().all(|v| v.0 < 10));
            assert!(stats.rounds >= 1);
            assert!(stats.core_removed_users >= 50, "noise users core-pruned");
        }
    }

    #[test]
    fn scratch_pool_reuses_buffers_across_leases() {
        let pool = ScratchPool::new(256);
        drop(pool.lease());
        for _ in 0..5 {
            drop(pool.lease());
        }
        assert_eq!(
            pool.created.load(Ordering::Relaxed),
            1,
            "sequential leases allocate once"
        );
        assert_eq!(pool.reused.load(Ordering::Relaxed), 5);
        // Two concurrent leases need a second buffer; after both return,
        // the steady state is pure reuse again.
        {
            let _a = pool.lease();
            let _b = pool.lease();
        }
        assert_eq!(pool.created.load(Ordering::Relaxed), 2);
        drop(pool.lease());
        assert_eq!(pool.created.load(Ordering::Relaxed), 2);
        assert_eq!(pool.reused.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn parallel_rounds_allocate_at_most_one_scratch_per_worker() {
        // Drive the same worklist machinery the fixpoint uses across many
        // rounds: allocations must be bounded by worker concurrency, not by
        // rounds × partitions (zero steady-state allocation).
        let g = biclique_plus_noise(10);
        let view = GraphView::full(&g);
        let pool = WorkerPool::new(4);
        let scratch_pool = ScratchPool::new(g.num_users().max(g.num_items()));
        let worklist: Vec<u32> = (0..g.num_users() as u32).collect();
        for _round in 0..8 {
            let _counts: Vec<usize> = pool.run_worklist(
                &worklist,
                || scratch_pool.lease(),
                |lease, chunk| {
                    let scratch = lease.get().wedge_mut();
                    chunk
                        .iter()
                        .map(|&u| user_neighbor_count(&view, UserId(u), 2, scratch))
                        .sum()
                },
            );
        }
        let created = scratch_pool.created.load(Ordering::Relaxed);
        let reused = scratch_pool.reused.load(Ordering::Relaxed);
        assert!(
            created <= pool.workers() as u64,
            "created {created} buffers for {} workers",
            pool.workers()
        );
        assert!(reused > 0, "later rounds must reuse pooled scratch");
    }

    #[test]
    fn undersized_biclique_fully_pruned() {
        // A 9x9 biclique cannot satisfy (k1=10, k2=10, alpha=1).
        let g = biclique_plus_noise(9);
        let mut view = GraphView::full(&g);
        extract(
            &mut view,
            &params(10, 1.0),
            &WorkerPool::new(4),
            SquareStrategy::Parallel,
        );
        assert_eq!(view.alive_users(), 0);
        assert_eq!(view.alive_items(), 0);
    }

    #[test]
    fn alpha_extension_survives_lower_alpha() {
        // 10x10 biclique plus an extension user clicking 8 of the 10 items:
        // survives alpha=0.8 (needs ceil(0.8*10)=8 common), dies at 1.0.
        let mut b = GraphBuilder::new();
        for u in 0..10u32 {
            for v in 0..10u32 {
                b.add_click(UserId(u), ItemId(v), 13);
            }
        }
        for v in 0..8u32 {
            b.add_click(UserId(10), ItemId(v), 13);
        }
        let g = b.build();

        let mut view = GraphView::full(&g);
        extract(
            &mut view,
            &params(10, 0.8),
            &WorkerPool::new(2),
            SquareStrategy::Parallel,
        );
        assert!(view.user_alive(UserId(10)), "extension user kept at α=0.8");

        let mut view = GraphView::full(&g);
        extract(
            &mut view,
            &params(10, 1.0),
            &WorkerPool::new(2),
            SquareStrategy::Parallel,
        );
        assert!(
            !view.user_alive(UserId(10)),
            "extension user pruned at α=1.0"
        );
        assert_eq!(view.alive_users(), 10, "core biclique intact");
    }

    #[test]
    fn strategies_agree_on_fixpoint() {
        let g = biclique_plus_noise(12);
        let p = params(10, 0.9);
        let mut a = GraphView::full(&g);
        extract(&mut a, &p, &WorkerPool::new(4), SquareStrategy::Parallel);
        let mut b = GraphView::full(&g);
        extract(
            &mut b,
            &p,
            &WorkerPool::new(1),
            SquareStrategy::SequentialOrdered,
        );
        assert_eq!(a.alive_sets(), b.alive_sets());
    }

    #[test]
    fn two_disjoint_groups_both_survive() {
        let mut b = GraphBuilder::new();
        for base in [0u32, 100] {
            for u in 0..10 {
                for v in 0..10 {
                    b.add_click(UserId(base + u), ItemId(base + v), 13);
                }
            }
        }
        let g = b.build();
        let mut view = GraphView::full(&g);
        extract(
            &mut view,
            &params(10, 1.0),
            &WorkerPool::new(4),
            SquareStrategy::Parallel,
        );
        assert_eq!(view.alive_users(), 20);
        assert_eq!(view.alive_items(), 20);
    }

    #[test]
    fn empty_graph_is_noop() {
        let g = GraphBuilder::new().build();
        let mut view = GraphView::full(&g);
        let stats = extract(
            &mut view,
            &params(10, 1.0),
            &WorkerPool::new(2),
            SquareStrategy::Parallel,
        );
        assert_eq!(stats.core_removed_users, 0);
        assert_eq!(view.alive_users(), 0);
    }

    #[test]
    fn bigger_core_than_k_survives_whole() {
        // A 15x15 biclique under (10, 10, 1.0): every vertex has 15 ≥ 10
        // qualified neighbors, all stay.
        let g = biclique_plus_noise(15);
        let mut view = GraphView::full(&g);
        extract(
            &mut view,
            &params(10, 1.0),
            &WorkerPool::new(4),
            SquareStrategy::Parallel,
        );
        assert_eq!(view.alive_users(), 15);
        assert_eq!(view.alive_items(), 15);
    }

    #[test]
    fn delta_and_full_rescan_agree() {
        for (k, alpha) in [(10, 1.0), (10, 0.9), (12, 0.8), (9, 1.0)] {
            let g = biclique_plus_noise(k + 2);
            let p = params(k, alpha);
            for strategy in [SquareStrategy::Parallel, SquareStrategy::SequentialOrdered] {
                let pool = WorkerPool::new(4);
                let mut delta = GraphView::full(&g);
                extract_with(&mut delta, &p, &pool, strategy, FixpointMode::Delta, None);
                let mut full = GraphView::full(&g);
                extract_with(
                    &mut full,
                    &p,
                    &pool,
                    strategy,
                    FixpointMode::FullRescan,
                    None,
                );
                assert_eq!(
                    delta.alive_sets(),
                    full.alive_sets(),
                    "k={k} alpha={alpha} {strategy:?}"
                );
            }
        }
    }

    /// 2×2 biclique (survives) + 6-cycle (dies in SquarePruning round 1)
    /// + enough degree-1 filler pairs to clear `COMPACT_MIN_VERTICES`.
    fn compaction_world() -> ricd_graph::BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..2u32 {
            for v in 0..2u32 {
                b.add_click(UserId(u), ItemId(v), 5);
            }
        }
        // 6-cycle u10-i10-u11-i11-u12-i12-u10: all degrees 2 (passes core
        // at k=2), but no pair shares 2 neighbors, so SquarePruning kills
        // every vertex in round 1 and the fixpoint needs a second round.
        for j in 0..3u32 {
            b.add_click(UserId(10 + j), ItemId(10 + j), 1);
            b.add_click(UserId(10 + j), ItemId(10 + (j + 1) % 3), 1);
        }
        // Filler: dies immediately in CorePruning but inflates the graph
        // past the compaction minimum.
        for j in 0..600u32 {
            b.add_click(UserId(100 + j), ItemId(100 + j), 1);
        }
        b.build()
    }

    #[test]
    fn delta_compacts_mid_fixpoint_and_matches_full_rescan() {
        let g = compaction_world();
        let p = params(2, 1.0);
        let pool = WorkerPool::new(2);
        let mut delta = GraphView::full(&g);
        let stats = extract_with(
            &mut delta,
            &p,
            &pool,
            SquareStrategy::Parallel,
            FixpointMode::Delta,
            None,
        );
        assert!(
            stats.compactions >= 1,
            "alive fraction collapse must compact"
        );
        assert!(stats.rounds >= 2);
        let mut full = GraphView::full(&g);
        extract_with(
            &mut full,
            &p,
            &pool,
            SquareStrategy::Parallel,
            FixpointMode::FullRescan,
            None,
        );
        assert_eq!(delta.alive_sets(), full.alive_sets());
        assert_eq!(delta.alive_users(), 2);
        assert_eq!(delta.alive_items(), 2);
    }

    #[test]
    fn delta_rounds_skip_clean_vertices() {
        let g = compaction_world();
        let p = params(2, 1.0);
        let mut view = GraphView::full(&g);
        let stats = extract_with(
            &mut view,
            &p,
            &WorkerPool::new(2),
            SquareStrategy::Parallel,
            FixpointMode::Delta,
            None,
        );
        assert!(stats.rounds >= 2);
        assert!(
            stats.skipped_users + stats.skipped_items > 0,
            "post-seed rounds must not re-check every alive vertex: {stats:?}"
        );
        // Full rescan never populates the delta counters.
        let mut view = GraphView::full(&g);
        let full_stats = extract_with(
            &mut view,
            &p,
            &WorkerPool::new(2),
            SquareStrategy::Parallel,
            FixpointMode::FullRescan,
            None,
        );
        assert_eq!(full_stats.dirty_users, 0);
        assert_eq!(full_stats.skipped_users, 0);
        assert_eq!(full_stats.compactions, 0);
    }

    #[test]
    fn extract_records_round_durations() {
        let registry = MetricsRegistry::new();
        let g = biclique_plus_noise(10);
        let mut view = GraphView::full(&g);
        let stats = extract_with(
            &mut view,
            &params(10, 1.0),
            &WorkerPool::new(2),
            SquareStrategy::Parallel,
            FixpointMode::Delta,
            Some(&registry),
        );
        let snap = registry.snapshot();
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "extract.round_nanos")
            .expect("round histogram registered");
        assert_eq!(h.count as usize, stats.rounds);
    }
}
