//! The (α, k₁, k₂)-extension biclique extraction algorithm (Algorithm 3).
//!
//! Two pruning rules, each a *necessary* condition for membership in an
//! (α, k₁, k₂)-extension biclique (Definitions 2–4):
//!
//! * **CorePruning** (Lemma 1): every member user needs live degree
//!   ≥ `⌈α·k₂⌉`, every member item ≥ `⌈α·k₁⌉`.
//! * **SquarePruning** (Lemma 2): every member user needs ≥ `k₁`
//!   (α, k₂)-neighbors — same-side vertices sharing ≥ `⌈k₂·α⌉` common
//!   neighbors — and every member item ≥ `k₂` (α, k₁)-neighbors.
//!
//! Two execution strategies are provided:
//!
//! * [`SquareStrategy::Parallel`] (default) — bulk-synchronous rounds on the
//!   worker pool, the Grape formulation: all removal decisions in a round
//!   are taken against the same snapshot, then applied, then the next round
//!   runs; iterated to a fixpoint. This is how the paper's implementation
//!   runs on Grape's 16 workers.
//! * [`SquareStrategy::SequentialOrdered`] — the literal pseudocode: one
//!   vertex at a time, candidates visited in non-decreasing two-hop
//!   neighborhood size (the `reduce2Hop` ordering of [Lyu et al.,
//!   VLDB'20] the paper cites), removals taking effect immediately.
//!
//! Both strategies converge to the same fixpoint (removal is monotone: a
//! vertex that fails a bound keeps failing as more vertices disappear), so
//! the choice only affects intermediate work; the ablation bench measures
//! the difference.
//!
//! Vertex removal changes neighbors' degrees and overlaps, so each rule is
//! iterated and the two rules alternate until nothing changes (the paper's
//! single-pass pseudocode is the first iteration; "theoretically, after
//! performing these two pruning strategies, the remaining vertices should
//! appear in specific (α,k₁,k₂)-extension bicliques" requires the fixpoint).

use crate::params::RicdParams;
use ricd_engine::WorkerPool;
use ricd_graph::twohop::{self, CommonNeighborScratch};
use ricd_graph::{GraphView, ItemId, UserId};
use serde::{Deserialize, Serialize};

/// How SquarePruning visits candidates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SquareStrategy {
    /// Bulk-synchronous rounds on the worker pool (Grape formulation).
    #[default]
    Parallel,
    /// Literal sequential pseudocode with `reduce2Hop` candidate ordering.
    SequentialOrdered,
}

/// Counters describing one extraction run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractionStats {
    /// Alternation rounds until the fixpoint.
    pub rounds: usize,
    /// Users removed by CorePruning.
    pub core_removed_users: usize,
    /// Items removed by CorePruning.
    pub core_removed_items: usize,
    /// Users removed by SquarePruning.
    pub square_removed_users: usize,
    /// Items removed by SquarePruning.
    pub square_removed_items: usize,
}

/// Runs Algorithm 3 in place on `view`, leaving only vertices that can
/// belong to an (α, k₁, k₂)-extension biclique.
pub fn extract(
    view: &mut GraphView<'_>,
    params: &RicdParams,
    pool: &WorkerPool,
    strategy: SquareStrategy,
) -> ExtractionStats {
    let mut stats = ExtractionStats::default();
    for round in 1..=params.max_rounds {
        stats.rounds = round;
        let core = core_pruning(view, params, pool);
        stats.core_removed_users += core.0;
        stats.core_removed_items += core.1;
        let square = match strategy {
            SquareStrategy::Parallel => square_pruning_parallel(view, params, pool),
            SquareStrategy::SequentialOrdered => square_pruning_sequential(view, params),
        };
        stats.square_removed_users += square.0;
        stats.square_removed_items += square.1;
        if square == (0, 0) {
            // Core pruning is already at its own fixpoint after
            // `core_pruning` returns, so no removals in the square phase
            // means the global fixpoint is reached.
            break;
        }
    }
    stats
}

/// Lemma 1 pruning, iterated to its own fixpoint. Returns removal counts.
fn core_pruning(
    view: &mut GraphView<'_>,
    params: &RicdParams,
    pool: &WorkerPool,
) -> (usize, usize) {
    let user_bound = params.user_degree_bound();
    let item_bound = params.item_degree_bound();
    let (mut removed_users, mut removed_items) = (0, 0);
    loop {
        let g = view.graph();
        let doomed_users: Vec<usize> = pool.filter_vertices(g.num_users(), |u| {
            let u = UserId(u as u32);
            view.user_alive(u) && view.user_degree(u) < user_bound
        });
        for &u in &doomed_users {
            view.remove_user(UserId(u as u32));
        }
        let doomed_items: Vec<usize> = pool.filter_vertices(g.num_items(), |v| {
            let v = ItemId(v as u32);
            view.item_alive(v) && view.item_degree(v) < item_bound
        });
        for &v in &doomed_items {
            view.remove_item(ItemId(v as u32));
        }
        removed_users += doomed_users.len();
        removed_items += doomed_items.len();
        if doomed_users.is_empty() && doomed_items.is_empty() {
            return (removed_users, removed_items);
        }
    }
}

/// Counts `u`'s (α, k₂)-neighbors among alive users, including `u` itself
/// when its own degree meets the bound (Definition 4 quantifies over all of
/// `U(C)`, so a perfect k₁×k₂ biclique member counts itself — excluding self
/// with the same `< k₁` test would wrongly prune exact bicliques).
fn user_neighbor_count(
    view: &GraphView<'_>,
    u: UserId,
    bound: u32,
    scratch: &mut CommonNeighborScratch,
) -> usize {
    let mut num = usize::from(view.user_degree(u) as u32 >= bound);
    twohop::for_each_user_common_neighbor(view, u, scratch, |_, c| {
        if c >= bound {
            num += 1;
        }
    });
    num
}

/// Item-side analogue of [`user_neighbor_count`].
fn item_neighbor_count(
    view: &GraphView<'_>,
    v: ItemId,
    bound: u32,
    scratch: &mut CommonNeighborScratch,
) -> usize {
    let mut num = usize::from(view.item_degree(v) as u32 >= bound);
    twohop::for_each_item_common_neighbor(view, v, scratch, |_, c| {
        if c >= bound {
            num += 1;
        }
    });
    num
}

/// Lemma 2 pruning, one bulk-synchronous user pass + item pass.
fn square_pruning_parallel(
    view: &mut GraphView<'_>,
    params: &RicdParams,
    pool: &WorkerPool,
) -> (usize, usize) {
    let g = view.graph();
    let user_bound = params.user_common_bound();
    let item_bound = params.item_common_bound();

    // User pass: decisions against the current snapshot, applied after.
    let doomed_users: Vec<UserId> = {
        let view_ref: &GraphView<'_> = view;
        let per_worker = pool.run_partitioned(g.num_users(), |range| {
            let mut scratch = CommonNeighborScratch::new(g.num_users());
            let mut doomed = Vec::new();
            for u in range {
                let u = UserId(u as u32);
                if view_ref.user_alive(u)
                    && user_neighbor_count(view_ref, u, user_bound, &mut scratch) < params.k1
                {
                    doomed.push(u);
                }
            }
            doomed
        });
        per_worker.into_iter().flatten().collect()
    };
    for &u in &doomed_users {
        view.remove_user(u);
    }

    // Item pass: runs against the post-user-pass state, like the pseudocode.
    let doomed_items: Vec<ItemId> = {
        let view_ref: &GraphView<'_> = view;
        let per_worker = pool.run_partitioned(g.num_items(), |range| {
            let mut scratch = CommonNeighborScratch::new(g.num_items());
            let mut doomed = Vec::new();
            for v in range {
                let v = ItemId(v as u32);
                if view_ref.item_alive(v)
                    && item_neighbor_count(view_ref, v, item_bound, &mut scratch) < params.k2
                {
                    doomed.push(v);
                }
            }
            doomed
        });
        per_worker.into_iter().flatten().collect()
    };
    for &v in &doomed_items {
        view.remove_item(v);
    }

    (doomed_users.len(), doomed_items.len())
}

/// Lemma 2 pruning, literal sequential pseudocode with `reduce2Hop`
/// candidate ordering (non-decreasing two-hop neighborhood size), removals
/// taking effect immediately.
fn square_pruning_sequential(view: &mut GraphView<'_>, params: &RicdParams) -> (usize, usize) {
    let g = view.graph();
    let user_bound = params.user_common_bound();
    let item_bound = params.item_common_bound();
    let mut removed = (0usize, 0usize);

    // reduce2Hop ordering for users.
    let mut scratch = CommonNeighborScratch::new(g.num_users());
    let mut users: Vec<(usize, UserId)> = view
        .users()
        .map(|u| (twohop::user_two_hop_size(view, u, &mut scratch), u))
        .collect();
    users.sort_unstable();
    for (_, u) in users {
        if view.user_alive(u) && user_neighbor_count(view, u, user_bound, &mut scratch) < params.k1
        {
            view.remove_user(u);
            removed.0 += 1;
        }
    }

    let mut scratch = CommonNeighborScratch::new(g.num_items());
    let mut items: Vec<(usize, ItemId)> = view
        .items()
        .map(|v| (twohop::item_two_hop_size(view, v, &mut scratch), v))
        .collect();
    items.sort_unstable();
    for (_, v) in items {
        if view.item_alive(v) && item_neighbor_count(view, v, item_bound, &mut scratch) < params.k2
        {
            view.remove_item(v);
            removed.1 += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::GraphBuilder;

    /// A planted k×k biclique plus sparse organic noise.
    fn biclique_plus_noise(k: usize) -> ricd_graph::BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..k as u32 {
            for v in 0..k as u32 {
                b.add_click(UserId(u), ItemId(v), 13);
            }
        }
        // Sparse noise: users 100.. each click 2 distinct items 200.. once.
        for u in 0..50u32 {
            b.add_click(UserId(100 + u), ItemId(200 + u), 1);
            b.add_click(UserId(100 + u), ItemId(200 + (u + 1) % 50), 1);
        }
        b.build()
    }

    fn params(k: usize, alpha: f64) -> RicdParams {
        RicdParams {
            k1: k,
            k2: k,
            alpha,
            ..RicdParams::default()
        }
    }

    #[test]
    fn exact_biclique_survives_noise_removed() {
        let g = biclique_plus_noise(10);
        for strategy in [SquareStrategy::Parallel, SquareStrategy::SequentialOrdered] {
            let mut view = GraphView::full(&g);
            let stats = extract(&mut view, &params(10, 1.0), &WorkerPool::new(4), strategy);
            let (users, items) = view.alive_sets();
            assert_eq!(users.len(), 10, "{strategy:?}");
            assert_eq!(items.len(), 10, "{strategy:?}");
            assert!(users.iter().all(|u| u.0 < 10));
            assert!(items.iter().all(|v| v.0 < 10));
            assert!(stats.rounds >= 1);
            assert!(stats.core_removed_users >= 50, "noise users core-pruned");
        }
    }

    #[test]
    fn undersized_biclique_fully_pruned() {
        // A 9x9 biclique cannot satisfy (k1=10, k2=10, alpha=1).
        let g = biclique_plus_noise(9);
        let mut view = GraphView::full(&g);
        extract(
            &mut view,
            &params(10, 1.0),
            &WorkerPool::new(4),
            SquareStrategy::Parallel,
        );
        assert_eq!(view.alive_users(), 0);
        assert_eq!(view.alive_items(), 0);
    }

    #[test]
    fn alpha_extension_survives_lower_alpha() {
        // 10x10 biclique plus an extension user clicking 8 of the 10 items:
        // survives alpha=0.8 (needs ceil(0.8*10)=8 common), dies at 1.0.
        let mut b = GraphBuilder::new();
        for u in 0..10u32 {
            for v in 0..10u32 {
                b.add_click(UserId(u), ItemId(v), 13);
            }
        }
        for v in 0..8u32 {
            b.add_click(UserId(10), ItemId(v), 13);
        }
        let g = b.build();

        let mut view = GraphView::full(&g);
        extract(
            &mut view,
            &params(10, 0.8),
            &WorkerPool::new(2),
            SquareStrategy::Parallel,
        );
        assert!(view.user_alive(UserId(10)), "extension user kept at α=0.8");

        let mut view = GraphView::full(&g);
        extract(
            &mut view,
            &params(10, 1.0),
            &WorkerPool::new(2),
            SquareStrategy::Parallel,
        );
        assert!(
            !view.user_alive(UserId(10)),
            "extension user pruned at α=1.0"
        );
        assert_eq!(view.alive_users(), 10, "core biclique intact");
    }

    #[test]
    fn strategies_agree_on_fixpoint() {
        let g = biclique_plus_noise(12);
        let p = params(10, 0.9);
        let mut a = GraphView::full(&g);
        extract(&mut a, &p, &WorkerPool::new(4), SquareStrategy::Parallel);
        let mut b = GraphView::full(&g);
        extract(
            &mut b,
            &p,
            &WorkerPool::new(1),
            SquareStrategy::SequentialOrdered,
        );
        assert_eq!(a.alive_sets(), b.alive_sets());
    }

    #[test]
    fn two_disjoint_groups_both_survive() {
        let mut b = GraphBuilder::new();
        for base in [0u32, 100] {
            for u in 0..10 {
                for v in 0..10 {
                    b.add_click(UserId(base + u), ItemId(base + v), 13);
                }
            }
        }
        let g = b.build();
        let mut view = GraphView::full(&g);
        extract(
            &mut view,
            &params(10, 1.0),
            &WorkerPool::new(4),
            SquareStrategy::Parallel,
        );
        assert_eq!(view.alive_users(), 20);
        assert_eq!(view.alive_items(), 20);
    }

    #[test]
    fn empty_graph_is_noop() {
        let g = GraphBuilder::new().build();
        let mut view = GraphView::full(&g);
        let stats = extract(
            &mut view,
            &params(10, 1.0),
            &WorkerPool::new(2),
            SquareStrategy::Parallel,
        );
        assert_eq!(stats.core_removed_users, 0);
        assert_eq!(view.alive_users(), 0);
    }

    #[test]
    fn bigger_core_than_k_survives_whole() {
        // A 15x15 biclique under (10, 10, 1.0): every vertex has 15 ≥ 10
        // qualified neighbors, all stay.
        let g = biclique_plus_noise(15);
        let mut view = GraphView::full(&g);
        extract(
            &mut view,
            &params(10, 1.0),
            &WorkerPool::new(4),
            SquareStrategy::Parallel,
        );
        assert_eq!(view.alive_users(), 15);
        assert_eq!(view.alive_items(), 15);
    }
}
