//! The item-to-item relevance-score model (Fig 3, Eq 1–3) and the
//! optimal-attacker analysis of Section IV-A.
//!
//! The I2I score is what the attack manipulates: for a hot item `h`, the
//! score of an ordinary item `i` is its share of the conditional co-click
//! mass, `Sᵢ = Cᵢ / Σⱼ Cⱼ` (Eq 1), where `Cᵢ` counts clicks on `i` by users
//! who clicked `h`. The analysis around Eq 2–3 shows the attacker's optimal
//! budget split — click the hot item once, pour everything else into the
//! target — which is exactly the click signature the detector's screening
//! rules look for.

use ricd_graph::{BipartiteGraph, ItemId};

/// Computes the co-click counts `Cᵢ` for a hot item: for every other item
/// `i`, the number of clicks on `i` contributed by users who clicked `hot`.
///
/// Returns `(item, C_i)` pairs for items with `C_i > 0`, unsorted.
pub fn co_click_counts(g: &BipartiteGraph, hot: ItemId) -> Vec<(ItemId, u64)> {
    let mut counts = vec![0u64; g.num_items()];
    for (u, _) in g.item_neighbors(hot) {
        for (i, c) in g.user_neighbors(u) {
            if i != hot {
                counts[i.index()] += c as u64;
            }
        }
    }
    counts
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .map(|(i, c)| (ItemId(i as u32), c))
        .collect()
}

/// Eq 1: the I2I score of `item` against `hot` — its share of the co-click
/// mass. 0 if there is no co-click at all.
pub fn i2i_score(g: &BipartiteGraph, hot: ItemId, item: ItemId) -> f64 {
    let counts = co_click_counts(g, hot);
    let total: u64 = counts.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .find(|&&(i, _)| i == item)
        .map(|&(_, c)| c as f64 / total as f64)
        .unwrap_or(0.0)
}

/// The full ranked I2I list for a hot item (what the recommender would
/// show), highest score first.
pub fn i2i_ranking(g: &BipartiteGraph, hot: ItemId) -> Vec<(ItemId, f64)> {
    let counts = co_click_counts(g, hot);
    let total: u64 = counts.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return Vec::new();
    }
    let mut ranked: Vec<(ItemId, f64)> = counts
        .into_iter()
        .map(|(i, c)| (i, c as f64 / total as f64))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    ranked
}

/// Eq 2: the target's I2I score after an attacker spends `extra_target`
/// clicks on the target and `extra_other` clicks elsewhere, on top of a
/// baseline of `c_target` target co-clicks and `c_rest` co-clicks on all
/// other items.
pub fn attacked_score(c_target: u64, c_rest: u64, extra_target: u64, extra_other: u64) -> f64 {
    let num = (c_target + extra_target) as f64;
    let den = (c_rest + c_target + extra_target + extra_other) as f64;
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// The attacker's optimal split of a click budget `c_b` (Section IV-A):
/// returns `(hot_clicks, target_clicks)`.
///
/// Two clicks are consumed establishing the hot–target link (one on each);
/// Eq 3 shows the score is maximized when **all** remaining budget goes to
/// the target (`C′ = C = C_b − 2`). Budgets below 2 cannot even establish
/// the link.
pub fn optimal_strategy(c_b: u64) -> Option<(u64, u64)> {
    if c_b < 2 {
        return None;
    }
    Some((1, 1 + (c_b - 2)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::{GraphBuilder, UserId};

    /// Fig 3's toy setup: users co-click the hot item and ordinary items.
    fn toy() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        // u0 clicked hot(i0) and i1 x3; u1 clicked hot and i2 x1;
        // u2 clicked only i1 (no co-click contribution).
        b.add_click(UserId(0), ItemId(0), 1);
        b.add_click(UserId(0), ItemId(1), 3);
        b.add_click(UserId(1), ItemId(0), 2);
        b.add_click(UserId(1), ItemId(2), 1);
        b.add_click(UserId(2), ItemId(1), 5);
        b.build()
    }

    #[test]
    fn co_clicks_count_only_hot_clickers() {
        let g = toy();
        let mut counts = co_click_counts(&g, ItemId(0));
        counts.sort();
        assert_eq!(counts, vec![(ItemId(1), 3), (ItemId(2), 1)]);
    }

    #[test]
    fn scores_are_shares() {
        let g = toy();
        assert!((i2i_score(&g, ItemId(0), ItemId(1)) - 0.75).abs() < 1e-12);
        assert!((i2i_score(&g, ItemId(0), ItemId(2)) - 0.25).abs() < 1e-12);
        assert_eq!(i2i_score(&g, ItemId(0), ItemId(0)), 0.0, "self excluded");
    }

    #[test]
    fn ranking_is_descending_and_sums_to_one() {
        let g = toy();
        let r = i2i_ranking(&g, ItemId(0));
        assert_eq!(r[0].0, ItemId(1));
        let sum: f64 = r.iter().map(|&(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_hot_item_has_empty_ranking() {
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(0), 1);
        let g = b.build();
        assert!(i2i_ranking(&g, ItemId(0)).is_empty());
        assert_eq!(i2i_score(&g, ItemId(0), ItemId(1)), 0.0);
    }

    #[test]
    fn eq3_optimum_puts_all_budget_on_target() {
        // For any split (extra_target ≤ extra_total), the score is maximized
        // at extra_target == extra_total — the paper's C' = C.
        let (c_target, c_rest) = (1, 100);
        let budget = 10u64;
        let best = attacked_score(c_target, c_rest, budget, 0);
        for t in 0..=budget {
            let s = attacked_score(c_target, c_rest, t, budget - t);
            assert!(s <= best + 1e-12, "split {t}/{budget} beat the optimum");
        }
    }

    #[test]
    fn eq3_score_monotone_in_budget() {
        // f(x) = (m+x)/(n+x) strictly increasing for n ≥ m > 0.
        let mut prev = attacked_score(1, 100, 0, 0);
        for x in 1..50 {
            let s = attacked_score(1, 100, x, 0);
            assert!(s > prev);
            prev = s;
        }
    }

    #[test]
    fn optimal_strategy_spends_minimum_on_hot() {
        assert_eq!(optimal_strategy(2), Some((1, 1)));
        assert_eq!(optimal_strategy(14), Some((1, 13)));
        assert_eq!(optimal_strategy(1), None);
        assert_eq!(optimal_strategy(0), None);
    }

    #[test]
    fn attack_raises_target_rank() {
        // Before the attack the target has no co-clicks; after a worker
        // clicks (hot x1, target x12) it tops the ranking contribution-wise.
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(0), 5); // organic hot clicks
        b.add_click(UserId(0), ItemId(1), 2); // organic co-click
        let before = b.clone().build();
        assert_eq!(i2i_score(&before, ItemId(0), ItemId(9)), 0.0);
        // worker u9 attacks target i9:
        b.add_click(UserId(9), ItemId(0), 1);
        b.add_click(UserId(9), ItemId(9), 12);
        let after = b.build();
        let s = i2i_score(&after, ItemId(0), ItemId(9));
        assert!(s > i2i_score(&after, ItemId(0), ItemId(1)));
        assert!((s - 12.0 / 14.0).abs() < 1e-12);
    }
}
