//! The suspicious group identification module (Section V-B, module 3).
//!
//! Converts the screened groups into an analyst-facing ranked user–item
//! table and, when the output misses the analyst's expectation, relaxes
//! parameters and reruns (the Fig 7 feedback loop).
//!
//! Risk scores follow the paper:
//! * a **user's** risk is the number of suspicious items it clicked;
//! * an **item's** risk is the average risk of the users who clicked it.

use crate::params::RicdParams;
use crate::result::{DetectionResult, SuspiciousGroup};
use ricd_graph::{BipartiteGraph, ItemId, UserId};
use serde::{Deserialize, Serialize};

/// A risk-ranked list: `(node, risk score)`, highest risk first.
pub type RankedList<T> = Vec<(T, f64)>;

/// Computes ranked `(user, risk)` / `(item, risk)` lists for the union of
/// the groups' members, highest risk first (ties by id).
pub fn rank_output(
    g: &BipartiteGraph,
    groups: &[SuspiciousGroup],
) -> (RankedList<UserId>, RankedList<ItemId>) {
    let mut sus_item = vec![false; g.num_items()];
    for grp in groups {
        for v in &grp.items {
            sus_item[v.index()] = true;
        }
    }
    // User risk = number of suspicious items clicked (global adjacency, so
    // a worker serving several sellers accrues risk across groups).
    let mut user_risk = vec![0.0f64; g.num_users()];
    let mut users: Vec<UserId> = groups
        .iter()
        .flat_map(|g| g.users.iter().copied())
        .collect();
    users.sort_unstable();
    users.dedup();
    for &u in &users {
        user_risk[u.index()] = g
            .user_adjacency(u)
            .iter()
            .filter(|v| sus_item[v.index()])
            .count() as f64;
    }

    // Item risk = average risk of its clickers (non-suspicious clickers
    // carry risk 0, diluting items that normal users also click — exactly
    // the "attracted normal users" effect the paper wants reflected).
    let mut items: Vec<ItemId> = groups
        .iter()
        .flat_map(|g| g.items.iter().copied())
        .collect();
    items.sort_unstable();
    items.dedup();
    let mut ranked_items: Vec<(ItemId, f64)> = items
        .into_iter()
        .map(|v| {
            let deg = g.item_degree(v);
            let sum: f64 = g.item_neighbors(v).map(|(u, _)| user_risk[u.index()]).sum();
            (v, if deg == 0 { 0.0 } else { sum / deg as f64 })
        })
        .collect();
    ranked_items.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

    let mut ranked_users: Vec<(UserId, f64)> = users
        .into_iter()
        .map(|u| (u, user_risk[u.index()]))
        .collect();
    ranked_users.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

    (ranked_users, ranked_items)
}

/// Configuration of the Fig 7 feedback loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedbackConfig {
    /// The analyst's expectation `T`: minimum number of output abnormal
    /// nodes before the result is considered complete.
    pub expectation: usize,
    /// Maximum relaxation iterations.
    pub max_iterations: usize,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        Self {
            expectation: 1,
            max_iterations: 8,
        }
    }
}

/// The feedback-driven parameter adjustment loop: run, check the output
/// size against the expectation, relax ([`RicdParams::relaxed`]) and retry.
pub struct FeedbackLoop {
    /// Loop configuration.
    pub config: FeedbackConfig,
}

impl FeedbackLoop {
    /// Creates a loop with the given config.
    pub fn new(config: FeedbackConfig) -> Self {
        Self { config }
    }

    /// Runs `detect` (a full pipeline invocation) under progressively
    /// relaxed parameters until the output meets the expectation or nothing
    /// is left to relax. Returns the final result and the parameters that
    /// produced it.
    pub fn run(
        &self,
        mut params: RicdParams,
        mut detect: impl FnMut(&RicdParams) -> DetectionResult,
    ) -> (DetectionResult, RicdParams) {
        let mut result = detect(&params);
        for _ in 1..self.config.max_iterations {
            if result.num_output() >= self.config.expectation {
                break;
            }
            let Some(relaxed) = params.relaxed() else {
                break;
            };
            params = relaxed;
            result = detect(&params);
        }
        (result, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::GraphBuilder;

    fn graph() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        // u0 clicks suspicious items i0, i1; u1 clicks i0; normal u2 clicks i0.
        b.add_click(UserId(0), ItemId(0), 13);
        b.add_click(UserId(0), ItemId(1), 13);
        b.add_click(UserId(1), ItemId(0), 13);
        b.add_click(UserId(2), ItemId(0), 1);
        b.build()
    }

    fn groups() -> Vec<SuspiciousGroup> {
        vec![SuspiciousGroup {
            users: vec![UserId(0), UserId(1)],
            items: vec![ItemId(0), ItemId(1)],
            ridden_hot_items: vec![],
        }]
    }

    #[test]
    fn user_risk_counts_suspicious_items() {
        let (users, _) = rank_output(&graph(), &groups());
        assert_eq!(users[0], (UserId(0), 2.0));
        assert_eq!(users[1], (UserId(1), 1.0));
    }

    #[test]
    fn item_risk_is_average_of_clickers() {
        let (_, items) = rank_output(&graph(), &groups());
        // i0 clicked by u0(2), u1(1), u2(0) → avg 1.0; i1 by u0(2) → 2.0.
        let m: std::collections::HashMap<ItemId, f64> = items.into_iter().collect();
        assert!((m[&ItemId(0)] - 1.0).abs() < 1e-12);
        assert!((m[&ItemId(1)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_descends() {
        let (users, items) = rank_output(&graph(), &groups());
        for w in users.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        for w in items.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn empty_groups_rank_nothing() {
        let (users, items) = rank_output(&graph(), &[]);
        assert!(users.is_empty());
        assert!(items.is_empty());
    }

    #[test]
    fn feedback_stops_when_expectation_met() {
        let mut calls = 0;
        let lp = FeedbackLoop::new(FeedbackConfig {
            expectation: 1,
            max_iterations: 10,
        });
        let (_, params) = lp.run(RicdParams::default(), |p| {
            calls += 1;
            let _ = p;
            DetectionResult {
                groups: groups(),
                ..DetectionResult::default()
            }
        });
        assert_eq!(calls, 1, "first run already satisfies T");
        assert_eq!(params, RicdParams::default());
    }

    #[test]
    fn feedback_relaxes_until_output_appears() {
        // Simulate a detector that only fires once t_click drops below 10.
        let lp = FeedbackLoop::new(FeedbackConfig {
            expectation: 1,
            max_iterations: 10,
        });
        let (result, params) = lp.run(RicdParams::default(), |p| {
            let mut r = DetectionResult::default();
            if p.t_click < 10 {
                r.groups = groups();
            }
            r
        });
        assert!(result.num_output() >= 1);
        assert!(params.t_click < 10);
    }

    #[test]
    fn feedback_gives_up_at_relaxation_floor() {
        let mut calls = 0;
        let lp = FeedbackLoop::new(FeedbackConfig {
            expectation: 1_000_000,
            max_iterations: 100,
        });
        let (result, _) = lp.run(RicdParams::default(), |_| {
            calls += 1;
            DetectionResult::default()
        });
        assert_eq!(result.num_output(), 0);
        assert!(calls > 1, "it did retry");
        assert!(
            calls < 100,
            "stopped at the relaxation floor, not max_iterations"
        );
    }
}
