//! Incremental detection over a growing click stream — the paper's stated
//! future work ("how to add an incremental data processing module to this
//! framework so that it can be applied online to perform the detection in
//! dynamic graphs … the earlier these attacks are detected in real time,
//! the more losses can be reduced").
//!
//! The design exploits a locality property of Algorithm 3: a *new* click
//! record can only create or extend an (α, k₁, k₂)-extension biclique in
//! the two-hop ball around its endpoints. So instead of re-running
//! detection on the whole cumulative graph after every batch, the
//! [`StreamingDetector`]
//!
//! 1. accumulates batches into the cumulative click multiset;
//! 2. collects the batch's **suspicious frontier** — items that received a
//!    heavy (≥ `T_click`) edge, or whose cumulative heavy-edge support grew
//!    this batch;
//! 3. runs *seeded* detection (Algorithm 2's seed path) restricted to the
//!    frontier's two-hop ball;
//! 4. merges newly confirmed groups into its running result, deduplicating
//!    against groups already reported.
//!
//! A [`StreamingDetector::full_resync`] runs the unrestricted pipeline and
//! replaces the running state — used periodically, or when the frontier
//! heuristic might have gone stale (e.g. after parameter changes).
//!
//! Soundness note: seeded detection around the frontier finds exactly the
//! groups whose structure involves at least one *new* heavy edge; groups
//! formed purely by old edges were already found by earlier batches (each
//! heavy edge was new once). This is checked against the full pipeline in
//! the tests and the `streaming_detection` example.

use crate::detect::Seeds;
use crate::pipeline::RicdPipeline;
use crate::result::{DetectionResult, SuspiciousGroup};
use ricd_graph::{BipartiteGraph, GraphBuilder, ItemId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Counters for one batch ingestion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Records in the batch (valid ones actually ingested).
    pub records: usize,
    /// Malformed records dropped by batch validation (zero-click records —
    /// a click table row must witness at least one click).
    pub rejected: usize,
    /// Frontier items seeding this batch's detection.
    pub frontier_items: usize,
    /// Frontier items deferred because the budget's `max_frontier` cap was
    /// hit. Deferred items re-arm on their next heavy edge or on the next
    /// [`StreamingDetector::full_resync`].
    pub frontier_deferred: usize,
    /// Groups newly reported from this batch.
    pub new_groups: usize,
    /// True if the batch was recognized as an at-least-once redelivery
    /// (sequence number already ingested) and skipped entirely.
    pub replayed: bool,
}

/// A consistent snapshot of a [`StreamingDetector`]'s state, serializable
/// for crash recovery. Restoring a checkpoint and continuing the stream
/// yields byte-identical results to a detector that never crashed (see the
/// chaos suite).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The cumulative click multiset.
    pub records: Vec<(UserId, ItemId, u32)>,
    /// Pairs whose cumulative clicks crossed `T_click`.
    pub heavy_pairs: Vec<(UserId, ItemId)>,
    /// Groups reported so far.
    pub groups: Vec<SuspiciousGroup>,
    /// The next expected batch sequence number.
    pub next_seq: u64,
}

/// An online RICD detector over an append-only click stream.
pub struct StreamingDetector {
    pipeline: RicdPipeline,
    /// All records seen so far (the cumulative multiset).
    records: Vec<(UserId, ItemId, u32)>,
    /// Cumulative per-pair totals are implicit in the rebuilt graph; the
    /// frontier heuristic needs cumulative *heavy-edge* knowledge, tracked
    /// as the set of (user, item) pairs whose cumulative clicks crossed
    /// `T_click`.
    heavy_pairs: BTreeSet<(UserId, ItemId)>,
    /// Groups reported so far.
    groups: Vec<SuspiciousGroup>,
    /// Current cumulative graph (rebuilt per batch; CSR rebuilds are cheap
    /// relative to detection and keep query paths allocation-free).
    graph: BipartiteGraph,
    /// Next expected batch sequence number; batches with a lower number are
    /// at-least-once redeliveries and are dropped.
    next_seq: u64,
}

impl StreamingDetector {
    /// A detector with the given pipeline configuration.
    pub fn new(pipeline: RicdPipeline) -> Self {
        Self {
            pipeline,
            records: Vec::new(),
            heavy_pairs: BTreeSet::new(),
            groups: Vec::new(),
            graph: GraphBuilder::new().build(),
            next_seq: 0,
        }
    }

    /// Restores a detector from a [`Checkpoint`], rebuilding the cumulative
    /// graph. The pipeline configuration is not part of the checkpoint and
    /// is supplied fresh.
    pub fn restore(pipeline: RicdPipeline, ckpt: Checkpoint) -> Self {
        let mut d = Self {
            pipeline,
            records: ckpt.records,
            heavy_pairs: ckpt.heavy_pairs.into_iter().collect(),
            groups: ckpt.groups,
            graph: GraphBuilder::new().build(),
            next_seq: ckpt.next_seq,
        };
        d.rebuild_graph();
        d
    }

    /// Snapshots the detector's state for crash recovery.
    pub fn checkpoint(&self) -> Checkpoint {
        let metrics = &self.pipeline.metrics;
        metrics.counter("stream.checkpoints").inc();
        metrics
            .gauge("stream.checkpoint_records")
            .set(self.records.len() as i64);
        metrics
            .gauge("stream.checkpoint_groups")
            .set(self.groups.len() as i64);
        Checkpoint {
            records: self.records.clone(),
            heavy_pairs: self.heavy_pairs.iter().copied().collect(),
            groups: self.groups.clone(),
            next_seq: self.next_seq,
        }
    }

    /// The next batch sequence number this detector expects.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The cumulative graph after the last ingested batch.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// Groups reported so far.
    pub fn groups(&self) -> &[SuspiciousGroup] {
        &self.groups
    }

    /// The running result (groups + rankings over the cumulative graph).
    pub fn result(&self) -> DetectionResult {
        let (ranked_users, ranked_items) = crate::identify::rank_output(&self.graph, &self.groups);
        DetectionResult {
            groups: self.groups.clone(),
            ranked_users,
            ranked_items,
            timings: Default::default(),
            status: Default::default(),
        }
    }

    fn rebuild_graph(&mut self) {
        let mut b = GraphBuilder::with_capacity(self.records.len());
        b.extend(self.records.iter().copied());
        self.graph = b.build();
    }

    /// Ingests one batch of click records, runs frontier-seeded detection,
    /// and merges any newly found groups. Returns batch counters.
    ///
    /// Equivalent to [`ingest_batch`](Self::ingest_batch) with the next
    /// expected sequence number — use `ingest_batch` when the stream source
    /// numbers its batches and may redeliver.
    pub fn ingest(&mut self, batch: &[(UserId, ItemId, u32)]) -> BatchStats {
        self.ingest_batch(self.next_seq, batch)
    }

    /// Ingests batch number `seq`. A `seq` below the next expected number
    /// marks an at-least-once redelivery: the batch is dropped (exactly-once
    /// effect) and the stats say so. A `seq` at or above the expected number
    /// is ingested and advances the counter past it.
    pub fn ingest_batch(&mut self, seq: u64, batch: &[(UserId, ItemId, u32)]) -> BatchStats {
        let metrics = self.pipeline.metrics.clone();
        // Span doubles as the per-batch processing-lag measurement.
        let _span = metrics.span("stream/ingest");
        let mut stats = BatchStats::default();
        if seq < self.next_seq {
            metrics.counter("stream.batches_replayed").inc();
            stats.replayed = true;
            return stats;
        }
        if seq > self.next_seq {
            // The source skipped sequence numbers — those batches are lost
            // to this detector until a full resync of the upstream store.
            metrics.inc_by("stream.seqs_skipped", seq - self.next_seq);
        }
        metrics.counter("stream.batches_ingested").inc();
        self.next_seq = seq + 1;

        // Batch validation: a click-table record must witness at least one
        // click; zero-click records are producer bugs and are quarantined
        // rather than poisoning the cumulative multiset.
        let mut rejected = 0usize;
        let valid: Vec<(UserId, ItemId, u32)> = batch
            .iter()
            .copied()
            .filter(|&(_, _, c)| {
                let ok = c > 0;
                rejected += usize::from(!ok);
                ok
            })
            .collect();
        stats.records = valid.len();
        stats.rejected = rejected;
        metrics.inc_by("stream.records_ingested", valid.len() as u64);
        metrics.inc_by("stream.records_rejected", rejected as u64);
        if valid.is_empty() {
            return stats;
        }
        self.records.extend_from_slice(&valid);
        self.rebuild_graph();

        // Frontier: items whose cumulative clicks from some user crossed
        // T_click in this batch.
        let params = self.pipeline.params;
        let mut crossings: Vec<(UserId, ItemId)> = Vec::new();
        let mut frontier: BTreeSet<ItemId> = BTreeSet::new();
        for &(u, v, _) in &valid {
            if self.heavy_pairs.contains(&(u, v)) || crossings.contains(&(u, v)) {
                continue;
            }
            if self.graph.clicks(u, v).is_some_and(|c| c >= params.t_click) {
                crossings.push((u, v));
                frontier.insert(v);
            }
        }

        // Budget: cap the frontier, deferring the excess. Deferred items'
        // pairs are NOT marked heavy, so any later click on them re-arms
        // the frontier (and a full_resync always catches up).
        if let Some(cap) = self.pipeline.budget.max_frontier {
            if frontier.len() > cap {
                stats.frontier_deferred = frontier.len() - cap;
                metrics.inc_by("stream.frontier_deferred", stats.frontier_deferred as u64);
                metrics.event(
                    "budget.frontier_capped",
                    &format!(
                        "frontier cap {cap} exceeded: {} items deferred",
                        stats.frontier_deferred
                    ),
                );
                let kept: BTreeSet<ItemId> = frontier.into_iter().take(cap).collect();
                frontier = kept;
            }
        }
        for (u, v) in crossings {
            if frontier.contains(&v) {
                self.heavy_pairs.insert((u, v));
            }
        }
        stats.frontier_items = frontier.len();
        metrics
            .histogram("stream.frontier_size", &[1, 10, 100, 1_000, 10_000])
            .observe(frontier.len() as u64);
        if frontier.is_empty() {
            return stats;
        }

        // Seeded detection around the frontier.
        let seeds = Seeds {
            users: Vec::new(),
            items: frontier.into_iter().collect(),
        };
        let seeded = RicdPipeline {
            params,
            pool: self.pipeline.pool.clone(),
            strategy: self.pipeline.strategy,
            mode: self.pipeline.mode,
            seeds,
            budget: self.pipeline.budget,
            metrics: self.pipeline.metrics.clone(),
        };
        let result = seeded.run(&self.graph);
        stats.new_groups = self.merge_groups(result.groups);
        metrics.inc_by("stream.groups_new", stats.new_groups as u64);
        stats
    }

    /// Full, unseeded detection on the cumulative graph; replaces the
    /// running group state. Returns the fresh result.
    pub fn full_resync(&mut self) -> DetectionResult {
        let result = self.pipeline.run(&self.graph);
        self.groups = result.groups.clone();
        result
    }

    /// Merges new groups, replacing older reports they subsume or extend
    /// (same attack task = overlapping worker sets). Returns how many of
    /// the inputs were genuinely new (not identical to an existing group).
    fn merge_groups(&mut self, incoming: Vec<SuspiciousGroup>) -> usize {
        let mut new_count = 0;
        for g in incoming {
            // A group matches an existing one if their user sets overlap.
            let overlap = self
                .groups
                .iter()
                .position(|old| old.users.iter().any(|u| g.users.binary_search(u).is_ok()));
            match overlap {
                Some(idx) => {
                    if self.groups[idx] != g {
                        // The attack grew: replace with the newer, larger view.
                        let merged = union_groups(&self.groups[idx], &g);
                        if merged != self.groups[idx] {
                            new_count += usize::from(self.groups[idx].users != merged.users);
                            self.groups[idx] = merged;
                        }
                    }
                }
                None => {
                    self.groups.push(g);
                    new_count += 1;
                }
            }
        }
        new_count
    }
}

fn union_groups(a: &SuspiciousGroup, b: &SuspiciousGroup) -> SuspiciousGroup {
    let mut users = a.users.clone();
    users.extend(b.users.iter().copied());
    users.sort_unstable();
    users.dedup();
    let mut items = a.items.clone();
    items.extend(b.items.iter().copied());
    items.sort_unstable();
    items.dedup();
    let mut ridden = a.ridden_hot_items.clone();
    ridden.extend(b.ridden_hot_items.iter().copied());
    ridden.sort_unstable();
    ridden.dedup();
    SuspiciousGroup {
        users,
        items,
        ridden_hot_items: ridden,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RicdParams;

    fn background() -> Vec<(UserId, ItemId, u32)> {
        // A hot item plus light noise.
        let mut recs = Vec::new();
        for u in 1000..2200u32 {
            recs.push((UserId(u), ItemId(0), 1));
        }
        for u in 0..100u32 {
            recs.push((UserId(500 + u), ItemId(100 + u % 30), 2));
        }
        recs
    }

    /// The attack split into daily slices: each worker's target clicks
    /// arrive over three batches of ~5 clicks (crossing T_click=12 only in
    /// the third).
    fn attack_batches() -> Vec<Vec<(UserId, ItemId, u32)>> {
        let mut batches = vec![Vec::new(), Vec::new(), Vec::new()];
        for u in 0..12u32 {
            for v in 1..12u32 {
                batches[0].push((UserId(u), ItemId(v), 5));
                batches[1].push((UserId(u), ItemId(v), 5));
                batches[2].push((UserId(u), ItemId(v), 5));
            }
            batches[0].push((UserId(u), ItemId(0), 1));
        }
        batches
    }

    fn detector() -> StreamingDetector {
        StreamingDetector::new(RicdPipeline::new(RicdParams::default()))
    }

    #[test]
    fn detects_once_edges_cross_t_click() {
        let mut d = detector();
        let s0 = d.ingest(&background());
        assert_eq!(s0.new_groups, 0);
        let batches = attack_batches();
        let s1 = d.ingest(&batches[0]);
        assert_eq!(s1.new_groups, 0, "5 clicks per edge is below T_click");
        let s2 = d.ingest(&batches[1]);
        assert_eq!(s2.new_groups, 0, "10 clicks still below");
        let s3 = d.ingest(&batches[2]);
        assert_eq!(s3.new_groups, 1, "15 clicks crosses T_click");
        assert!(s3.frontier_items >= 11);
        let g = &d.groups()[0];
        assert_eq!(g.users.len(), 12);
        assert_eq!(g.items.len(), 11);
    }

    #[test]
    fn matches_full_resync() {
        let mut d = detector();
        d.ingest(&background());
        for b in attack_batches() {
            d.ingest(&b);
        }
        let incremental: Vec<_> = d.groups().to_vec();
        let full = d.full_resync();
        assert_eq!(incremental, full.groups, "seeded == full on this stream");
    }

    #[test]
    fn quiet_batches_do_no_detection_work() {
        let mut d = detector();
        d.ingest(&background());
        let s = d.ingest(&[(UserId(3), ItemId(200), 2)]);
        assert_eq!(s.frontier_items, 0, "light click seeds nothing");
        assert_eq!(s.new_groups, 0);
    }

    #[test]
    fn growing_attack_updates_the_group_in_place() {
        let mut d = detector();
        d.ingest(&background());
        for b in attack_batches() {
            d.ingest(&b);
        }
        assert_eq!(d.groups().len(), 1);
        // Two more workers join the same task.
        let mut late = Vec::new();
        for u in 50..52u32 {
            for v in 1..12u32 {
                late.push((UserId(u), ItemId(v), 14));
            }
        }
        d.ingest(&late);
        assert_eq!(d.groups().len(), 1, "still one task, not a duplicate");
        assert_eq!(d.groups()[0].users.len(), 14);
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut d = detector();
        let s = d.ingest(&[]);
        assert_eq!(s, BatchStats::default());
        assert_eq!(d.graph().num_edges(), 0);
    }

    #[test]
    fn result_ranks_cumulative_output() {
        let mut d = detector();
        d.ingest(&background());
        for b in attack_batches() {
            d.ingest(&b);
        }
        let r = d.result();
        assert_eq!(r.ranked_users.len(), 12);
        assert!(r.ranked_users.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn zero_click_records_are_quarantined() {
        let mut d = detector();
        let s = d.ingest(&[
            (UserId(1), ItemId(1), 0),
            (UserId(1), ItemId(2), 3),
            (UserId(2), ItemId(1), 0),
        ]);
        assert_eq!(s.rejected, 2);
        assert_eq!(s.records, 1);
        assert_eq!(d.graph().num_edges(), 1, "only the valid record landed");
    }

    #[test]
    fn replayed_batch_is_dropped() {
        let mut d = detector();
        d.ingest_batch(0, &background());
        let batches = attack_batches();
        for (i, b) in batches.iter().enumerate() {
            d.ingest_batch(1 + i as u64, b);
        }
        let groups_before = d.groups().to_vec();
        let records_before = d.graph().num_edges();
        // The stream redelivers batch 2 (at-least-once semantics).
        let s = d.ingest_batch(2, &batches[1]);
        assert!(s.replayed);
        assert_eq!(s.records, 0);
        assert_eq!(d.graph().num_edges(), records_before, "no double counting");
        assert_eq!(d.groups(), groups_before.as_slice());
        assert_eq!(d.next_seq(), 4);
    }

    #[test]
    fn replay_helper_duplicate_is_deduplicated() {
        // End-to-end with the chaos harness's replay helper: a duplicated
        // batch fed through seq-numbered ingestion leaves the result
        // identical to the clean stream.
        use ricd_engine::fault::replay_batch;
        let mut clean = detector();
        let mut faulty = detector();
        let mut stream = vec![background()];
        stream.extend(attack_batches());
        for (i, b) in stream.iter().enumerate() {
            clean.ingest_batch(i as u64, b);
        }
        let replayed = replay_batch(&stream, 2);
        // Redelivery keeps the original batch's sequence number.
        let seqs = [0u64, 1, 2, 2, 3];
        for (s, b) in seqs.iter().zip(&replayed) {
            faulty.ingest_batch(*s, b);
        }
        assert_eq!(clean.groups(), faulty.groups());
        assert_eq!(clean.graph().num_edges(), faulty.graph().num_edges());
    }

    #[test]
    fn frontier_cap_defers_but_resync_catches_up() {
        use crate::budget::RunBudget;
        let mut capped = StreamingDetector::new(
            RicdPipeline::new(RicdParams::default())
                .with_budget(RunBudget::none().with_max_frontier(3)),
        );
        capped.ingest(&background());
        let batches = attack_batches();
        capped.ingest(&batches[0]);
        capped.ingest(&batches[1]);
        let s = capped.ingest(&batches[2]);
        assert_eq!(s.frontier_items, 3, "frontier clamped to the cap");
        assert!(s.frontier_deferred >= 8, "11 crossings, 3 kept");
        // The capped frontier may or may not complete the group this batch;
        // a resync must always converge to the full answer.
        let full = capped.full_resync();
        assert_eq!(full.groups.len(), 1);
        assert_eq!(full.groups[0].users.len(), 12);
    }

    #[test]
    fn streaming_metrics_track_batches_frontier_and_replays() {
        use crate::budget::RunBudget;
        use ricd_obs::MetricsRegistry;
        let registry = MetricsRegistry::new();
        let mut d = StreamingDetector::new(
            RicdPipeline::new(RicdParams::default())
                .with_metrics(registry.clone())
                .with_budget(RunBudget::none().with_max_frontier(3)),
        );
        d.ingest_batch(0, &background());
        let batches = attack_batches();
        for (i, b) in batches.iter().enumerate() {
            d.ingest_batch(1 + i as u64, b);
        }
        d.ingest_batch(2, &batches[1]); // redelivery
        d.ingest_batch(7, &[(UserId(1), ItemId(1), 1)]); // gap: seqs 4,5,6 lost
        let _ = d.checkpoint();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("stream.batches_ingested"), Some(5));
        assert_eq!(snap.counter("stream.batches_replayed"), Some(1));
        assert_eq!(snap.counter("stream.seqs_skipped"), Some(3));
        assert!(snap.counter("stream.frontier_deferred").unwrap() >= 8);
        assert_eq!(registry.event_count("budget.frontier_capped"), 1);
        assert!(snap.counter("stream.records_ingested").unwrap() > 0);
        assert_eq!(snap.counter("stream.checkpoints"), Some(1));
        assert!(snap.gauge("stream.checkpoint_records").unwrap() > 0);
        // Span count includes the replayed batch (processing happened).
        assert_eq!(snap.span("stream/ingest").map(|s| s.count), Some(6));
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "stream.frontier_size")
            .expect("frontier histogram");
        assert!(
            h.count >= 4,
            "one observation per non-replayed batch that got far enough"
        );
    }

    #[test]
    fn checkpoint_round_trips_through_serde() {
        use serde::{Deserialize, Serialize};
        let mut d = detector();
        d.ingest(&background());
        d.ingest(&attack_batches()[0]);
        let ckpt = d.checkpoint();
        let restored = Checkpoint::from_value(&ckpt.to_value()).unwrap();
        assert_eq!(ckpt, restored);
    }

    #[test]
    fn resumed_detector_matches_never_crashed() {
        let mut stream = vec![background()];
        stream.extend(attack_batches());

        // Reference: one detector sees the whole stream.
        let mut steady = detector();
        for (i, b) in stream.iter().enumerate() {
            steady.ingest_batch(i as u64, b);
        }

        // Crash/recover at every possible cut point.
        for cut in 1..stream.len() {
            let mut first = detector();
            for (i, b) in stream[..cut].iter().enumerate() {
                first.ingest_batch(i as u64, b);
            }
            let ckpt = first.checkpoint();
            drop(first); // the crash
            let mut resumed =
                StreamingDetector::restore(RicdPipeline::new(RicdParams::default()), ckpt);
            for (i, b) in stream.iter().enumerate().skip(cut) {
                resumed.ingest_batch(i as u64, b);
            }
            assert_eq!(
                resumed.groups(),
                steady.groups(),
                "cut at batch {cut} diverged"
            );
            assert_eq!(resumed.graph().num_edges(), steady.graph().num_edges());
            assert_eq!(resumed.next_seq(), steady.next_seq());
        }
    }
}
