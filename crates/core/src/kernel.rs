//! Per-anchor survival-kernel dispatch.
//!
//! PR 7's lesson was that no single two-hop kernel wins everywhere: the
//! early-exit wedge counter is optimal for cold and sparse anchors, the
//! sorted-intersection path for externally-narrowed pair queries, and the
//! cache-blocked SWAR kernel ([`twohop::blocked_user_has_qualified_neighbors`])
//! for anchors whose cheap-first item ordering ends in hub adjacency. This
//! module encodes that lesson as *policy*: one dispatch function per side,
//! driven by a degree-based cost model ([`KernelPolicy`]) plus the presence
//! of a [`HubBitmaps`] registry, used identically by `prune_local`, the
//! reconciliation fixpoint, and the global unsharded `extract` path — so the
//! three prune paths cannot drift apart in semantics, only in speed.
//!
//! Every kernel answers the same exact predicate ("does this anchor have
//! ≥ `need` same-side partners sharing ≥ `bound` neighbors?"), proven
//! equivalent by the three-way differential suites in
//! `crates/graph/tests/proptest_twohop.rs`; dispatch therefore never
//! changes a fixpoint, which is what lets `tests/shard_equivalence.rs`
//! demand byte-identical groups between [`KernelSelection::Auto`] and
//! [`KernelSelection::WedgeOnly`].

use crate::params::KernelPolicy;
use ricd_graph::twohop::{self, HubBitmaps, KernelScratch};
use ricd_graph::{ItemId, NeighborView, UserId};

/// Which kernels a prune path may dispatch to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelSelection {
    /// Per-anchor dispatch over all three kernels (the fast path).
    #[default]
    Auto,
    /// Wedge counting only — the PR 7 behavior, kept selectable so the
    /// equivalence suites and perf baselines can compare against it.
    WedgeOnly,
}

/// How many survival queries each kernel answered, accumulated per worker
/// and merged into the run's [`crate::extract::ExtractionStats`] (exported
/// as the `extract.kernel_*` counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelTally {
    /// Queries answered by the wedge-counting scan (including trivial
    /// degree short-circuits, which are wedge-path bookkeeping).
    pub wedge: u64,
    /// Queries answered by the blocked SWAR kernel.
    pub blocked: u64,
    /// Queries answered by the sorted-intersection kernel.
    pub sorted: u64,
}

impl KernelTally {
    /// Folds another tally (e.g. one worker's) into this one.
    pub fn absorb(&mut self, other: KernelTally) {
        self.wedge += other.wedge;
        self.blocked += other.blocked;
        self.sorted += other.sorted;
    }
}

/// Builds the hub registry for a view under `policy`.
pub(crate) fn build_hubs<V: NeighborView>(view: &V, policy: &KernelPolicy) -> HubBitmaps {
    HubBitmaps::build(view, policy.hub_min_degree, policy.hub_max_count)
}

/// Dispatched user-side survival test: exactly
/// [`twohop::user_has_qualified_neighbors`]'s answer, by whichever kernel
/// the cost model picks for this anchor.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn user_survives<V: NeighborView>(
    view: &V,
    hubs: Option<&HubBitmaps>,
    policy: &KernelPolicy,
    u: UserId,
    bound: u32,
    need: usize,
    scratch: &mut KernelScratch,
    tally: &mut KernelTally,
) -> bool {
    if need == 0 {
        return true;
    }
    let deg = view.user_degree(u) as u32;
    if bound > 0 && deg < bound {
        // No partner can share more neighbors than the anchor has; the
        // wedge kernel would conclude the same after its walk.
        tally.wedge += 1;
        return false;
    }
    if bound > 0 && deg <= policy.sorted_max_anchor_degree {
        tally.sorted += 1;
        return twohop::user_has_qualified_neighbors_sorted(
            view,
            u,
            bound,
            need,
            scratch.sorted_mut(),
        );
    }
    if let Some(h) = hubs {
        // bound < 2 leaves the blocked kernel's closed phase empty — it
        // would be the wedge walk with extra bitmap bookkeeping.
        if bound >= 2 && deg >= policy.blocked_min_anchor_degree && h.item_hub_count() > 0 {
            tally.blocked += 1;
            return twohop::blocked_user_has_qualified_neighbors(view, h, u, bound, need, scratch);
        }
    }
    tally.wedge += 1;
    twohop::user_has_qualified_neighbors(view, u, bound, need, scratch.wedge_mut())
}

/// Item-side analogue of [`user_survives`].
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn item_survives<V: NeighborView>(
    view: &V,
    hubs: Option<&HubBitmaps>,
    policy: &KernelPolicy,
    v: ItemId,
    bound: u32,
    need: usize,
    scratch: &mut KernelScratch,
    tally: &mut KernelTally,
) -> bool {
    if need == 0 {
        return true;
    }
    let deg = view.item_degree(v) as u32;
    if bound > 0 && deg < bound {
        tally.wedge += 1;
        return false;
    }
    if bound > 0 && deg <= policy.sorted_max_anchor_degree {
        tally.sorted += 1;
        return twohop::item_has_qualified_neighbors_sorted(
            view,
            v,
            bound,
            need,
            scratch.sorted_mut(),
        );
    }
    if let Some(h) = hubs {
        if bound >= 2 && deg >= policy.blocked_min_anchor_degree && h.user_hub_count() > 0 {
            tally.blocked += 1;
            return twohop::blocked_item_has_qualified_neighbors(view, h, v, bound, need, scratch);
        }
    }
    tally.wedge += 1;
    twohop::item_has_qualified_neighbors(view, v, bound, need, scratch.wedge_mut())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::{GraphBuilder, GraphView};

    /// A hot item (degree ≥ hub floor) glued onto a dense block, so Auto
    /// dispatch exercises both the wedge and blocked kernels.
    fn hub_world() -> ricd_graph::BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..80u32 {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        for u in 0..6u32 {
            for v in 1..6u32 {
                b.add_click(UserId(u), ItemId(v), 1);
            }
        }
        b.build()
    }

    #[test]
    fn dispatch_agrees_with_wedge_and_counts_queries() {
        let g = hub_world();
        let view = GraphView::full(&g);
        let policy = KernelPolicy {
            hub_min_degree: 8,
            ..KernelPolicy::default()
        };
        let hubs = build_hubs(&view, &policy);
        assert!(hubs.item_hub_count() > 0, "hot item must be a hub");
        let mut ks = KernelScratch::new(g.num_users());
        let mut wedge = ricd_graph::CommonNeighborScratch::new(g.num_users());
        let mut tally = KernelTally::default();
        for u in (0..g.num_users() as u32).map(UserId) {
            for bound in 0..6u32 {
                for need in 0..4usize {
                    assert_eq!(
                        user_survives(
                            &view,
                            Some(&hubs),
                            &policy,
                            u,
                            bound,
                            need,
                            &mut ks,
                            &mut tally
                        ),
                        twohop::user_has_qualified_neighbors(&view, u, bound, need, &mut wedge),
                        "u={u:?} bound={bound} need={need}"
                    );
                }
            }
        }
        assert!(tally.blocked > 0, "hub anchors must dispatch blocked");
        assert!(tally.wedge > 0, "bound<2 queries stay on the wedge kernel");
        assert_eq!(tally.sorted, 0, "sorted disabled by default policy");
        // need == 0 trivia are not kernel invocations; everything else is.
        let queries = (g.num_users() as u64) * 6 * 3;
        assert_eq!(tally.wedge + tally.blocked + tally.sorted, queries);
    }

    #[test]
    fn sorted_dispatch_respects_policy_threshold() {
        let g = hub_world();
        let view = GraphView::full(&g);
        let policy = KernelPolicy {
            sorted_max_anchor_degree: 1,
            ..KernelPolicy::default()
        };
        let mut ks = KernelScratch::new(g.num_users());
        let mut tally = KernelTally::default();
        // Degree-1 hub riders route to sorted under this policy.
        for u in (6..80u32).map(UserId) {
            user_survives(&view, None, &policy, u, 1, 1, &mut ks, &mut tally);
        }
        assert_eq!(tally.sorted, 74);
        assert_eq!(tally.wedge, 0);
    }
}
