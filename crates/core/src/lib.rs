#![warn(missing_docs)]

//! # ricd-core — the RICD detection framework
//!
//! This crate implements the paper's contribution: the **R**ide **I**tem's
//! **C**oattails attack **D**etection framework (Section V), plus the
//! analytical machinery it is built on (Section IV).
//!
//! The pipeline has the paper's three sequential modules:
//!
//! 1. **Suspicious group detection** ([`detect`]) — Algorithm 2: build the
//!    working bipartite graph (optionally pruned around known seeds) and run
//!    the (α, k₁, k₂)-extension biclique extraction of Algorithm 3
//!    ([`extract`]): `CorePruning` then `SquarePruning`, iterated to a
//!    fixpoint; the surviving connected components are the suspicious
//!    groups.
//! 2. **Suspicious group screening** ([`screen`]) — the user behavior check
//!    and item behavior verification derived from the Section IV analysis.
//! 3. **Suspicious group identification** ([`identify`]) — risk scoring and
//!    ranking of the output user–item table, plus the feedback-driven
//!    parameter-adjustment loop of Fig 7.
//!
//! Supporting modules: [`i2i`] (the I2I-score model of Eq 1–3 and the
//! optimal-attacker analysis), [`thresholds`] (`T_hot` via the Pareto rule,
//! `T_click` via Eq 4), [`naive`] (the Algorithm 1 baseline), and
//! [`params`] / [`result`] (shared configuration and output types).
//!
//! ```
//! use ricd_core::prelude::*;
//! use ricd_datagen::prelude::*;
//!
//! let ds = generate(&DatasetConfig::tiny(), &AttackConfig::small()).unwrap();
//! let pipeline = RicdPipeline::new(RicdParams::default());
//! let result = pipeline.run(&ds.graph);
//! assert!(!result.suspicious_users().is_empty());
//! ```

pub mod analysis;
pub mod budget;
pub mod camouflage;
pub mod detect;
pub mod extract;
pub mod i2i;
pub mod identify;
pub mod incremental;
pub mod kernel;
pub mod naive;
pub mod params;
pub mod pipeline;
pub mod result;
pub mod riskview;
pub mod screen;
pub mod shard_run;
pub mod temporal;
pub mod thresholds;

pub use budget::{BudgetClock, RunBudget};
pub use kernel::{KernelSelection, KernelTally};
pub use params::{KernelPolicy, ParamsMode, RicdParams, ScreeningMode};
pub use pipeline::RicdPipeline;
pub use result::{DetectionResult, RunStatus, SuspiciousGroup};
pub use riskview::{RiskVerdict, RiskView};
pub use shard_run::{detect_groups_sharded, ShardAbort, ShardConfig};
pub use temporal::{
    TimedClick, WindowBatchStats, WindowCheckpoint, WindowConfig, WindowedDetector,
};
pub use thresholds::{params_for_mode, FeedbackTuner};

/// Commonly used framework types.
pub mod prelude {
    pub use crate::budget::RunBudget;
    pub use crate::identify::{FeedbackConfig, FeedbackLoop};
    pub use crate::incremental::{BatchStats, Checkpoint, StreamingDetector};
    pub use crate::kernel::KernelSelection;
    pub use crate::naive::{naive_detect, NaiveParams};
    pub use crate::params::{ParamsMode, RicdParams, ScreeningMode};
    pub use crate::pipeline::RicdPipeline;
    pub use crate::result::{DetectionResult, RunStatus, SuspiciousGroup};
    pub use crate::riskview::{RiskVerdict, RiskView};
    pub use crate::shard_run::ShardConfig;
    pub use crate::temporal::{WindowCheckpoint, WindowConfig, WindowedDetector};
    pub use crate::thresholds::{derive_t_click, derive_t_hot, params_for_mode, FeedbackTuner};
}
