//! The naive algorithm (Algorithm 1, Section V-A).
//!
//! "If most of the users who click an ordinary item have clicked a large
//! number of hot items, it is very likely that this ordinary item is a
//! target item and the users are suspicious users."
//!
//! The algorithm: classify items by `T_hot`; give every user an `Alpha` (its
//! total clicks on hot items); score every non-hot item by the sum of its
//! neighbors' alphas; items above `T_risk` are abnormal. Users are then
//! classified symmetrically against the abnormal item set.
//!
//! Complexity `O(|U||V|)` worst case per the paper; in practice one pass
//! over the edges per phase, parallelized across the worker pool.

use crate::result::{DetectionResult, SuspiciousGroup};
use ricd_engine::{PhaseTimings, WorkerPool};
use ricd_graph::{BipartiteGraph, ItemId, UserId};
use serde::{Deserialize, Serialize};

/// Parameters of Algorithm 1.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NaiveParams {
    /// Hot-item threshold on total item clicks.
    pub t_hot: u64,
    /// Risk threshold on an item's summed neighbor alphas.
    pub t_risk_item: f64,
    /// Risk threshold on a user's total clicks on abnormal items.
    pub t_risk_user: f64,
}

impl Default for NaiveParams {
    fn default() -> Self {
        Self {
            t_hot: 1_000,
            t_risk_item: 500.0,
            t_risk_user: 12.0,
        }
    }
}

/// Intermediate scores, exposed for analysis and the eval harness's
/// threshold sweeps.
#[derive(Clone, Debug, Default)]
pub struct NaiveScores {
    /// Per-user `Alpha` — total clicks on hot items (`GETALPHA`).
    pub user_alpha: Vec<u64>,
    /// Per-item risk — sum of clicking users' alphas (0 for hot items,
    /// which are never flagged as targets).
    pub item_risk: Vec<u64>,
    /// Per-user risk — total clicks on abnormal items.
    pub user_risk: Vec<u64>,
}

fn compute(
    g: &BipartiteGraph,
    params: &NaiveParams,
    pool: &WorkerPool,
) -> (NaiveScores, Vec<ItemId>, Vec<UserId>) {
    // Line 2–6: classify items.
    let item_totals: Vec<u64> =
        pool.map_vertices(g.num_items(), |v| g.item_total_clicks(ItemId(v as u32)));
    let is_hot: Vec<bool> = item_totals.iter().map(|&t| t >= params.t_hot).collect();

    // Line 7–8: per-user Alpha.
    let user_alpha: Vec<u64> = pool.map_vertices(g.num_users(), |u| {
        g.user_neighbors(UserId(u as u32))
            .filter(|(v, _)| is_hot[v.index()])
            .map(|(_, c)| c as u64)
            .sum()
    });

    // Line 9–12: item risk = Σ neighbor alphas, for non-hot items.
    let item_risk: Vec<u64> = pool.map_vertices(g.num_items(), |v| {
        if is_hot[v] {
            0
        } else {
            g.item_neighbors(ItemId(v as u32))
                .map(|(u, _)| user_alpha[u.index()])
                .sum()
        }
    });
    let abnormal_items: Vec<ItemId> = item_risk
        .iter()
        .enumerate()
        .filter(|&(v, &r)| !is_hot[v] && r as f64 > params.t_risk_item)
        .map(|(v, _)| ItemId(v as u32))
        .collect();

    // "We can figure out abnormal users in the same way": score users by
    // their clicks on the abnormal item set.
    let mut is_abnormal_item = vec![false; g.num_items()];
    for v in &abnormal_items {
        is_abnormal_item[v.index()] = true;
    }
    let user_risk: Vec<u64> = pool.map_vertices(g.num_users(), |u| {
        g.user_neighbors(UserId(u as u32))
            .filter(|(v, _)| is_abnormal_item[v.index()])
            .map(|(_, c)| c as u64)
            .sum()
    });
    let abnormal_users: Vec<UserId> = user_risk
        .iter()
        .enumerate()
        .filter(|&(_, &r)| r as f64 > params.t_risk_user)
        .map(|(u, _)| UserId(u as u32))
        .collect();

    (
        NaiveScores {
            user_alpha,
            item_risk,
            user_risk,
        },
        abnormal_items,
        abnormal_users,
    )
}

/// Runs Algorithm 1.
pub fn naive_detect(
    g: &BipartiteGraph,
    params: &NaiveParams,
    pool: &WorkerPool,
) -> DetectionResult {
    let timings = PhaseTimings::new();
    let (scores, abnormal_items, abnormal_users) =
        timings.time("naive", || compute(g, params, pool));

    let mut ranked_items: Vec<(ItemId, f64)> = abnormal_items
        .iter()
        .map(|&v| (v, scores.item_risk[v.index()] as f64))
        .collect();
    ranked_items.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let mut ranked_users: Vec<(UserId, f64)> = abnormal_users
        .iter()
        .map(|&u| (u, scores.user_risk[u.index()] as f64))
        .collect();
    ranked_users.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

    DetectionResult {
        // The naive algorithm has no group notion: one flat "group".
        groups: vec![SuspiciousGroup {
            users: abnormal_users,
            items: abnormal_items,
            ridden_hot_items: Vec::new(),
        }],
        ranked_users,
        ranked_items,
        timings: timings.report(),
        status: Default::default(),
    }
}

/// Computes only the scores (for threshold sweeps and the Section IV-style
/// rough screening analysis).
pub fn naive_scores(g: &BipartiteGraph, params: &NaiveParams, pool: &WorkerPool) -> NaiveScores {
    compute(g, params, pool).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::GraphBuilder;

    /// A hot item (i0, 1000+ clicks), a target (i1) clicked by hot-clicking
    /// users, and a cold item (i2) clicked by a user who never touches hot
    /// items.
    fn scenario() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..100 {
            b.add_click(UserId(u), ItemId(0), 12);
        }
        // Workers u0..u5 clicked hot i0 (above) and hammer target i1.
        for u in 0..5 {
            b.add_click(UserId(u), ItemId(1), 15);
        }
        // Normal user u200 clicks cold item i2 only.
        b.add_click(UserId(200), ItemId(2), 2);
        b.build()
    }

    fn params() -> NaiveParams {
        NaiveParams {
            t_hot: 1_000,
            t_risk_item: 50.0,
            t_risk_user: 12.0,
        }
    }

    #[test]
    fn flags_target_item_not_cold_item() {
        let g = scenario();
        let r = naive_detect(&g, &params(), &WorkerPool::new(2));
        let items = r.suspicious_items();
        assert!(items.contains(&ItemId(1)), "target flagged");
        assert!(!items.contains(&ItemId(0)), "hot item never a target");
        assert!(!items.contains(&ItemId(2)), "cold organic item clean");
    }

    #[test]
    fn flags_heavy_clickers_of_abnormal_items() {
        let g = scenario();
        let r = naive_detect(&g, &params(), &WorkerPool::new(2));
        let users = r.suspicious_users();
        assert!(users.contains(&UserId(0)));
        assert!(!users.contains(&UserId(200)));
        assert!(!users.contains(&UserId(50)), "hot-only clicker is clean");
    }

    #[test]
    fn alpha_counts_only_hot_clicks() {
        let g = scenario();
        let s = naive_scores(&g, &params(), &WorkerPool::new(2));
        assert_eq!(s.user_alpha[0], 12, "u0's clicks on hot i0");
        assert_eq!(s.user_alpha[200], 0);
        // i1's risk = Σ alphas of its 5 clickers = 5 x 12.
        assert_eq!(s.item_risk[1], 60);
        assert_eq!(s.item_risk[0], 0, "hot items score 0");
    }

    #[test]
    fn ranking_descends() {
        let g = scenario();
        let r = naive_detect(&g, &params(), &WorkerPool::new(2));
        for w in r.ranked_items.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        for w in r.ranked_users.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn empty_graph_is_clean() {
        let g = GraphBuilder::new().build();
        let r = naive_detect(&g, &params(), &WorkerPool::new(2));
        assert_eq!(r.num_output(), 0);
    }

    #[test]
    fn high_risk_threshold_silences_output() {
        let g = scenario();
        let p = NaiveParams {
            t_risk_item: f64::INFINITY,
            ..params()
        };
        let r = naive_detect(&g, &p, &WorkerPool::new(2));
        assert!(r.suspicious_items().is_empty());
        assert!(r.suspicious_users().is_empty(), "no items → no users");
    }

    #[test]
    fn timings_recorded() {
        let g = scenario();
        let r = naive_detect(&g, &params(), &WorkerPool::new(2));
        assert!(r.timings.get("naive").is_some());
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let g = scenario();
        let r1 = naive_detect(&g, &params(), &WorkerPool::new(1));
        let r4 = naive_detect(&g, &params(), &WorkerPool::new(4));
        assert_eq!(r1.suspicious_users(), r4.suspicious_users());
        assert_eq!(r1.suspicious_items(), r4.suspicious_items());
    }
}
