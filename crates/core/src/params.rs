//! Framework parameters.

use serde::{Deserialize, Serialize};

/// Which screening steps run — the paper's ablation axis (Table VI).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScreeningMode {
    /// No screening at all — the paper's **RICD-UI** variant ("removes the
    /// whole suspicious group screening module").
    None,
    /// User behavior check only — the paper's **RICD-I** variant ("removes
    /// the item behavior verification step").
    UserCheckOnly,
    /// Both steps — full **RICD**.
    Full,
}

/// How the run's thresholds are chosen: the paper's published operating
/// point, or `T_hot`/`T_click` derived from the observed data
/// ([`crate::thresholds::params_for_mode`]). Exposed on the stream and
/// adversarial CLI paths so the derived thresholds are exercisable — with
/// the documented caveat that on tiny synthetic worlds the derived `T_hot`
/// marks the attack targets themselves hot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamsMode {
    /// The paper's Section VI-B operating point ([`RicdParams::default`]).
    #[default]
    Default,
    /// `T_hot` from the Pareto rule and `T_click` from Eq 4, derived from
    /// the graph under detection; structural parameters stay at defaults.
    Derived,
}

impl ParamsMode {
    /// Parses the CLI spelling (`default` | `derived`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "default" => Ok(Self::Default),
            "derived" => Ok(Self::Derived),
            other => Err(format!("unknown params mode '{other}' (default|derived)")),
        }
    }

    /// The CLI spelling, for report fields.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Default => "default",
            Self::Derived => "derived",
        }
    }
}

/// All tunables of the RICD pipeline, with the paper's defaults
/// (Section VI-B: `k₁ = 10, k₂ = 10, α = 1.0, T_hot = 1,000, T_click = 12`).
///
/// `T_hot` is expressed as an absolute click threshold, as in the paper. On
/// synthetic data use [`crate::thresholds::derive_t_hot`] to derive it from
/// the Pareto rule instead of hard-coding the paper's 1,320.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RicdParams {
    /// Minimum number of users in an extracted structure (`k₁`,
    /// Definition 3).
    pub k1: usize,
    /// Minimum number of items in an extracted structure (`k₂`).
    pub k2: usize,
    /// Extension tolerance (`α ∈ (0, 1]`, Definition 2). `1.0` demands exact
    /// bicliques.
    pub alpha: f64,
    /// Hot-item threshold on total item clicks (`T_hot`).
    pub t_hot: u64,
    /// Abnormal-click threshold on a single user→item edge (`T_click`,
    /// Eq 4).
    pub t_click: u32,
    /// Section IV-A characteristic (2): abnormal users' average clicks on
    /// hot items is "extremely small (< 4)". Users above this bound pass the
    /// user behavior check only via the target-click rule.
    pub hot_avg_max: f64,
    /// Minimum number of in-group heavy clickers for an item to survive the
    /// item behavior verification (a single heavy edge is not a group
    /// attack).
    pub min_target_support: usize,
    /// Minimum users a *screened* group must retain to be reported — the
    /// paper's property 4b knob ("explicitly limit the detected group's
    /// size to avoid the misjudgment of group-buying phenomenon"). Two or
    /// three shoppers who each happen to re-click the same promotion are
    /// not a crowdsourced campaign.
    pub min_group_users: usize,
    /// Minimum target items a screened group must retain to be reported.
    pub min_group_targets: usize,
    /// Which screening steps run.
    pub screening: ScreeningMode,
    /// Maximum pruning rounds in Algorithm 3 before giving up on the
    /// fixpoint (safety valve; convergence is typically < 10 rounds).
    pub max_rounds: usize,
}

impl Default for RicdParams {
    fn default() -> Self {
        Self {
            k1: 10,
            k2: 10,
            alpha: 1.0,
            t_hot: 1_000,
            t_click: 12,
            hot_avg_max: 4.0,
            min_target_support: 2,
            min_group_users: 3,
            min_group_targets: 2,
            screening: ScreeningMode::Full,
            max_rounds: 64,
        }
    }
}

impl RicdParams {
    /// `⌈α · k₂⌉` — the user-degree bound of Lemma 1(1).
    pub fn user_degree_bound(&self) -> usize {
        (self.alpha * self.k2 as f64).ceil() as usize
    }

    /// `⌈α · k₁⌉` — the item-degree bound of Lemma 1(2).
    pub fn item_degree_bound(&self) -> usize {
        (self.alpha * self.k1 as f64).ceil() as usize
    }

    /// `⌈k₂ · α⌉` — the common-neighbor bound for user pairs
    /// (Definition 4).
    pub fn user_common_bound(&self) -> u32 {
        (self.alpha * self.k2 as f64).ceil() as u32
    }

    /// `⌈k₁ · α⌉` — the common-neighbor bound for item pairs.
    pub fn item_common_bound(&self) -> u32 {
        (self.alpha * self.k1 as f64).ceil() as u32
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.k1 == 0 || self.k2 == 0 {
            return Err("k1 and k2 must be positive".into());
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err("alpha must be in (0, 1]".into());
        }
        if self.t_click == 0 {
            return Err("t_click must be positive".into());
        }
        if self.max_rounds == 0 {
            return Err("max_rounds must be positive".into());
        }
        Ok(())
    }

    /// The Fig 7 relaxation step: loosen the thresholds that gate recall.
    /// Returns `None` when nothing is left to relax.
    pub fn relaxed(&self) -> Option<Self> {
        let mut p = *self;
        let mut changed = false;
        if p.t_click > 4 {
            p.t_click -= 2;
            changed = true;
        }
        if p.alpha > 0.7 {
            p.alpha = ((p.alpha - 0.1) * 10.0).round() / 10.0;
            changed = true;
        }
        if p.k1 > 4 {
            p.k1 -= 1;
            changed = true;
        }
        if p.k2 > 4 {
            p.k2 -= 1;
            changed = true;
        }
        changed.then_some(p)
    }
}

/// Thresholds for the per-anchor survival-kernel dispatch
/// ([`crate::kernel`]): which two-hop kernel answers each SquarePruning
/// survival query. Kept separate from [`RicdParams`] — these knobs tune
/// *how fast* the fixpoint runs, never *what* it computes, and the params
/// struct is serialized into run artifacts whose format should not churn
/// with engine tuning.
///
/// Defaults are taken from `crates/bench/benches/kernels.rs`
/// (`cargo bench -p ricd-bench --bench kernels`), not folklore; the
/// committed numbers are summarized in DESIGN.md §"Wedge kernel
/// selection". Headlines from the bench host: on the hub shape (organic
/// anchors riding hot items, candidate mass huge but unqualified) the
/// blocked kernel beats the wedge counter **3.2×** (0.97ms vs 3.09ms per
/// 64 anchors) and the registry build amortizes in well under one wedge
/// pass (~128µs); on the planted biclique it wins **1.6×**; on the sparse
/// tail — where no vertex clears `hub_min_degree` and the closed phase
/// must stream adjacency instead of ANDing bitmaps — blocked *loses*
/// ~1.4× (296µs vs 203µs), which is exactly why the dispatcher requires
/// hub coverage before leaving the wedge counter. The sorted-intersection
/// kernel loses the one-to-all survival query everywhere it cannot
/// early-exit (~6× on sparse, ~14× on hub vs wedge and ~44× vs blocked,
/// since it pays Θ(deg) per candidate where the others pay O(1) per
/// wedge) — which is why it stays reserved for externally-narrowed pair
/// queries unless explicitly enabled here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelPolicy {
    /// Alive-degree floor for a vertex to get a hub bitmap. Below this,
    /// walking the adjacency list is at most a few cache lines anyway and
    /// a bitmap would only add build cost.
    pub hub_min_degree: u32,
    /// Hub bitmaps per side. Bounds registry memory at
    /// `2 · hub_max_count · (V/8)` bytes; the degree distribution is
    /// heavy-tailed, so a few dozen covers the vertices that matter.
    pub hub_max_count: usize,
    /// Anchors with alive degree below this keep the plain wedge counter
    /// even when hubs exist (at tiny degree the closed phase is empty or
    /// trivial). 0 = always dispatch to blocked when a registry exists.
    pub blocked_min_anchor_degree: u32,
    /// Anchors with alive degree at or below this use the
    /// sorted-intersection kernel. 0 disables sorted dispatch entirely
    /// (the bench shows it losing the survival query at every degree).
    pub sorted_max_anchor_degree: u32,
}

impl Default for KernelPolicy {
    fn default() -> Self {
        Self {
            hub_min_degree: 64,
            hub_max_count: 64,
            blocked_min_anchor_degree: 0,
            sorted_max_anchor_degree: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_policy_defaults_are_sane() {
        let p = KernelPolicy::default();
        assert!(p.hub_min_degree >= 1);
        assert!(p.hub_max_count >= 1);
        assert_eq!(
            p.sorted_max_anchor_degree, 0,
            "sorted stays a pair-query kernel by default"
        );
    }

    #[test]
    fn defaults_match_paper() {
        let p = RicdParams::default();
        assert_eq!(p.k1, 10);
        assert_eq!(p.k2, 10);
        assert_eq!(p.alpha, 1.0);
        assert_eq!(p.t_hot, 1_000);
        assert_eq!(p.t_click, 12);
        p.validate().unwrap();
    }

    #[test]
    fn bounds_are_ceilings() {
        let p = RicdParams {
            alpha: 0.75,
            k1: 10,
            k2: 7,
            ..RicdParams::default()
        };
        assert_eq!(p.user_degree_bound(), 6); // ceil(0.75*7) = 6
        assert_eq!(p.item_degree_bound(), 8); // ceil(0.75*10) = 8
        assert_eq!(p.user_common_bound(), 6);
        assert_eq!(p.item_common_bound(), 8);
    }

    #[test]
    fn alpha_one_bounds_equal_k() {
        let p = RicdParams::default();
        assert_eq!(p.user_degree_bound(), 10);
        assert_eq!(p.item_degree_bound(), 10);
    }

    #[test]
    fn invalid_params_rejected() {
        let base = RicdParams::default;
        assert!(RicdParams {
            alpha: 0.0,
            ..base()
        }
        .validate()
        .is_err());
        assert!(RicdParams {
            alpha: 1.1,
            ..base()
        }
        .validate()
        .is_err());
        assert!(RicdParams { k1: 0, ..base() }.validate().is_err());
        assert!(RicdParams {
            t_click: 0,
            ..base()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn relaxation_loosens_until_floor() {
        let mut p = RicdParams::default();
        let mut steps = 0;
        while let Some(next) = p.relaxed() {
            assert!(next.t_click <= p.t_click);
            assert!(next.alpha <= p.alpha);
            assert!(next.k1 <= p.k1);
            next.validate().unwrap();
            p = next;
            steps += 1;
            assert!(steps < 100, "relaxation must terminate");
        }
        assert!(p.t_click <= 4);
        assert!(p.alpha <= 0.7 + 1e-9);
        assert_eq!(p.k1, 4);
    }
}
