//! The end-to-end RICD pipeline (Fig 4): detection → screening →
//! identification, with per-module timing.
//!
//! The pipeline degrades instead of aborting: a [`RunBudget`] deadline
//! exhausted at a phase boundary — or a phase lost to a persistent panic —
//! makes the run fall back to the naive Algorithm 1 detector and mark the
//! output [`RunStatus::Degraded`], so a scheduled detection run always
//! produces *a* report.

use crate::budget::{BudgetClock, RunBudget};
use crate::detect::{detect_groups_with, DetectedGroups, Seeds};
use crate::extract::{FixpointMode, SquareStrategy};
use crate::identify::rank_output;
use crate::naive::{naive_detect, NaiveParams};
use crate::params::RicdParams;
use crate::result::{DetectionResult, RunStatus};
use crate::screen::screen_groups;
use crate::shard_run::{detect_groups_sharded, ShardAbort, ShardConfig};
use ricd_engine::{PhaseTimings, WorkerPool};
use ricd_graph::BipartiteGraph;
use ricd_obs::{MetricsRegistry, Span};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs a phase with panics contained, stringifying the payload. The pool
/// already retries transient worker faults; a panic surfacing here is
/// persistent, and the caller degrades rather than crashing the run.
fn catch_phase<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| {
        if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// The configured RICD detector.
///
/// ```
/// use ricd_core::prelude::*;
/// use ricd_graph::{GraphBuilder, UserId, ItemId};
///
/// let mut b = GraphBuilder::new();
/// for u in 0..10 { for v in 0..10 { b.add_click(UserId(u), ItemId(v), 13); } }
/// for u in 100..1200 { b.add_click(UserId(u), ItemId(50), 1); }
/// let g = b.build();
///
/// let result = RicdPipeline::new(RicdParams::default()).run(&g);
/// assert_eq!(result.groups.len(), 1);
/// assert_eq!(result.suspicious_users().len(), 10);
/// ```
pub struct RicdPipeline {
    /// Framework parameters.
    pub params: RicdParams,
    /// Worker pool shared by all phases.
    pub pool: WorkerPool,
    /// SquarePruning execution strategy.
    pub strategy: SquareStrategy,
    /// Extraction fixpoint mode (delta-driven by default).
    pub mode: FixpointMode,
    /// Optional known-abnormal seeds.
    pub seeds: Seeds,
    /// Resource bounds; unbounded by default.
    pub budget: RunBudget,
    /// Metrics registry shared by all phases. Every run records phase spans
    /// (`pipeline/detect`, `pipeline/screen`, `pipeline/identify`,
    /// `pipeline/naive-fallback`), group counters (`pipeline.groups_*`),
    /// extraction counters (`extract.*`), pool health (`pool.*`), and
    /// `degradation` / `budget.deadline_exceeded` events.
    pub metrics: MetricsRegistry,
}

impl RicdPipeline {
    /// A pipeline with default pool/strategy, no seeds, and no budget.
    pub fn new(params: RicdParams) -> Self {
        Self {
            params,
            pool: WorkerPool::default_for_host(),
            strategy: SquareStrategy::Parallel,
            mode: FixpointMode::default(),
            seeds: Seeds::none(),
            budget: RunBudget::none(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Overrides the worker pool.
    pub fn with_pool(mut self, pool: WorkerPool) -> Self {
        self.pool = pool;
        self
    }

    /// Overrides the SquarePruning strategy.
    pub fn with_strategy(mut self, strategy: SquareStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the extraction fixpoint mode (e.g.
    /// [`FixpointMode::FullRescan`] for differential runs and ablations).
    pub fn with_fixpoint_mode(mut self, mode: FixpointMode) -> Self {
        self.mode = mode;
        self
    }

    /// Supplies known-abnormal seeds (Algorithm 2's auxiliary input).
    pub fn with_seeds(mut self, seeds: Seeds) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sets the run budget (deadline, group cap, frontier cap).
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Shares an external metrics registry (e.g. the CLI's, so one
    /// `--metrics-out` snapshot covers pipeline, pool, and I/O metrics).
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Runs the three modules on `g`.
    pub fn run(&self, g: &BipartiteGraph) -> DetectionResult {
        self.run_with(g, &self.params)
    }

    /// Runs with explicit parameters (the feedback loop reuses the pipeline
    /// with progressively relaxed parameters).
    ///
    /// The budget is checked at phase boundaries: once the deadline passes,
    /// remaining RICD phases are abandoned in favor of the naive fallback
    /// ([`naive_detect`], O(E) per phase) and the result is marked
    /// [`RunStatus::Degraded`]. Likewise for a phase panicking persistently
    /// (the pool's per-partition retries having already been spent). If the
    /// naive fallback itself panics, that panic propagates — at that point
    /// there is no cheaper detector left to degrade to.
    pub fn run_with(&self, g: &BipartiteGraph, params: &RicdParams) -> DetectionResult {
        let clock = BudgetClock::start(self.budget);
        let timings = PhaseTimings::new();
        // Re-attach the pool to this pipeline's registry so per-partition
        // health lands in the same snapshot, whatever the builder order was.
        let pool = self.pool.clone().with_metrics(&self.metrics);
        self.metrics.counter("pipeline.runs").inc();
        let root = self.metrics.span("pipeline");

        if clock.deadline_exceeded() {
            self.note_deadline(&clock);
            return self.degrade(
                g,
                params,
                &pool,
                &timings,
                &root,
                deadline_reason(&clock),
                "detect",
            );
        }

        // Module 1: suspicious group detection.
        let detected = match catch_phase(|| {
            let _span = root.child("detect");
            timings.time("detect", || {
                detect_groups_with(
                    g,
                    &self.seeds,
                    params,
                    &pool,
                    self.strategy,
                    self.mode,
                    Some(&self.metrics),
                )
            })
        }) {
            Ok(d) => d,
            Err(msg) => {
                return self.degrade(
                    g,
                    params,
                    &pool,
                    &timings,
                    &root,
                    panic_reason("detect", &msg),
                    "detect",
                )
            }
        };
        self.finish(g, params, detected, &clock, &pool, &timings, &root)
    }

    /// Runs the pipeline with the detection module executed **sharded**: the
    /// working graph is split into independent detection units (exact
    /// connected-component shards, then size-capped hash splits of giant
    /// components — see [`ricd_graph::shard`]) that run concurrently on the
    /// worker pool, followed by a reconciliation pass; the merged group set
    /// is provably identical to [`Self::run`]'s, so screening and
    /// identification proceed unchanged on the same output.
    ///
    /// Degradation semantics match [`Self::run_with`]: a deadline trip at a
    /// shard boundary, or a shard task panicking past the pool's retry
    /// budget, falls back to the naive detector with a single `degradation`
    /// event.
    pub fn run_sharded(&self, g: &BipartiteGraph, cfg: &ShardConfig) -> DetectionResult {
        let params = &self.params;
        let clock = BudgetClock::start(self.budget);
        let timings = PhaseTimings::new();
        let pool = self.pool.clone().with_metrics(&self.metrics);
        self.metrics.counter("pipeline.runs").inc();
        let root = self.metrics.span("pipeline");

        if clock.deadline_exceeded() {
            self.note_deadline(&clock);
            return self.degrade(
                g,
                params,
                &pool,
                &timings,
                &root,
                deadline_reason(&clock),
                "detect",
            );
        }

        // Module 1, sharded. The runtime checks the deadline at shard
        // boundaries through the closure; a trip aborts cleanly instead of
        // finishing a partial (and therefore wrong) merge.
        let outcome = catch_phase(|| {
            let _span = root.child("detect");
            timings.time("detect", || {
                detect_groups_sharded(
                    g,
                    &self.seeds,
                    params,
                    &pool,
                    cfg,
                    &|| clock.deadline_exceeded(),
                    Some(&self.metrics),
                )
            })
        });
        let detected = match outcome {
            Ok(Ok(d)) => d,
            Ok(Err(ShardAbort::DeadlineExceeded)) => {
                self.note_deadline(&clock);
                return self.degrade(
                    g,
                    params,
                    &pool,
                    &timings,
                    &root,
                    deadline_reason(&clock),
                    "detect",
                );
            }
            Ok(Err(ShardAbort::Engine(e))) => {
                return self.degrade(
                    g,
                    params,
                    &pool,
                    &timings,
                    &root,
                    panic_reason("detect", &e.to_string()),
                    "detect",
                )
            }
            Err(msg) => {
                return self.degrade(
                    g,
                    params,
                    &pool,
                    &timings,
                    &root,
                    panic_reason("detect", &msg),
                    "detect",
                )
            }
        };
        self.finish(g, params, detected, &clock, &pool, &timings, &root)
    }

    /// The shared tail of every successful detection: extraction counters,
    /// screening, the group cap, and identification. Both the unsharded and
    /// sharded paths land here, so downstream behavior cannot drift.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        g: &BipartiteGraph,
        params: &RicdParams,
        detected: DetectedGroups,
        clock: &BudgetClock,
        pool: &WorkerPool,
        timings: &PhaseTimings,
        root: &Span,
    ) -> DetectionResult {
        self.metrics
            .inc_by("extract.rounds", detected.stats.rounds as u64);
        self.metrics.inc_by(
            "extract.core_removed_users",
            detected.stats.core_removed_users as u64,
        );
        self.metrics.inc_by(
            "extract.core_removed_items",
            detected.stats.core_removed_items as u64,
        );
        self.metrics.inc_by(
            "extract.square_removed_users",
            detected.stats.square_removed_users as u64,
        );
        self.metrics.inc_by(
            "extract.square_removed_items",
            detected.stats.square_removed_items as u64,
        );
        self.metrics
            .inc_by("extract.dirty_users", detected.stats.dirty_users as u64);
        self.metrics
            .inc_by("extract.dirty_items", detected.stats.dirty_items as u64);
        self.metrics.inc_by(
            "extract.skipped",
            (detected.stats.skipped_users + detected.stats.skipped_items) as u64,
        );
        self.metrics
            .inc_by("extract.compactions", detected.stats.compactions as u64);
        self.metrics
            .inc_by("extract.kernel_wedge", detected.stats.kernel_wedge);
        self.metrics
            .inc_by("extract.kernel_blocked", detected.stats.kernel_blocked);
        self.metrics
            .inc_by("extract.kernel_sorted", detected.stats.kernel_sorted);
        self.metrics
            .gauge("twohop.hub_bitmap_bytes")
            .set(detected.stats.hub_bitmap_bytes as i64);
        self.metrics
            .inc_by("pipeline.groups_detected", detected.groups.len() as u64);
        if clock.deadline_exceeded() {
            self.note_deadline(clock);
            return self.degrade(
                g,
                params,
                pool,
                timings,
                root,
                deadline_reason(clock),
                "screen",
            );
        }

        // Module 2: suspicious group screening.
        let screened = match catch_phase(|| {
            let _span = root.child("screen");
            timings.time("screen", || screen_groups(g, detected.groups, params))
        }) {
            Ok((groups, _stats)) => groups,
            Err(msg) => {
                return self.degrade(
                    g,
                    params,
                    pool,
                    timings,
                    root,
                    panic_reason("screen", &msg),
                    "screen",
                )
            }
        };
        let screened_len = screened.len();
        self.metrics
            .inc_by("pipeline.groups_screened", screened_len as u64);
        let (groups, capped) = self.cap_groups(screened);
        if capped.is_some() {
            self.metrics.inc_by(
                "pipeline.groups_capped_dropped",
                (screened_len - groups.len()) as u64,
            );
        }
        if clock.deadline_exceeded() {
            self.note_deadline(clock);
            return self.degrade(
                g,
                params,
                pool,
                timings,
                root,
                deadline_reason(clock),
                "identify",
            );
        }

        // Module 3: suspicious group identification.
        let (ranked_users, ranked_items) = match catch_phase(|| {
            let _span = root.child("identify");
            timings.time("identify", || rank_output(g, &groups))
        }) {
            Ok(r) => r,
            Err(msg) => {
                return self.degrade(
                    g,
                    params,
                    pool,
                    timings,
                    root,
                    panic_reason("identify", &msg),
                    "identify",
                )
            }
        };

        let status = match capped {
            // The cap is the only degradation left on this path (a deadline
            // trip after capping took the `degrade` return above), so this
            // is the run's single `degradation` event.
            Some(reason) => {
                self.metrics.counter("pipeline.runs_degraded").inc();
                self.metrics.event("degradation", &reason);
                RunStatus::Degraded {
                    reason,
                    phase: "screen".to_string(),
                }
            }
            None => RunStatus::Complete,
        };
        self.metrics
            .gauge("pipeline.groups_output")
            .set(groups.len() as i64);
        let mut result = DetectionResult {
            groups,
            ranked_users,
            ranked_items,
            timings: timings.report(),
            status,
        };
        result.prune_empty();
        result
    }

    /// Records a deadline trip as a budget-exhaustion event.
    fn note_deadline(&self, clock: &BudgetClock) {
        self.metrics
            .event("budget.deadline_exceeded", &deadline_reason(clock));
    }

    /// Applies the `max_groups` cap, keeping the largest groups (ties by
    /// original order) and reporting what was dropped.
    fn cap_groups(
        &self,
        mut groups: Vec<crate::result::SuspiciousGroup>,
    ) -> (Vec<crate::result::SuspiciousGroup>, Option<String>) {
        let Some(cap) = self.budget.max_groups else {
            return (groups, None);
        };
        if groups.len() <= cap {
            return (groups, None);
        }
        let found = groups.len();
        // Keep the biggest groups: a capped report should surface the
        // largest campaigns first.
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(groups[i].len()), i));
        order.truncate(cap);
        order.sort_unstable();
        let mut kept = Vec::with_capacity(cap);
        for i in order {
            kept.push(std::mem::take(&mut groups[i]));
        }
        (
            kept,
            Some(format!(
                "group cap {cap} exceeded: {found} groups found, smallest {} dropped",
                found - cap
            )),
        )
    }

    /// The graceful-degradation path: run the cheap naive detector and mark
    /// the result with why the full pipeline was abandoned.
    #[allow(clippy::too_many_arguments)] // internal helper; args are the run's live state
    fn degrade(
        &self,
        g: &BipartiteGraph,
        params: &RicdParams,
        pool: &WorkerPool,
        timings: &PhaseTimings,
        span: &Span,
        reason: String,
        phase: &str,
    ) -> DetectionResult {
        // Every degraded run passes through exactly one of the two
        // final-status decision sites (here, or the group-cap branch in
        // `run_with`), so each run emits exactly one `degradation` event.
        self.metrics.counter("pipeline.runs_degraded").inc();
        self.metrics.event("degradation", &reason);
        let naive_params = NaiveParams {
            t_hot: params.t_hot,
            ..NaiveParams::default()
        };
        let fallback = {
            let _span = span.child("naive-fallback");
            timings.time("naive-fallback", || naive_detect(g, &naive_params, pool))
        };
        self.metrics
            .gauge("pipeline.groups_output")
            .set(fallback.groups.len() as i64);
        let mut result = DetectionResult {
            groups: fallback.groups,
            ranked_users: fallback.ranked_users,
            ranked_items: fallback.ranked_items,
            timings: timings.report(),
            status: RunStatus::Degraded {
                reason,
                phase: phase.to_string(),
            },
        };
        result.prune_empty();
        result
    }
}

fn deadline_reason(clock: &BudgetClock) -> String {
    let limit = clock
        .budget()
        .deadline
        .expect("deadline_exceeded implies a deadline");
    format!(
        "deadline of {:?} exceeded ({:?} elapsed)",
        limit,
        clock.elapsed()
    )
}

fn panic_reason(phase: &str, msg: &str) -> String {
    format!("{phase} phase panicked persistently: {msg}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ScreeningMode;
    use ricd_datagen::prelude::*;
    use ricd_graph::{GraphBuilder, ItemId, UserId};

    /// Attack group + hot item + normal background, end to end.
    fn scenario() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        // Hot item i0 with 1200 background clicks.
        for u in 1000..2200u32 {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        // 12 workers ride i0 and hammer targets i1..=i10.
        for u in 0..12u32 {
            b.add_click(UserId(u), ItemId(0), 1);
            for v in 1..=10u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        // Normal co-shoppers: a loose clique on items 20..26 with light
        // clicks (group-buying-like, must NOT be output).
        for u in 100..112u32 {
            for v in 20..26u32 {
                b.add_click(UserId(u), ItemId(v), 2);
            }
        }
        b.build()
    }

    #[test]
    fn end_to_end_finds_the_attack_group() {
        let r = RicdPipeline::new(RicdParams::default()).run(&scenario());
        assert_eq!(r.groups.len(), 1);
        let g0 = &r.groups[0];
        assert_eq!(g0.users.len(), 12);
        assert!(g0.users.iter().all(|u| u.0 < 12));
        assert_eq!(g0.items.len(), 10);
        assert!(g0.items.iter().all(|v| (1..=10).contains(&v.0)));
    }

    #[test]
    fn light_click_clique_not_flagged() {
        // The group-buying-like clique survives structural extraction (it is
        // a biclique) only if k-bounds admit it — 12 users x 6 items fails
        // k2=10 — and would be screened out anyway by T_click.
        let r = RicdPipeline::new(RicdParams::default()).run(&scenario());
        for g in &r.groups {
            assert!(g.users.iter().all(|u| u.0 < 12), "only workers output");
        }
    }

    #[test]
    fn hot_item_reported_as_ridden_not_suspicious() {
        let r = RicdPipeline::new(RicdParams::default()).run(&scenario());
        let g0 = &r.groups[0];
        assert_eq!(g0.ridden_hot_items, vec![ItemId(0)]);
        assert!(!r.suspicious_items().contains(&ItemId(0)));
    }

    #[test]
    fn ranked_output_covers_group_members() {
        let r = RicdPipeline::new(RicdParams::default()).run(&scenario());
        assert_eq!(r.ranked_users.len(), 12);
        assert_eq!(r.ranked_items.len(), 10);
        // Every worker clicked all 10 targets.
        assert!(r.ranked_users.iter().all(|&(_, s)| (s - 10.0).abs() < 1e-9));
    }

    #[test]
    fn timings_cover_all_modules() {
        let r = RicdPipeline::new(RicdParams::default()).run(&scenario());
        for phase in ["detect", "screen", "identify"] {
            assert!(r.timings.get(phase).is_some(), "missing {phase}");
        }
    }

    #[test]
    fn screening_modes_monotonically_shrink_output() {
        let g = scenario();
        let run = |mode| {
            let params = RicdParams {
                screening: mode,
                ..RicdParams::default()
            };
            RicdPipeline::new(params).run(&g).num_output()
        };
        let none = run(ScreeningMode::None);
        let user_only = run(ScreeningMode::UserCheckOnly);
        let full = run(ScreeningMode::Full);
        assert!(none >= user_only, "RICD-UI ⊇ RICD-I output");
        assert!(user_only >= full, "RICD-I ⊇ RICD output");
        assert!(full > 0);
    }

    #[test]
    fn detects_planted_attacks_in_synthetic_data() {
        let ds = generate(&DatasetConfig::small(), &AttackConfig::small()).unwrap();
        // The paper's absolute operating point T_hot = 1000 transfers to the
        // synthetic data because the scale-down preserves per-item click
        // averages (see DESIGN.md).
        let r = RicdPipeline::new(RicdParams::default()).run(&ds.graph);
        assert!(!r.groups.is_empty(), "at least one planted group found");
        // Precision sanity: every output user is a planted worker.
        let truth_users = ds.truth.abnormal_users();
        let found = r.suspicious_users();
        let hits = found.iter().filter(|u| truth_users.contains(u)).count();
        assert!(
            hits * 10 >= found.len() * 8,
            "≥80% of output users are planted workers ({hits}/{})",
            found.len()
        );
    }

    #[test]
    fn deterministic_output() {
        let g = scenario();
        let r1 = RicdPipeline::new(RicdParams::default()).run(&g);
        let r2 = RicdPipeline::new(RicdParams::default()).run(&g);
        assert_eq!(r1.groups, r2.groups);
        assert_eq!(r1.ranked_users, r2.ranked_users);
    }

    #[test]
    fn unbounded_run_is_complete() {
        let r = RicdPipeline::new(RicdParams::default()).run(&scenario());
        assert_eq!(r.status, RunStatus::Complete);
    }

    #[test]
    fn exhausted_deadline_degrades_to_naive() {
        use std::time::Duration;
        let g = scenario();
        let r = RicdPipeline::new(RicdParams::default())
            .with_budget(RunBudget::none().with_deadline(Duration::ZERO))
            .run(&g);
        match &r.status {
            RunStatus::Degraded { reason, phase } => {
                assert_eq!(phase, "detect", "tripped before the first phase");
                assert!(reason.contains("deadline"), "{reason}");
            }
            RunStatus::Complete => panic!("zero deadline must degrade"),
        }
        // The fallback still produces a report (best-effort; Algorithm 1's
        // default risk thresholds may flag less than RICD would have).
        assert!(
            r.timings.get("naive-fallback").is_some(),
            "fallback timing recorded"
        );
        assert!(r.groups.len() <= 1, "naive emits at most one flat group");
        assert!(r.timings.get("screen").is_none(), "screen never ran");
    }

    #[test]
    fn generous_deadline_stays_complete() {
        use std::time::Duration;
        let r = RicdPipeline::new(RicdParams::default())
            .with_budget(RunBudget::none().with_deadline(Duration::from_secs(600)))
            .run(&scenario());
        assert_eq!(r.status, RunStatus::Complete);
        assert!(r.timings.get("identify").is_some());
    }

    #[test]
    fn group_cap_keeps_largest_and_marks_degraded() {
        // Two disjoint attack groups of different sizes; cap at 1.
        let mut b = GraphBuilder::new();
        for u in 1000..2200u32 {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        for u in 0..12u32 {
            b.add_click(UserId(u), ItemId(0), 1);
            for v in 1..=10u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        for u in 200..215u32 {
            b.add_click(UserId(u), ItemId(0), 1);
            for v in 50..=61u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        let g = b.build();
        let uncapped = RicdPipeline::new(RicdParams::default()).run(&g);
        assert_eq!(uncapped.groups.len(), 2);
        let capped = RicdPipeline::new(RicdParams::default())
            .with_budget(RunBudget::none().with_max_groups(1))
            .run(&g);
        assert_eq!(capped.groups.len(), 1);
        assert!(capped.status.is_degraded());
        let biggest = uncapped.groups.iter().map(|g| g.len()).max().unwrap();
        assert_eq!(
            capped.groups[0].len(),
            biggest,
            "cap keeps the largest group"
        );
    }

    #[test]
    fn complete_run_records_phase_spans_and_group_counters() {
        let registry = MetricsRegistry::new();
        let r = RicdPipeline::new(RicdParams::default())
            .with_metrics(registry.clone())
            .run(&scenario());
        assert_eq!(r.status, RunStatus::Complete);
        let snap = registry.snapshot();
        for path in [
            "pipeline",
            "pipeline/detect",
            "pipeline/screen",
            "pipeline/identify",
        ] {
            assert_eq!(snap.span(path).map(|s| s.count), Some(1), "span {path}");
        }
        assert!(snap.span("pipeline/naive-fallback").is_none());
        assert_eq!(snap.counter("pipeline.runs"), Some(1));
        assert_eq!(snap.counter("pipeline.runs_degraded").unwrap_or(0), 0);
        assert_eq!(snap.counter("pipeline.groups_detected"), Some(1));
        assert_eq!(snap.counter("pipeline.groups_screened"), Some(1));
        assert_eq!(snap.gauge("pipeline.groups_output"), Some(1));
        assert!(snap.counter("extract.rounds").unwrap() >= 1);
        assert!(snap.counter("pool.partitions_started").unwrap() > 0);
        assert!(snap.events.is_empty(), "complete run emits no events");
    }

    #[test]
    fn delta_fixpoint_counters_land_in_snapshot() {
        let registry = MetricsRegistry::new();
        let r = RicdPipeline::new(RicdParams::default())
            .with_metrics(registry.clone())
            .run(&scenario());
        assert_eq!(r.status, RunStatus::Complete);
        let snap = registry.snapshot();
        // The delta counters are always registered; non-zero only when the
        // fixpoint needs more than the seeding round.
        for name in [
            "extract.dirty_users",
            "extract.dirty_items",
            "extract.skipped",
            "extract.compactions",
            "extract.kernel_wedge",
            "extract.kernel_blocked",
            "extract.kernel_sorted",
        ] {
            assert!(snap.counter(name).is_some(), "missing {name}");
        }
        assert!(
            snap.counter("extract.kernel_wedge").unwrap() > 0,
            "square pruning must answer survival queries"
        );
        assert!(
            snap.gauge("twohop.hub_bitmap_bytes").is_some(),
            "hub registry gauge exported"
        );
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "extract.round_nanos")
            .expect("per-round extraction timings recorded");
        assert_eq!(h.count, snap.counter("extract.rounds").unwrap());
    }

    #[test]
    fn fixpoint_modes_agree_end_to_end() {
        let g = scenario();
        let delta = RicdPipeline::new(RicdParams::default()).run(&g);
        let full = RicdPipeline::new(RicdParams::default())
            .with_fixpoint_mode(FixpointMode::FullRescan)
            .run(&g);
        assert_eq!(delta.groups, full.groups);
        assert_eq!(delta.ranked_users, full.ranked_users);
    }

    #[test]
    fn deadline_degradation_emits_exactly_one_degradation_event() {
        use std::time::Duration;
        let registry = MetricsRegistry::new();
        let r = RicdPipeline::new(RicdParams::default())
            .with_metrics(registry.clone())
            .with_budget(RunBudget::none().with_deadline(Duration::ZERO))
            .run(&scenario());
        assert!(r.status.is_degraded());
        assert_eq!(registry.event_count("degradation"), 1);
        assert_eq!(registry.event_count("budget.deadline_exceeded"), 1);
        let snap = registry.snapshot();
        let degr = snap
            .events
            .iter()
            .find(|e| e.name == "degradation")
            .unwrap();
        assert!(!degr.message.is_empty());
        assert_eq!(snap.counter("pipeline.runs_degraded"), Some(1));
        assert_eq!(
            snap.span("pipeline/naive-fallback").map(|s| s.count),
            Some(1)
        );
    }

    #[test]
    fn group_cap_degradation_emits_exactly_one_degradation_event() {
        let registry = MetricsRegistry::new();
        // Reuse the two-group scenario from the cap test.
        let mut b = GraphBuilder::new();
        for u in 1000..2200u32 {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        for u in 0..12u32 {
            b.add_click(UserId(u), ItemId(0), 1);
            for v in 1..=10u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        for u in 200..215u32 {
            b.add_click(UserId(u), ItemId(0), 1);
            for v in 50..=61u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        let r = RicdPipeline::new(RicdParams::default())
            .with_metrics(registry.clone())
            .with_budget(RunBudget::none().with_max_groups(1))
            .run(&b.build());
        assert!(r.status.is_degraded());
        assert_eq!(registry.event_count("degradation"), 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pipeline.groups_capped_dropped"), Some(1));
        assert_eq!(snap.counter("pipeline.runs_degraded"), Some(1));
    }

    #[test]
    fn sharded_run_matches_unsharded_end_to_end() {
        let g = scenario();
        let want = RicdPipeline::new(RicdParams::default()).run(&g);
        assert_eq!(want.status, RunStatus::Complete);
        for cfg in [
            ShardConfig::default(),
            ShardConfig {
                shards: None,
                max_users: Some(4),
                ..Default::default()
            },
            ShardConfig {
                shards: Some(16),
                max_users: None,
                ..Default::default()
            },
        ] {
            let got = RicdPipeline::new(RicdParams::default()).run_sharded(&g, &cfg);
            assert_eq!(got.status, RunStatus::Complete, "cfg={cfg:?}");
            assert_eq!(got.groups, want.groups, "cfg={cfg:?}");
            assert_eq!(got.ranked_users, want.ranked_users, "cfg={cfg:?}");
            assert_eq!(got.ranked_items, want.ranked_items, "cfg={cfg:?}");
        }
    }

    #[test]
    fn sharded_run_records_shard_metrics_and_spans() {
        let registry = MetricsRegistry::new();
        let r = RicdPipeline::new(RicdParams::default())
            .with_metrics(registry.clone())
            .run_sharded(
                &scenario(),
                &ShardConfig {
                    shards: None,
                    max_users: Some(4),
                    ..Default::default()
                },
            );
        assert_eq!(r.status, RunStatus::Complete);
        let snap = registry.snapshot();
        for path in ["pipeline", "pipeline/detect", "pipeline/screen"] {
            assert_eq!(snap.span(path).map(|s| s.count), Some(1), "span {path}");
        }
        assert!(snap.counter("shard.planned").unwrap() >= 1);
        assert!(
            snap.counter("shard.prefilter_removed_users").unwrap() > 0,
            "background clickers die in the pre-filter"
        );
        assert!(
            snap.events.is_empty(),
            "complete sharded run emits no events"
        );
    }

    #[test]
    fn sharded_zero_deadline_degrades_to_naive() {
        use std::time::Duration;
        let registry = MetricsRegistry::new();
        let r = RicdPipeline::new(RicdParams::default())
            .with_metrics(registry.clone())
            .with_budget(RunBudget::none().with_deadline(Duration::ZERO))
            .run_sharded(&scenario(), &ShardConfig::default());
        match &r.status {
            RunStatus::Degraded { reason, phase } => {
                assert_eq!(phase, "detect");
                assert!(reason.contains("deadline"), "{reason}");
            }
            RunStatus::Complete => panic!("zero deadline must degrade"),
        }
        assert_eq!(registry.event_count("degradation"), 1);
        assert!(r.timings.get("naive-fallback").is_some());
    }

    #[test]
    fn group_cap_above_output_is_not_degraded() {
        let r = RicdPipeline::new(RicdParams::default())
            .with_budget(RunBudget::none().with_max_groups(100))
            .run(&scenario());
        assert_eq!(r.status, RunStatus::Complete);
        assert_eq!(r.groups.len(), 1);
    }
}
