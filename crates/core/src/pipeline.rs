//! The end-to-end RICD pipeline (Fig 4): detection → screening →
//! identification, with per-module timing.

use crate::detect::{detect_groups, Seeds};
use crate::extract::SquareStrategy;
use crate::identify::rank_output;
use crate::params::RicdParams;
use crate::result::DetectionResult;
use crate::screen::screen_groups;
use ricd_engine::{PhaseTimings, WorkerPool};
use ricd_graph::BipartiteGraph;

/// The configured RICD detector.
///
/// ```
/// use ricd_core::prelude::*;
/// use ricd_graph::{GraphBuilder, UserId, ItemId};
///
/// let mut b = GraphBuilder::new();
/// for u in 0..10 { for v in 0..10 { b.add_click(UserId(u), ItemId(v), 13); } }
/// for u in 100..1200 { b.add_click(UserId(u), ItemId(50), 1); }
/// let g = b.build();
///
/// let result = RicdPipeline::new(RicdParams::default()).run(&g);
/// assert_eq!(result.groups.len(), 1);
/// assert_eq!(result.suspicious_users().len(), 10);
/// ```
pub struct RicdPipeline {
    /// Framework parameters.
    pub params: RicdParams,
    /// Worker pool shared by all phases.
    pub pool: WorkerPool,
    /// SquarePruning execution strategy.
    pub strategy: SquareStrategy,
    /// Optional known-abnormal seeds.
    pub seeds: Seeds,
}

impl RicdPipeline {
    /// A pipeline with default pool/strategy and no seeds.
    pub fn new(params: RicdParams) -> Self {
        Self {
            params,
            pool: WorkerPool::default_for_host(),
            strategy: SquareStrategy::Parallel,
            seeds: Seeds::none(),
        }
    }

    /// Overrides the worker pool.
    pub fn with_pool(mut self, pool: WorkerPool) -> Self {
        self.pool = pool;
        self
    }

    /// Overrides the SquarePruning strategy.
    pub fn with_strategy(mut self, strategy: SquareStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Supplies known-abnormal seeds (Algorithm 2's auxiliary input).
    pub fn with_seeds(mut self, seeds: Seeds) -> Self {
        self.seeds = seeds;
        self
    }

    /// Runs the three modules on `g`.
    pub fn run(&self, g: &BipartiteGraph) -> DetectionResult {
        self.run_with(g, &self.params)
    }

    /// Runs with explicit parameters (the feedback loop reuses the pipeline
    /// with progressively relaxed parameters).
    pub fn run_with(&self, g: &BipartiteGraph, params: &RicdParams) -> DetectionResult {
        let timings = PhaseTimings::new();

        // Module 1: suspicious group detection.
        let detected = timings.time("detect", || {
            detect_groups(g, &self.seeds, params, &self.pool, self.strategy)
        });

        // Module 2: suspicious group screening.
        let (groups, _stats) =
            timings.time("screen", || screen_groups(g, detected.groups, params));

        // Module 3: suspicious group identification.
        let (ranked_users, ranked_items) = timings.time("identify", || rank_output(g, &groups));

        let mut result = DetectionResult {
            groups,
            ranked_users,
            ranked_items,
            timings: timings.report(),
        };
        result.prune_empty();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ScreeningMode;
    use ricd_datagen::prelude::*;
    use ricd_graph::{GraphBuilder, ItemId, UserId};

    /// Attack group + hot item + normal background, end to end.
    fn scenario() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        // Hot item i0 with 1200 background clicks.
        for u in 1000..2200u32 {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        // 12 workers ride i0 and hammer targets i1..=i10.
        for u in 0..12u32 {
            b.add_click(UserId(u), ItemId(0), 1);
            for v in 1..=10u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        // Normal co-shoppers: a loose clique on items 20..26 with light
        // clicks (group-buying-like, must NOT be output).
        for u in 100..112u32 {
            for v in 20..26u32 {
                b.add_click(UserId(u), ItemId(v), 2);
            }
        }
        b.build()
    }

    #[test]
    fn end_to_end_finds_the_attack_group() {
        let r = RicdPipeline::new(RicdParams::default()).run(&scenario());
        assert_eq!(r.groups.len(), 1);
        let g0 = &r.groups[0];
        assert_eq!(g0.users.len(), 12);
        assert!(g0.users.iter().all(|u| u.0 < 12));
        assert_eq!(g0.items.len(), 10);
        assert!(g0.items.iter().all(|v| (1..=10).contains(&v.0)));
    }

    #[test]
    fn light_click_clique_not_flagged() {
        // The group-buying-like clique survives structural extraction (it is
        // a biclique) only if k-bounds admit it — 12 users x 6 items fails
        // k2=10 — and would be screened out anyway by T_click.
        let r = RicdPipeline::new(RicdParams::default()).run(&scenario());
        for g in &r.groups {
            assert!(g.users.iter().all(|u| u.0 < 12), "only workers output");
        }
    }

    #[test]
    fn hot_item_reported_as_ridden_not_suspicious() {
        let r = RicdPipeline::new(RicdParams::default()).run(&scenario());
        let g0 = &r.groups[0];
        assert_eq!(g0.ridden_hot_items, vec![ItemId(0)]);
        assert!(!r.suspicious_items().contains(&ItemId(0)));
    }

    #[test]
    fn ranked_output_covers_group_members() {
        let r = RicdPipeline::new(RicdParams::default()).run(&scenario());
        assert_eq!(r.ranked_users.len(), 12);
        assert_eq!(r.ranked_items.len(), 10);
        // Every worker clicked all 10 targets.
        assert!(r.ranked_users.iter().all(|&(_, s)| (s - 10.0).abs() < 1e-9));
    }

    #[test]
    fn timings_cover_all_modules() {
        let r = RicdPipeline::new(RicdParams::default()).run(&scenario());
        for phase in ["detect", "screen", "identify"] {
            assert!(r.timings.get(phase).is_some(), "missing {phase}");
        }
    }

    #[test]
    fn screening_modes_monotonically_shrink_output() {
        let g = scenario();
        let run = |mode| {
            let params = RicdParams {
                screening: mode,
                ..RicdParams::default()
            };
            RicdPipeline::new(params).run(&g).num_output()
        };
        let none = run(ScreeningMode::None);
        let user_only = run(ScreeningMode::UserCheckOnly);
        let full = run(ScreeningMode::Full);
        assert!(none >= user_only, "RICD-UI ⊇ RICD-I output");
        assert!(user_only >= full, "RICD-I ⊇ RICD output");
        assert!(full > 0);
    }

    #[test]
    fn detects_planted_attacks_in_synthetic_data() {
        let ds = generate(&DatasetConfig::small(), &AttackConfig::small()).unwrap();
        // The paper's absolute operating point T_hot = 1000 transfers to the
        // synthetic data because the scale-down preserves per-item click
        // averages (see DESIGN.md).
        let r = RicdPipeline::new(RicdParams::default()).run(&ds.graph);
        assert!(!r.groups.is_empty(), "at least one planted group found");
        // Precision sanity: every output user is a planted worker.
        let truth_users = ds.truth.abnormal_users();
        let found = r.suspicious_users();
        let hits = found.iter().filter(|u| truth_users.contains(u)).count();
        assert!(
            hits * 10 >= found.len() * 8,
            "≥80% of output users are planted workers ({hits}/{})",
            found.len()
        );
    }

    #[test]
    fn deterministic_output() {
        let g = scenario();
        let r1 = RicdPipeline::new(RicdParams::default()).run(&g);
        let r2 = RicdPipeline::new(RicdParams::default()).run(&g);
        assert_eq!(r1.groups, r2.groups);
        assert_eq!(r1.ranked_users, r2.ranked_users);
    }
}
