//! Shared output types for every detector (RICD, naive, and the baselines in
//! `ricd-baselines` all produce a [`DetectionResult`], which the evaluation
//! crate scores uniformly).

use ricd_engine::timing::TimingReport;
use ricd_graph::{ItemId, UserId};
use serde::{Deserialize, Serialize};

/// One detected attack group: the problem statement's `gᵢ` with its
/// suspicious user set `gᵢ.u_sus` and suspicious item set `gᵢ.v_sus`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuspiciousGroup {
    /// Suspicious users (crowd-worker candidates), sorted.
    pub users: Vec<UserId>,
    /// Suspicious target-item candidates, sorted.
    pub items: Vec<ItemId>,
    /// Hot items the group rides — reported for analyst context, *not*
    /// counted as abnormal nodes.
    pub ridden_hot_items: Vec<ItemId>,
}

impl SuspiciousGroup {
    /// Number of abnormal nodes in the group.
    pub fn len(&self) -> usize {
        self.users.len() + self.items.len()
    }

    /// True if the group has neither users nor items.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty() && self.items.is_empty()
    }
}

/// How a detection run completed.
///
/// A run that exhausts its [`RunBudget`](crate::budget::RunBudget) or loses
/// a phase to a persistent fault does not abort: it degrades (typically to
/// the naive Algorithm 1 fallback) and records why here, so downstream
/// consumers can distinguish a full-fidelity report from a best-effort one.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// All phases ran to completion within budget.
    #[default]
    Complete,
    /// The run cut corners; the output is best-effort.
    Degraded {
        /// Human-readable cause (deadline exhausted, phase panicked, caps).
        reason: String,
        /// The phase at whose boundary degradation occurred.
        phase: String,
    },
}

impl RunStatus {
    /// True for [`RunStatus::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, RunStatus::Degraded { .. })
    }
}

/// The output of a detection run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DetectionResult {
    /// Detected groups.
    pub groups: Vec<SuspiciousGroup>,
    /// Users ranked by risk score, highest first (Section V-B module 3).
    /// Empty if the detector does not score.
    pub ranked_users: Vec<(UserId, f64)>,
    /// Items ranked by risk score, highest first.
    pub ranked_items: Vec<(ItemId, f64)>,
    /// Per-phase elapsed times.
    pub timings: TimingReport,
    /// Whether the run completed at full fidelity or degraded.
    pub status: RunStatus,
}

impl DetectionResult {
    /// Union of all groups' suspicious users (`U_sus`), sorted, deduplicated.
    pub fn suspicious_users(&self) -> Vec<UserId> {
        let mut u: Vec<UserId> = self
            .groups
            .iter()
            .flat_map(|g| g.users.iter().copied())
            .collect();
        u.sort_unstable();
        u.dedup();
        u
    }

    /// Union of all groups' suspicious items (`V_sus`), sorted, deduplicated.
    pub fn suspicious_items(&self) -> Vec<ItemId> {
        let mut v: Vec<ItemId> = self
            .groups
            .iter()
            .flat_map(|g| g.items.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total number of output abnormal nodes — the denominator of the
    /// paper's precision (Eq 5).
    pub fn num_output(&self) -> usize {
        self.suspicious_users().len() + self.suspicious_items().len()
    }

    /// Drops empty groups.
    pub fn prune_empty(&mut self) {
        self.groups.retain(|g| !g.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> DetectionResult {
        DetectionResult {
            groups: vec![
                SuspiciousGroup {
                    users: vec![UserId(1), UserId(2)],
                    items: vec![ItemId(5)],
                    ridden_hot_items: vec![ItemId(0)],
                },
                SuspiciousGroup {
                    users: vec![UserId(2)],
                    items: vec![ItemId(6), ItemId(5)],
                    ridden_hot_items: vec![],
                },
                SuspiciousGroup::default(),
            ],
            ..DetectionResult::default()
        }
    }

    #[test]
    fn unions_dedup() {
        let r = result();
        assert_eq!(r.suspicious_users(), vec![UserId(1), UserId(2)]);
        assert_eq!(r.suspicious_items(), vec![ItemId(5), ItemId(6)]);
        assert_eq!(r.num_output(), 4);
    }

    #[test]
    fn ridden_hot_items_not_in_output() {
        let r = result();
        assert!(!r.suspicious_items().contains(&ItemId(0)));
    }

    #[test]
    fn prune_empty_removes_empty_groups() {
        let mut r = result();
        assert_eq!(r.groups.len(), 3);
        r.prune_empty();
        assert_eq!(r.groups.len(), 2);
    }

    #[test]
    fn status_round_trips_and_defaults_complete() {
        use serde::{Deserialize, Serialize};
        let r = result();
        assert_eq!(r.status, RunStatus::Complete);
        assert!(!r.status.is_degraded());
        let degraded = RunStatus::Degraded {
            reason: "deadline of 5ms exceeded".into(),
            phase: "screen".into(),
        };
        assert!(degraded.is_degraded());
        assert_eq!(RunStatus::from_value(&degraded.to_value()), Ok(degraded));
        assert_eq!(
            RunStatus::from_value(&RunStatus::Complete.to_value()),
            Ok(RunStatus::Complete)
        );
    }

    #[test]
    fn group_len() {
        let g = SuspiciousGroup {
            users: vec![UserId(0)],
            items: vec![ItemId(1), ItemId(2)],
            ridden_hot_items: vec![ItemId(9)],
        };
        assert_eq!(g.len(), 3, "ridden hot items not counted");
        assert!(!g.is_empty());
    }
}
