//! An immutable, query-optimized view over a [`DetectionResult`] — the
//! lookup surface an online service serves verdicts from.
//!
//! A [`DetectionResult`] is shaped for *reporting*: groups with sorted
//! member lists, plus global rankings. Answering "is user `u` risky?" from
//! it means scanning every group. A [`RiskView`] reindexes the same facts
//! into sorted `(id, verdict)` tables so point lookups are `O(log n)` and
//! allocation-free, and stamps the whole view with an **epoch** so a
//! concurrent reader can tell which generation of detection state answered
//! its query.
//!
//! The view is deliberately immutable: `ricd-serve` builds a fresh one
//! after each detection pass and swaps it in atomically, so queries never
//! observe a half-updated result (see DESIGN.md, "Online serving").

use crate::result::{DetectionResult, SuspiciousGroup};
use ricd_graph::{ItemId, UserId};
use serde::{Deserialize, Serialize};

/// The verdict for one user or item.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RiskVerdict {
    /// True if the node is in some detected group's suspicious set.
    pub flagged: bool,
    /// The node's risk score from the detection ranking (0.0 if unranked).
    pub score: f64,
    /// Index of the detected group the node belongs to, if flagged.
    pub group: Option<usize>,
}

impl RiskVerdict {
    /// The verdict for a node the detector has nothing on.
    pub fn clear() -> Self {
        Self::default()
    }
}

/// An epoch-stamped, immutable lookup table over one detection result.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RiskView {
    /// Which generation of detection state built this view. Epoch 0 is the
    /// empty pre-detection view; every rebuild increments it.
    epoch: u64,
    /// The detected groups, in result order (the `group` indices in the
    /// verdicts point into this).
    groups: Vec<SuspiciousGroup>,
    /// `(user, verdict)` sorted by user id.
    users: Vec<(UserId, RiskVerdict)>,
    /// `(item, verdict)` sorted by item id.
    items: Vec<(ItemId, RiskVerdict)>,
}

impl RiskView {
    /// The empty view (epoch 0): every lookup answers
    /// [`RiskVerdict::clear`].
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds the lookup tables from `result`, stamped with `epoch`.
    pub fn from_result(epoch: u64, result: &DetectionResult) -> Self {
        let mut users: Vec<(UserId, RiskVerdict)> = Vec::new();
        let mut items: Vec<(ItemId, RiskVerdict)> = Vec::new();
        for (gi, g) in result.groups.iter().enumerate() {
            for &u in &g.users {
                users.push((
                    u,
                    RiskVerdict {
                        flagged: true,
                        score: 0.0,
                        group: Some(gi),
                    },
                ));
            }
            for &v in &g.items {
                items.push((
                    v,
                    RiskVerdict {
                        flagged: true,
                        score: 0.0,
                        group: Some(gi),
                    },
                ));
            }
        }
        // A node in several groups keeps its first (lowest-index) group.
        users.sort_by_key(|&(u, _)| u);
        users.dedup_by_key(|&mut (u, _)| u);
        items.sort_by_key(|&(v, _)| v);
        items.dedup_by_key(|&mut (v, _)| v);
        // Attach ranking scores to the flagged tables.
        for &(u, s) in &result.ranked_users {
            if let Ok(i) = users.binary_search_by_key(&u, |&(id, _)| id) {
                users[i].1.score = s;
            }
        }
        for &(v, s) in &result.ranked_items {
            if let Ok(i) = items.binary_search_by_key(&v, |&(id, _)| id) {
                items[i].1.score = s;
            }
        }
        Self {
            epoch,
            groups: result.groups.clone(),
            users,
            items,
        }
    }

    /// Merges per-shard views into one combined view, stamped `epoch`.
    ///
    /// This is the degraded-query surface of the sharded serve tier: when a
    /// shard is down, the router answers from whatever live shard views it
    /// still holds. Halo replication means a group can be detected — in
    /// full, by the soundness argument in `ricd_graph::shard` — by several
    /// shards at once, so groups are deduplicated by their exact member
    /// sets (users + items); a node flagged by several views keeps the
    /// highest score any of them assigned, and its group index is rewritten
    /// to point into the merged group list. The merge is order-insensitive
    /// up to group numbering, which follows first appearance in `views`
    /// order (callers pass shards in shard-index order for determinism).
    pub fn merged(epoch: u64, views: &[&RiskView]) -> Self {
        let mut groups: Vec<SuspiciousGroup> = Vec::new();
        let mut users: Vec<(UserId, RiskVerdict)> = Vec::new();
        let mut items: Vec<(ItemId, RiskVerdict)> = Vec::new();
        for view in views {
            // Map this view's group indices into the merged list.
            let remap: Vec<usize> = view
                .groups
                .iter()
                .map(|g| {
                    match groups
                        .iter()
                        .position(|m| m.users == g.users && m.items == g.items)
                    {
                        Some(i) => i,
                        None => {
                            groups.push(g.clone());
                            groups.len() - 1
                        }
                    }
                })
                .collect();
            let rewrite = |mut v: RiskVerdict| {
                v.group = v.group.map(|gi| remap[gi]);
                v
            };
            for &(u, v) in &view.users {
                users.push((u, rewrite(v)));
            }
            for &(i, v) in &view.items {
                items.push((i, rewrite(v)));
            }
        }
        // A node flagged by several shards keeps its best-scored verdict
        // (ties broken toward the earliest shard's group assignment).
        fn collapse<K: Ord + Copy>(table: &mut Vec<(K, RiskVerdict)>) {
            table.sort_by(|a, b| {
                a.0.cmp(&b.0).then(
                    b.1.score
                        .partial_cmp(&a.1.score)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
            });
            table.dedup_by_key(|&mut (k, _)| k);
        }
        collapse(&mut users);
        collapse(&mut items);
        Self {
            epoch,
            groups,
            users,
            items,
        }
    }

    /// The view's generation stamp.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The verdict for `u` ([`RiskVerdict::clear`] if unknown).
    pub fn user(&self, u: UserId) -> RiskVerdict {
        match self.users.binary_search_by_key(&u, |&(id, _)| id) {
            Ok(i) => self.users[i].1,
            Err(_) => RiskVerdict::clear(),
        }
    }

    /// The verdict for `v` ([`RiskVerdict::clear`] if unknown).
    pub fn item(&self, v: ItemId) -> RiskVerdict {
        match self.items.binary_search_by_key(&v, |&(id, _)| id) {
            Ok(i) => self.items[i].1,
            Err(_) => RiskVerdict::clear(),
        }
    }

    /// The group a verdict's `group` index points to.
    pub fn group(&self, idx: usize) -> Option<&SuspiciousGroup> {
        self.groups.get(idx)
    }

    /// The detected groups behind this view.
    pub fn groups(&self) -> &[SuspiciousGroup] {
        &self.groups
    }

    /// Number of flagged users.
    pub fn num_flagged_users(&self) -> usize {
        self.users.len()
    }

    /// Number of flagged items.
    pub fn num_flagged_items(&self) -> usize {
        self.items.len()
    }

    /// All flagged users, sorted (the cleaned-index exclusion list).
    pub fn flagged_users(&self) -> Vec<UserId> {
        self.users.iter().map(|&(u, _)| u).collect()
    }

    /// All flagged items, sorted.
    pub fn flagged_items(&self) -> Vec<ItemId> {
        self.items.iter().map(|&(v, _)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> DetectionResult {
        DetectionResult {
            groups: vec![
                SuspiciousGroup {
                    users: vec![UserId(1), UserId(2)],
                    items: vec![ItemId(5)],
                    ridden_hot_items: vec![ItemId(0)],
                },
                SuspiciousGroup {
                    users: vec![UserId(7)],
                    items: vec![ItemId(5), ItemId(6)],
                    ridden_hot_items: vec![],
                },
            ],
            ranked_users: vec![(UserId(2), 9.5), (UserId(1), 3.0), (UserId(7), 1.0)],
            ranked_items: vec![(ItemId(5), 4.0), (ItemId(6), 2.0)],
            ..DetectionResult::default()
        }
    }

    #[test]
    fn empty_view_answers_clear() {
        let v = RiskView::empty();
        assert_eq!(v.epoch(), 0);
        assert_eq!(v.user(UserId(3)), RiskVerdict::clear());
        assert_eq!(v.item(ItemId(3)), RiskVerdict::clear());
        assert_eq!(v.num_flagged_users(), 0);
    }

    #[test]
    fn lookups_match_group_membership() {
        let view = RiskView::from_result(3, &result());
        assert_eq!(view.epoch(), 3);
        let u2 = view.user(UserId(2));
        assert!(u2.flagged);
        assert_eq!(u2.group, Some(0));
        assert!((u2.score - 9.5).abs() < 1e-12);
        let u7 = view.user(UserId(7));
        assert_eq!(u7.group, Some(1));
        assert!(!view.user(UserId(99)).flagged);
        let i6 = view.item(ItemId(6));
        assert!(i6.flagged);
        assert_eq!(i6.group, Some(1));
        assert!((i6.score - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shared_item_keeps_first_group() {
        let view = RiskView::from_result(1, &result());
        // ItemId(5) is in both groups; the view reports the first.
        assert_eq!(view.item(ItemId(5)).group, Some(0));
        assert_eq!(view.num_flagged_items(), 2, "5 deduplicated");
    }

    #[test]
    fn ridden_hot_items_stay_clear() {
        let view = RiskView::from_result(1, &result());
        assert!(!view.item(ItemId(0)).flagged, "victim, not suspect");
    }

    #[test]
    fn flagged_sets_are_sorted_unions() {
        let view = RiskView::from_result(1, &result());
        assert_eq!(view.flagged_users(), vec![UserId(1), UserId(2), UserId(7)]);
        assert_eq!(view.flagged_items(), vec![ItemId(5), ItemId(6)]);
    }

    #[test]
    fn group_accessor_resolves_verdict_indices() {
        let view = RiskView::from_result(1, &result());
        let g = view.group(view.user(UserId(7)).group.unwrap()).unwrap();
        assert!(g.users.contains(&UserId(7)));
        assert!(view.group(5).is_none());
    }

    #[test]
    fn merged_deduplicates_halo_replicated_groups() {
        // Two shards detect the same group (halo replication), one shard
        // also has a group of its own; the merge keeps each group once.
        let shared = SuspiciousGroup {
            users: vec![UserId(1), UserId(2)],
            items: vec![ItemId(5)],
            ridden_hot_items: vec![ItemId(0)],
        };
        let own = SuspiciousGroup {
            users: vec![UserId(9)],
            items: vec![ItemId(7)],
            ridden_hot_items: vec![],
        };
        let a = RiskView::from_result(
            4,
            &DetectionResult {
                groups: vec![shared.clone()],
                ranked_users: vec![(UserId(1), 2.0)],
                ..DetectionResult::default()
            },
        );
        let b = RiskView::from_result(
            4,
            &DetectionResult {
                groups: vec![own.clone(), shared.clone()],
                ranked_users: vec![(UserId(1), 5.0), (UserId(9), 1.0)],
                ..DetectionResult::default()
            },
        );
        let m = RiskView::merged(4, &[&a, &b]);
        assert_eq!(m.epoch(), 4);
        assert_eq!(m.groups().len(), 2, "shared group deduplicated");
        // User 1 keeps the best score across shards and points at the
        // merged index of the shared group (0: first appearance, via a).
        let u1 = m.user(UserId(1));
        assert!(u1.flagged);
        assert!((u1.score - 5.0).abs() < 1e-12);
        assert_eq!(u1.group, Some(0));
        // Shard b's own group was remapped past the shared one.
        let u9 = m.user(UserId(9));
        assert_eq!(u9.group, Some(1));
        assert_eq!(m.group(1).unwrap().users, own.users);
        assert_eq!(m.flagged_users(), vec![UserId(1), UserId(2), UserId(9)]);
        assert_eq!(m.flagged_items(), vec![ItemId(5), ItemId(7)]);
    }

    #[test]
    fn merged_of_single_view_preserves_lookups() {
        let v = RiskView::from_result(2, &result());
        let m = RiskView::merged(9, &[&v]);
        assert_eq!(m.epoch(), 9);
        assert_eq!(m.groups(), v.groups());
        assert_eq!(m.flagged_users(), v.flagged_users());
        assert_eq!(m.user(UserId(2)), v.user(UserId(2)));
    }

    #[test]
    fn merged_of_nothing_is_empty() {
        let m = RiskView::merged(3, &[]);
        assert_eq!(m.epoch(), 3);
        assert_eq!(m.num_flagged_users(), 0);
        assert!(m.groups().is_empty());
    }

    #[test]
    fn serde_round_trips() {
        use serde::{Deserialize, Serialize};
        let view = RiskView::from_result(2, &result());
        let back = RiskView::from_value(&view.to_value()).unwrap();
        assert_eq!(back, view);
    }
}
