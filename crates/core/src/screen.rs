//! The suspicious group screening module (Section V-B, module 2).
//!
//! Detection (Algorithm 2/3) is purely structural; screening applies the
//! *behavioral* characteristics from the Section IV analysis to each
//! candidate group, in two steps:
//!
//! **User behavior check** — an abnormal user (crowd worker): (1) clicks
//! some ordinary group item at least `T_click` times (the attack clicks);
//! (2) clicks hot items far less — an average of `< hot_avg_max` (paper:
//! "extremely small (< 4)"). Users failing either rule are normal shoppers
//! who wandered into the dense region (e.g. the `u₁` of Fig 5, whose clicks
//! on `i₂` stay below `T_click`) and are removed.
//!
//! **Item behavior verification** — among the group's items: globally hot
//! items are the *victims* being ridden, not abnormal outputs; they move to
//! the group's `ridden_hot_items`. An ordinary item survives as a target
//! only if at least `min_target_support` of the group's (surviving) users
//! clicked it `T_click`+ times — an item whose in-group clicks are all light
//! is camouflage (the `i₁` of Fig 6, linked only by disguise edges), and is
//! removed.
//!
//! After both steps, users left without any surviving target are dropped,
//! groups are re-split along heavy edges into per-seller tasks, and a group
//! must retain at least `min_group_users` workers and `min_group_targets`
//! targets to be reported (the paper's property 4b: "explicitly limit the
//! detected group's size to avoid the misjudgment of group-buying
//! phenomenon" — a couple of shoppers re-clicking the same promotion is
//! risk-control's job, not a crowdsourced campaign).

use crate::params::{RicdParams, ScreeningMode};
use crate::result::SuspiciousGroup;
use ricd_graph::{BipartiteGraph, ItemId, UserId};

/// Counters describing a screening pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScreeningStats {
    /// Users removed by the user behavior check.
    pub users_removed: usize,
    /// Items reclassified as ridden hot items.
    pub hot_items_reclassified: usize,
    /// Ordinary items removed as camouflage/disguise.
    pub items_removed: usize,
    /// Groups dropped entirely.
    pub groups_dropped: usize,
}

/// Screens every group in place according to `params.screening`.
pub fn screen_groups(
    g: &BipartiteGraph,
    groups: Vec<SuspiciousGroup>,
    params: &RicdParams,
) -> (Vec<SuspiciousGroup>, ScreeningStats) {
    let mut stats = ScreeningStats::default();
    if params.screening == ScreeningMode::None {
        return (groups, stats);
    }
    // Hot flags once per graph: per-item total-click scans inside the
    // per-user loops would make screening O(groups x users x deg).
    let hot: Vec<bool> = g
        .all_item_total_clicks()
        .into_iter()
        .map(|t| t >= params.t_hot)
        .collect();
    let mut out = Vec::with_capacity(groups.len());
    for mut group in groups {
        user_behavior_check(g, &hot, &mut group, params, &mut stats);
        if params.screening == ScreeningMode::Full {
            item_behavior_verification(g, &hot, &mut group, params, &mut stats);
            drop_disconnected_users(g, &mut group, params, &mut stats);
            // Distinct seller tasks often share ridden hot items, which glue
            // their structures into one connected component during
            // detection. Once hot items and camouflage are gone, the real
            // group boundary is connectivity through *heavy* edges —
            // re-split so each output group is one attack task (the
            // granularity of the paper's `g = {g₁…gₙ}` and case study).
            let splits = split_by_heavy_edges(g, &group, params);
            if splits.is_empty() {
                stats.groups_dropped += 1;
            }
            for split in splits {
                // Property 4b: a reportable group needs real group scale.
                if split.users.len() >= params.min_group_users
                    && split.items.len() >= params.min_group_targets
                {
                    out.push(split);
                } else {
                    stats.groups_dropped += 1;
                }
            }
            continue;
        }
        if group.users.len() >= params.min_group_users && !group.items.is_empty() {
            out.push(group);
        } else {
            stats.groups_dropped += 1;
        }
    }
    (out, stats)
}

/// Splits a screened group into connected components over its heavy
/// (`clicks ≥ T_click`) user–item edges. Ridden hot items are attributed to
/// every split whose users clicked them.
fn split_by_heavy_edges(
    g: &BipartiteGraph,
    group: &SuspiciousGroup,
    params: &RicdParams,
) -> Vec<SuspiciousGroup> {
    // Union-find over local indices: users then items.
    let nu = group.users.len();
    let n = nu + group.items.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let item_local: std::collections::HashMap<ItemId, usize> = group
        .items
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, nu + i))
        .collect();
    for (ui, &u) in group.users.iter().enumerate() {
        for (v, c) in g.user_neighbors(u) {
            if c >= params.t_click {
                if let Some(&vi) = item_local.get(&v) {
                    let (a, b) = (find(&mut parent, ui), find(&mut parent, vi));
                    parent[a] = b;
                }
            }
        }
    }
    let mut splits: std::collections::HashMap<usize, SuspiciousGroup> =
        std::collections::HashMap::new();
    for (ui, &u) in group.users.iter().enumerate() {
        splits
            .entry(find(&mut parent, ui))
            .or_default()
            .users
            .push(u);
    }
    for (ii, &v) in group.items.iter().enumerate() {
        splits
            .entry(find(&mut parent, nu + ii))
            .or_default()
            .items
            .push(v);
    }
    let mut out: Vec<SuspiciousGroup> = splits.into_values().collect();
    // Deterministic order: by first user id.
    out.sort_by_key(|s| (s.users.first().copied(), s.items.first().copied()));
    for s in &mut out {
        // Attribute each ridden hot item to the splits whose users touch it.
        s.ridden_hot_items = group
            .ridden_hot_items
            .iter()
            .copied()
            .filter(|&h| s.users.iter().any(|&u| g.clicks(u, h).is_some()))
            .collect();
    }
    out
}

/// True if `u` exhibits the crowd-worker click signature.
///
/// Characteristic (1) is checked *within the group* — some ordinary group
/// item carries ≥ `T_click` of `u`'s clicks. Characteristic (2) — "the
/// average number of clicks of hot items is extremely small (< 4)" — is
/// checked over `u`'s **whole click record**, exactly like the Section IV
/// Table III/IV analysis: an experienced worker's organic history keeps the
/// global hot average low, while a genuine hot-item fan (Table IV's user:
/// 19, 4, … clicks on hot items) exceeds it.
fn user_is_suspicious(
    g: &BipartiteGraph,
    hot: &[bool],
    u: UserId,
    group_items: &[ItemId],
    params: &RicdParams,
) -> bool {
    let has_heavy_ordinary = group_items
        .iter()
        .any(|&v| !hot[v.index()] && g.clicks(u, v).is_some_and(|c| c >= params.t_click));
    if !has_heavy_ordinary {
        return false;
    }
    let mut hot_clicks = 0u64;
    let mut hot_count = 0u64;
    for (v, c) in g.user_neighbors(u) {
        if hot[v.index()] {
            hot_clicks += c as u64;
            hot_count += 1;
        }
    }
    // Characteristic (2): hot items, if clicked at all, are clicked lightly.
    hot_count == 0 || (hot_clicks as f64 / hot_count as f64) < params.hot_avg_max
}

fn user_behavior_check(
    g: &BipartiteGraph,
    hot: &[bool],
    group: &mut SuspiciousGroup,
    params: &RicdParams,
    stats: &mut ScreeningStats,
) {
    let items = group.items.clone();
    let before = group.users.len();
    group
        .users
        .retain(|&u| user_is_suspicious(g, hot, u, &items, params));
    stats.users_removed += before - group.users.len();
}

fn item_behavior_verification(
    g: &BipartiteGraph,
    hot: &[bool],
    group: &mut SuspiciousGroup,
    params: &RicdParams,
    stats: &mut ScreeningStats,
) {
    let users = group.users.clone();
    let mut kept = Vec::with_capacity(group.items.len());
    for &v in &group.items {
        if hot[v.index()] {
            group.ridden_hot_items.push(v);
            stats.hot_items_reclassified += 1;
            continue;
        }
        // Coincidence of heavy clickers: how many of the group's surviving
        // (abnormal) users hammer this item?
        let support = users
            .iter()
            .filter(|&&u| g.clicks(u, v).is_some_and(|c| c >= params.t_click))
            .count();
        if support >= params.min_target_support {
            kept.push(v);
        } else {
            stats.items_removed += 1;
        }
    }
    group.items = kept;
    group.ridden_hot_items.sort_unstable();
    group.ridden_hot_items.dedup();
}

/// A user whose heavy edges all pointed at removed items no longer belongs.
fn drop_disconnected_users(
    g: &BipartiteGraph,
    group: &mut SuspiciousGroup,
    params: &RicdParams,
    stats: &mut ScreeningStats,
) {
    let items = group.items.clone();
    let before = group.users.len();
    group.users.retain(|&u| {
        items
            .iter()
            .any(|&v| g.clicks(u, v).is_some_and(|c| c >= params.t_click))
    });
    stats.users_removed += before - group.users.len();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::GraphBuilder;

    /// Builds the Fig 5 / Fig 6 situation:
    /// * i0 — globally hot item ridden by the group;
    /// * i1, i2 — target items hammered by workers u0, u1, u2;
    /// * u3 — a normal shopper who clicked i0 a lot and i1 once;
    /// * i3 — a camouflage item clicked once by a single worker.
    fn scenario() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        // Make i0 hot: 1000+ background clicks.
        for u in 100..1100u32 {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        // Workers: light on hot, heavy on targets, one camouflage click.
        for u in 0..3u32 {
            b.add_click(UserId(u), ItemId(0), 1);
            b.add_click(UserId(u), ItemId(1), 14);
            b.add_click(UserId(u), ItemId(2), 13);
        }
        b.add_click(UserId(0), ItemId(3), 1); // camouflage
                                              // Normal shopper: heavy on hot, light on the target.
        b.add_click(UserId(3), ItemId(0), 19);
        b.add_click(UserId(3), ItemId(1), 1);
        b.build()
    }

    fn group() -> SuspiciousGroup {
        SuspiciousGroup {
            users: vec![UserId(0), UserId(1), UserId(2), UserId(3)],
            items: vec![ItemId(0), ItemId(1), ItemId(2), ItemId(3)],
            ridden_hot_items: vec![],
        }
    }

    fn params() -> RicdParams {
        RicdParams {
            t_hot: 1_000,
            t_click: 12,
            ..RicdParams::default()
        }
    }

    #[test]
    fn full_screening_keeps_workers_and_targets() {
        let g = scenario();
        let (out, stats) = screen_groups(&g, vec![group()], &params());
        assert_eq!(out.len(), 1);
        let grp = &out[0];
        assert_eq!(
            grp.users,
            vec![UserId(0), UserId(1), UserId(2)],
            "normal shopper removed"
        );
        assert_eq!(
            grp.items,
            vec![ItemId(1), ItemId(2)],
            "hot + camouflage removed"
        );
        assert_eq!(grp.ridden_hot_items, vec![ItemId(0)]);
        assert_eq!(stats.users_removed, 1);
        assert_eq!(stats.hot_items_reclassified, 1);
        assert_eq!(stats.items_removed, 1);
    }

    #[test]
    fn mode_none_passes_through() {
        let g = scenario();
        let p = RicdParams {
            screening: ScreeningMode::None,
            ..params()
        };
        let (out, stats) = screen_groups(&g, vec![group()], &p);
        assert_eq!(out[0], group());
        assert_eq!(stats, ScreeningStats::default());
    }

    #[test]
    fn mode_user_only_skips_item_verification() {
        let g = scenario();
        let p = RicdParams {
            screening: ScreeningMode::UserCheckOnly,
            ..params()
        };
        let (out, _) = screen_groups(&g, vec![group()], &p);
        assert_eq!(out[0].users, vec![UserId(0), UserId(1), UserId(2)]);
        // Items untouched, including the hot one — that's why RICD-I's
        // precision trails full RICD (Table VI).
        assert_eq!(out[0].items, group().items);
        assert!(out[0].ridden_hot_items.is_empty());
    }

    #[test]
    fn heavy_hot_clicker_fails_user_check() {
        // A user whose only heavy clicks are on the hot item is a fan, not a
        // worker.
        let g = scenario();
        let p = params();
        let hot: Vec<bool> = g
            .all_item_total_clicks()
            .into_iter()
            .map(|t| t >= p.t_hot)
            .collect();
        assert!(!user_is_suspicious(
            &g,
            &hot,
            UserId(3),
            &[ItemId(0), ItemId(1)],
            &p
        ));
        assert!(user_is_suspicious(
            &g,
            &hot,
            UserId(0),
            &[ItemId(0), ItemId(1)],
            &p
        ));
    }

    #[test]
    fn group_needs_two_workers() {
        // Only one worker → not a group attack → dropped.
        let mut b = GraphBuilder::new();
        for u in 100..1100u32 {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        b.add_click(UserId(0), ItemId(0), 1);
        b.add_click(UserId(0), ItemId(1), 20);
        let g = b.build();
        let grp = SuspiciousGroup {
            users: vec![UserId(0)],
            items: vec![ItemId(0), ItemId(1)],
            ridden_hot_items: vec![],
        };
        let (out, stats) = screen_groups(&g, vec![grp], &params());
        assert!(out.is_empty());
        assert_eq!(stats.groups_dropped, 1);
    }

    #[test]
    fn camouflage_item_needs_support() {
        // Items need min_target_support heavy clickers to survive.
        let g = scenario();
        let mut p = params();
        p.min_target_support = 4;
        let (out, _) = screen_groups(&g, vec![group()], &p);
        // Both targets only have 3 heavy clickers → everything pruned → the
        // group dies.
        assert!(out.is_empty());
    }

    #[test]
    fn property_4b_group_size_floor() {
        // The same valid group dies when the analyst raises the group-size
        // floor above its scale (property 4b).
        let g = scenario();
        let mut p = params();
        p.min_group_users = 4;
        let (out, _) = screen_groups(&g, vec![group()], &p);
        assert!(out.is_empty());
        let mut p = params();
        p.min_group_targets = 3;
        let (out, _) = screen_groups(&g, vec![group()], &p);
        assert!(out.is_empty());
    }

    #[test]
    fn users_without_surviving_targets_dropped() {
        let mut b = GraphBuilder::new();
        for u in 100..1100u32 {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        // u0, u1, u2 hammer targets i1 and i4; u3 hammers only i2, which
        // will be removed (support 1).
        for u in 0..3u32 {
            b.add_click(UserId(u), ItemId(1), 14);
            b.add_click(UserId(u), ItemId(4), 14);
        }
        b.add_click(UserId(3), ItemId(2), 14);
        let g = b.build();
        let grp = SuspiciousGroup {
            users: vec![UserId(0), UserId(1), UserId(2), UserId(3)],
            items: vec![ItemId(1), ItemId(2), ItemId(4)],
            ridden_hot_items: vec![],
        };
        let (out, _) = screen_groups(&g, vec![grp], &params());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].users, vec![UserId(0), UserId(1), UserId(2)]);
        assert_eq!(out[0].items, vec![ItemId(1), ItemId(4)]);
    }
}
