//! The sharded detection runtime.
//!
//! Runs Algorithm 2/3 as a fan-out over the shard plan of
//! [`ricd_graph::shard`]: a sequential degree **pre-filter**, the planner's
//! component/hash decomposition, one *local* pruning fixpoint per shard on
//! the worker pool (each shard a coarse task with the PR 1 panic-isolation
//! contract), a **reconciliation** pass over the hash-split giants, and a
//! merge that reconstitutes the exact unsharded group output.
//!
//! # Why the result is exactly the unsharded one
//!
//! Every removal rule (Lemma 1 degree bound, Lemma 2 common-neighbor bound)
//! is *monotone*: counts only fall as vertices disappear, so the extraction
//! fixpoint is unique and removal-order-independent. The sharded path only
//! ever performs **sound** removals — each removed vertex provably fails a
//! bound against a *superset* of the then-current global alive set
//! (supersets only inflate counts, so failing against one implies failing
//! globally):
//!
//! * pre-filter — plain degree bounds on the live view;
//! * exact shards — whole connected components: the local fixpoint *is*
//!   the global one there (bicliques cannot span components);
//! * hash shards — owned users and interior items have **exact** local
//!   counts (boundary replication + halo, see `ricd_graph::shard`);
//!   boundary items and halo users are pinned and never removed locally;
//! * reconciliation — a full local fixpoint over what survives of the
//!   giant components, which by uniqueness lands on the global fixpoint.
//!
//! Since all removals are sound and the final pass runs the real rules to
//! convergence, the surviving vertex set — and therefore the component
//! split, the groups, and every downstream risk score — is identical to
//! the unsharded run. The differential proptests and the
//! `shard_equivalence` integration test enforce this end to end.
//!
//! # Why it is faster
//!
//! Beyond running shards concurrently on the pool, every square-pruning
//! check goes through the per-anchor kernel dispatch of [`crate::kernel`]:
//! cold and sparse anchors use the early-exit wedge survival test
//! ([`ricd_graph::twohop::user_has_qualified_neighbors`]) — proving a dense
//! survivor *keeps* its `k` qualified partners needs only a prefix of its
//! wedge scan, cheapest adjacency lists first — while anchors whose
//! cheap-first ordering ends in registered hot vertices hand that hot
//! suffix to the blocked SWAR kernel
//! ([`ricd_graph::twohop::blocked_user_has_qualified_neighbors`]), which
//! replaces the per-wedge hash-free counter walk over an ultra-popular
//! adjacency list with 64-way `AND`+popcount words against the
//! [`ricd_graph::twohop::HubBitmaps`] registry. Dispatch never changes an
//! answer (the kernels are differentially proven equivalent), so it never
//! changes a fixpoint — only how many cache lines each query costs.

use crate::detect::{DetectedGroups, Seeds};
use crate::extract::ExtractionStats;
use crate::kernel::{self, KernelSelection, KernelTally};
use crate::params::{KernelPolicy, RicdParams};
use crate::result::SuspiciousGroup;
use ricd_engine::{EngineError, WorkerPool};
use ricd_graph::components::connected_components;
use ricd_graph::shard::{plan_shards, Shard, ShardOptions};
use ricd_graph::twohop::{HubBitmaps, KernelScratch};
use ricd_graph::{
    BipartiteGraph, CompactSubgraph, CompactView, GraphView, ItemId, NeighborView, UserId,
};
use ricd_obs::MetricsRegistry;

/// Sharding knobs for [`detect_groups_sharded`] /
/// [`crate::pipeline::RicdPipeline::run_sharded`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardConfig {
    /// Target shard count. The per-shard user cap is derived as
    /// `⌈alive users after pre-filter / shards⌉`. Default: twice the pool's
    /// worker count (over-decomposition keeps the pool busy when shard
    /// costs are skewed).
    pub shards: Option<usize>,
    /// Explicit per-shard owned-user cap; overrides `shards` when set.
    pub max_users: Option<usize>,
    /// Which survival kernels the local fixpoints may dispatch to.
    /// [`KernelSelection::Auto`] (default) enables the per-anchor cost
    /// model; [`KernelSelection::WedgeOnly`] pins the PR 7 wedge counter
    /// for equivalence baselines and perf comparisons.
    pub kernel: KernelSelection,
}

impl ShardConfig {
    /// Derives the effective owned-user cap for a view with `alive_users`.
    fn effective_max_users(&self, alive_users: usize, pool: &WorkerPool) -> usize {
        if let Some(m) = self.max_users {
            return m.max(1);
        }
        let shards = self.shards.unwrap_or(pool.workers() * 2).max(1);
        alive_users.div_ceil(shards).max(1)
    }
}

/// Why a sharded detection run could not complete.
#[derive(Debug)]
pub enum ShardAbort {
    /// The budget deadline tripped at a shard boundary.
    DeadlineExceeded,
    /// A shard task kept failing past the pool's retry budget.
    Engine(EngineError),
}

impl std::fmt::Display for ShardAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardAbort::DeadlineExceeded => write!(f, "deadline exceeded during shard phase"),
            ShardAbort::Engine(e) => write!(f, "shard task failed persistently: {e}"),
        }
    }
}

/// Outcome of one shard task (kept `Send`-cheap: parent-id removal lists).
enum ShardOutcome {
    Done {
        removed_users: Vec<UserId>,
        removed_items: Vec<ItemId>,
        stats: LocalPruneStats,
    },
    DeadlineExceeded,
}

/// Sequential worklist core pre-filter: Lemma 1 degree bounds iterated to
/// a fixpoint, `O(E)` amortized. This is what collapses the organic long
/// tail *before* planning, so shards carve up only the structure-bearing
/// survivors.
fn core_prefilter(view: &mut GraphView<'_>, params: &RicdParams) -> (usize, usize) {
    let user_bound = params.user_degree_bound();
    let item_bound = params.item_degree_bound();
    let mut user_queue: Vec<UserId> = view
        .users()
        .filter(|&u| view.user_degree(u) < user_bound)
        .collect();
    let mut item_queue: Vec<ItemId> = view
        .items()
        .filter(|&v| view.item_degree(v) < item_bound)
        .collect();
    let (mut ru, mut ri) = (0usize, 0usize);
    while !user_queue.is_empty() || !item_queue.is_empty() {
        let mut next_items: Vec<ItemId> = Vec::new();
        for u in user_queue.drain(..) {
            if !view.user_alive(u) {
                continue;
            }
            // Neighbors collected before the removal mutates the view.
            let neighbors: Vec<ItemId> = view.user_neighbors(u).map(|(v, _)| v).collect();
            view.remove_user(u);
            ru += 1;
            for v in neighbors {
                if view.item_degree(v) < item_bound {
                    next_items.push(v);
                }
            }
        }
        item_queue.append(&mut next_items);
        let mut next_users: Vec<UserId> = Vec::new();
        for v in item_queue.drain(..) {
            if !view.item_alive(v) {
                continue;
            }
            let neighbors: Vec<UserId> = view.item_neighbors(v).map(|(u, _)| u).collect();
            view.remove_item(v);
            ri += 1;
            for u in neighbors {
                if view.user_degree(u) < user_bound {
                    next_users.push(u);
                }
            }
        }
        user_queue.append(&mut next_users);
    }
    (ru, ri)
}

/// Counters from one local fixpoint.
#[derive(Clone, Copy, Debug, Default)]
struct LocalPruneStats {
    core_removed_users: usize,
    core_removed_items: usize,
    square_removed_users: usize,
    square_removed_items: usize,
    rounds: usize,
    /// Survival queries per kernel, for the `extract.kernel_*` counters.
    kernels: KernelTally,
    /// Bytes of the hub-bitmap registry this fixpoint built (0 when the
    /// kernel selection or the degree distribution yields no hubs).
    hub_bitmap_bytes: usize,
}

/// What [`prune_local`] needs on top of [`NeighborView`]: removals. Both
/// the dense [`GraphView`] and the compact [`CompactView`] satisfy it, so
/// the same fixpoint runs on either representation — which is exactly what
/// the differential suites compare.
trait PruneView: NeighborView {
    fn remove_user(&mut self, u: UserId);
    fn remove_item(&mut self, v: ItemId);
}

impl PruneView for GraphView<'_> {
    fn remove_user(&mut self, u: UserId) {
        GraphView::remove_user(self, u);
    }
    fn remove_item(&mut self, v: ItemId) {
        GraphView::remove_item(self, v);
    }
}

impl PruneView for CompactView<'_> {
    fn remove_user(&mut self, u: UserId) {
        CompactView::remove_user(self, u);
    }
    fn remove_item(&mut self, v: ItemId) {
        CompactView::remove_item(self, v);
    }
}

/// The local pruning fixpoint: core + square pruning restricted to
/// removable vertices (`None` mask = everything), run to convergence.
///
/// For hash shards, boundary items and halo users are pinned via the
/// masks; every local removal is then globally sound (module docs). For
/// exact shards and reconciliation the masks are `None` and this computes
/// the true fixpoint of the local graph. Each square test goes through the
/// per-anchor kernel dispatch of [`crate::kernel`], monomorphized over the
/// view: cold and sparse anchors keep the early-exit wedge counter (O(1)
/// per wedge, scratch counters cache-resident in the renumbered compact id
/// space), while anchors whose adjacency ends in registered hubs switch to
/// the blocked SWAR kernel. The hub registry is built **once**, after the
/// first CorePruning fixpoint (when the cheap degree rules have already
/// collapsed the long tail): removals are monotone for the rest of the
/// fixpoint, so the alive-at-build snapshot stays a superset of every
/// later candidate set and the stale bitmaps keep answering exactly
/// (`twohop::HubBitmaps` staleness contract).
fn prune_local<V: PruneView>(
    view: &mut V,
    removable_user: Option<&[bool]>,
    removable_item: Option<&[bool]>,
    params: &RicdParams,
    kernel_sel: KernelSelection,
) -> LocalPruneStats {
    let num_users = view.num_users();
    let num_items = view.num_items();
    let user_bound = params.user_degree_bound();
    let item_bound = params.item_degree_bound();
    let user_common = params.user_common_bound();
    let item_common = params.item_common_bound();
    let can_remove_user = |i: usize| removable_user.is_none_or(|m| m[i]);
    let can_remove_item = |i: usize| removable_item.is_none_or(|m| m[i]);
    let mut uscratch = KernelScratch::new(num_users);
    let mut iscratch = KernelScratch::new(num_items);
    let policy = KernelPolicy::default();
    // `None` under WedgeOnly: the dispatcher without a registry (and with
    // sorted disabled by the default policy) *is* the wedge kernel.
    let mut hubs: Option<HubBitmaps> = None;
    let mut stats = LocalPruneStats::default();

    loop {
        stats.rounds += 1;
        // CorePruning over removable vertices, to its own fixpoint.
        loop {
            let mut removed = 0;
            for u in (0..num_users as u32).map(UserId) {
                if can_remove_user(u.index())
                    && view.user_alive(u)
                    && view.user_degree(u) < user_bound
                {
                    view.remove_user(u);
                    removed += 1;
                    stats.core_removed_users += 1;
                }
            }
            for v in (0..num_items as u32).map(ItemId) {
                if can_remove_item(v.index())
                    && view.item_alive(v)
                    && view.item_degree(v) < item_bound
                {
                    view.remove_item(v);
                    removed += 1;
                    stats.core_removed_items += 1;
                }
            }
            if removed == 0 {
                break;
            }
        }
        if stats.rounds == 1 && matches!(kernel_sel, KernelSelection::Auto) {
            let h = kernel::build_hubs(view, &policy);
            stats.hub_bitmap_bytes = h.heap_bytes();
            hubs = Some(h);
        }
        // SquarePruning over removable vertices; immediate removals are
        // sound (monotonicity), and order does not affect the fixpoint.
        let mut square_removed = 0;
        for u in (0..num_users as u32).map(UserId) {
            if !can_remove_user(u.index()) || !view.user_alive(u) {
                continue;
            }
            // Definition 4 counts `u` itself when deg(u) clears the bound.
            let selfq = usize::from(view.user_degree(u) as u32 >= user_common);
            let need = params.k1.saturating_sub(selfq);
            if !kernel::user_survives(
                view,
                hubs.as_ref(),
                &policy,
                u,
                user_common,
                need,
                &mut uscratch,
                &mut stats.kernels,
            ) {
                view.remove_user(u);
                square_removed += 1;
                stats.square_removed_users += 1;
            }
        }
        for v in (0..num_items as u32).map(ItemId) {
            if !can_remove_item(v.index()) || !view.item_alive(v) {
                continue;
            }
            let selfq = usize::from(view.item_degree(v) as u32 >= item_common);
            let need = params.k2.saturating_sub(selfq);
            if !kernel::item_survives(
                view,
                hubs.as_ref(),
                &policy,
                v,
                item_common,
                need,
                &mut iscratch,
                &mut stats.kernels,
            ) {
                view.remove_item(v);
                square_removed += 1;
                stats.square_removed_items += 1;
            }
        }
        if square_removed == 0 {
            return stats;
        }
    }
}

/// Marks which local vertices a hash shard may remove: owned users and
/// interior items (items whose parent id is *not* boundary).
fn hash_shard_permissions(
    user_map: &[UserId],
    item_map: &[ItemId],
    shard: &Shard,
) -> (Vec<bool>, Vec<bool>) {
    let owned: Vec<bool> = user_map
        .iter()
        .map(|p| shard.users.binary_search(p).is_ok())
        .collect();
    let interior: Vec<bool> = item_map
        .iter()
        .map(|p| shard.boundary_items.binary_search(p).is_err())
        .collect();
    (owned, interior)
}

/// One shard task: build the **compact** local subgraph (delta-encoded
/// adjacency, no click weights — the pruning rules never read them) and
/// run its local fixpoint over alive bitmaps. Exact shards prune
/// everything; hash shards pin boundary items and halo users.
fn process_shard(
    g: &BipartiteGraph,
    shard: &Shard,
    params: &RicdParams,
    kernel_sel: KernelSelection,
) -> (Vec<UserId>, Vec<ItemId>, LocalPruneStats) {
    let (sub, owned, interior) = if shard.exact {
        let sub =
            CompactSubgraph::extract(g, shard.users.iter().copied(), shard.items.iter().copied());
        (sub, None, None)
    } else {
        let scope_users = shard.users.iter().chain(shard.halo_users.iter()).copied();
        let sub = CompactSubgraph::extract(g, scope_users, shard.items.iter().copied());
        let (owned, interior) = hash_shard_permissions(&sub.user_map, &sub.item_map, shard);
        (sub, Some(owned), Some(interior))
    };
    let mut view = CompactView::full(&sub.graph);
    let stats = prune_local(
        &mut view,
        owned.as_deref(),
        interior.as_deref(),
        params,
        kernel_sel,
    );
    let removed_users = sub
        .user_map
        .iter()
        .enumerate()
        .filter(|&(l, _)| owned.as_ref().is_none_or(|m| m[l]) && !view.user_alive(UserId(l as u32)))
        .map(|(_, &p)| p)
        .collect();
    let removed_items = sub
        .item_map
        .iter()
        .enumerate()
        .filter(|&(l, _)| {
            interior.as_ref().is_none_or(|m| m[l]) && !view.item_alive(ItemId(l as u32))
        })
        .map(|(_, &p)| p)
        .collect();
    (removed_users, removed_items, stats)
}

/// Sharded Algorithm 2: identical group output to
/// [`crate::detect::detect_groups_with`], computed shard-by-shard.
///
/// `deadline_exceeded` is polled at the pre-filter, shard, and
/// reconciliation boundaries; tripping it returns
/// [`ShardAbort::DeadlineExceeded`] so the pipeline can degrade exactly as
/// the unsharded path does.
pub fn detect_groups_sharded(
    g: &BipartiteGraph,
    seeds: &Seeds,
    params: &RicdParams,
    pool: &WorkerPool,
    cfg: &ShardConfig,
    deadline_exceeded: &(dyn Fn() -> bool + Sync),
    metrics: Option<&MetricsRegistry>,
) -> Result<DetectedGroups, ShardAbort> {
    let mut view = crate::detect::starting_view(g, seeds);
    let mut stats = ExtractionStats::default();

    // Phase 0: sequential degree pre-filter.
    let (pre_users, pre_items) = core_prefilter(&mut view, params);
    stats.core_removed_users += pre_users;
    stats.core_removed_items += pre_items;
    if let Some(m) = metrics {
        m.inc_by("shard.prefilter_removed_users", pre_users as u64);
        m.inc_by("shard.prefilter_removed_items", pre_items as u64);
    }
    if deadline_exceeded() {
        return Err(ShardAbort::DeadlineExceeded);
    }

    // Phase timings: one duration histogram per phase, so sharded bench
    // rows can show where the wall-clock goes (observed in nanoseconds;
    // BENCH_extract.json sums them per run).
    let phase_clock = |t0: Option<std::time::Duration>, name: &str| {
        if let (Some(m), Some(t0)) = (metrics, t0) {
            m.duration_histogram(name)
                .observe_duration(m.clock().now().saturating_sub(t0));
        }
    };
    let phase_start = || metrics.map(|m| m.clock().now());

    // Phase 1: plan.
    let t_plan = phase_start();
    let max_users = cfg.effective_max_users(view.alive_users(), pool);
    let plan = plan_shards(&view, &ShardOptions::with_max_users(max_users));
    phase_clock(t_plan, "shard.plan_nanos");
    if let Some(m) = metrics {
        // Gauge, not counter: the pool size actually executing the shard
        // fan-out, so benches and post-mortems can see the real
        // parallelism of a run instead of assuming one worker.
        m.gauge("shard.workers").set(pool.workers() as i64);
        m.inc_by("shard.planned", plan.shards.len() as u64);
        m.inc_by("shard.exact", plan.stats.exact_shards as u64);
        m.inc_by("shard.hash", plan.stats.hash_shards as u64);
        m.inc_by("shard.giant_components", plan.stats.giant_components as u64);
        m.inc_by("shard.replicated_items", plan.stats.replicated_items as u64);
        m.inc_by("shard.halo_users", plan.stats.halo_users as u64);
    }

    // Phase 2: per-shard local fixpoints on the pool, biggest first so the
    // tail of the round is short.
    let t_prune = phase_start();
    let mut order: Vec<usize> = (0..plan.shards.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(plan.shards[i].cost_estimate()));
    let shard_hist = metrics.map(|m| (m.clone(), m.duration_histogram("shard.shard_nanos")));
    let outcomes = pool
        .try_run_tasks(order.len(), |slot| {
            if deadline_exceeded() {
                return ShardOutcome::DeadlineExceeded;
            }
            let shard = &plan.shards[order[slot]];
            let started = shard_hist.as_ref().map(|(m, _)| m.clock().now());
            let (removed_users, removed_items, stats) = process_shard(g, shard, params, cfg.kernel);
            if let (Some((m, h)), Some(t0)) = (&shard_hist, started) {
                h.observe_duration(m.clock().now().saturating_sub(t0));
            }
            ShardOutcome::Done {
                removed_users,
                removed_items,
                stats,
            }
        })
        .map_err(ShardAbort::Engine)?;

    let mut deadline_tripped = false;
    for outcome in outcomes {
        match outcome {
            ShardOutcome::Done {
                removed_users,
                removed_items,
                stats: shard_stats,
            } => {
                stats.rounds = stats.rounds.max(shard_stats.rounds);
                stats.core_removed_users += shard_stats.core_removed_users;
                stats.core_removed_items += shard_stats.core_removed_items;
                stats.square_removed_users += shard_stats.square_removed_users;
                stats.square_removed_items += shard_stats.square_removed_items;
                stats.absorb_kernels(shard_stats.kernels);
                // Max, not sum: registries are per-fixpoint and freed when
                // it ends, so the gauge reports peak working-set bytes.
                stats.hub_bitmap_bytes = stats.hub_bitmap_bytes.max(shard_stats.hub_bitmap_bytes);
                for u in removed_users {
                    view.remove_user(u);
                }
                for v in removed_items {
                    view.remove_item(v);
                }
            }
            ShardOutcome::DeadlineExceeded => deadline_tripped = true,
        }
    }
    phase_clock(t_prune, "shard.prune_nanos");
    if deadline_tripped || deadline_exceeded() {
        return Err(ShardAbort::DeadlineExceeded);
    }

    // Phase 3: reconciliation over the hash-split giants — the local
    // fixpoint of their survivors, reaching the exact global fixpoint.
    let t_recon = phase_start();
    if plan.needs_reconciliation() {
        let survivors_u = plan
            .giant_users
            .iter()
            .copied()
            .filter(|&u| view.user_alive(u));
        let survivors_i = plan
            .giant_items
            .iter()
            .copied()
            .filter(|&v| view.item_alive(v));
        let sub = CompactSubgraph::extract(g, survivors_u, survivors_i);
        let mut local = CompactView::full(&sub.graph);
        let recon = prune_local(&mut local, None, None, params, cfg.kernel);
        stats.rounds += recon.rounds;
        stats.core_removed_users += recon.core_removed_users;
        stats.core_removed_items += recon.core_removed_items;
        stats.square_removed_users += recon.square_removed_users;
        stats.square_removed_items += recon.square_removed_items;
        stats.absorb_kernels(recon.kernels);
        stats.hub_bitmap_bytes = stats.hub_bitmap_bytes.max(recon.hub_bitmap_bytes);
        let mut reconciled = (0usize, 0usize);
        for (l, &parent) in sub.user_map.iter().enumerate() {
            if !local.user_alive(UserId(l as u32)) {
                view.remove_user(parent);
                reconciled.0 += 1;
            }
        }
        for (l, &parent) in sub.item_map.iter().enumerate() {
            if !local.item_alive(ItemId(l as u32)) {
                view.remove_item(parent);
                reconciled.1 += 1;
            }
        }
        if let Some(m) = metrics {
            m.inc_by("shard.reconcile_users", reconciled.0 as u64);
            m.inc_by("shard.reconcile_items", reconciled.1 as u64);
        }
    }
    phase_clock(t_recon, "shard.reconcile_nanos");

    // Phase 4: components + the (k₁, k₂) floor — the same final step as
    // the unsharded path, on a view holding the identical alive set.
    let t_merge = phase_start();
    let groups: Vec<SuspiciousGroup> = connected_components(&view)
        .into_iter()
        .filter(|c| c.users.len() >= params.k1 && c.items.len() >= params.k2)
        .map(|c| SuspiciousGroup {
            users: c.users,
            items: c.items,
            ridden_hot_items: Vec::new(),
        })
        .collect();
    phase_clock(t_merge, "shard.merge_nanos");
    if let Some(m) = metrics {
        m.inc_by("shard.merged_groups", groups.len() as u64);
    }
    Ok(DetectedGroups { groups, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_groups_with;
    use crate::extract::{FixpointMode, SquareStrategy};
    use ricd_graph::GraphBuilder;

    fn never() -> impl Fn() -> bool + Sync {
        || false
    }

    /// Four disjoint planted bicliques + organic noise: four separate
    /// components after extraction, exercising exact component shards and
    /// FFD bin-packing.
    fn disjoint_world() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for gidx in 0..4u32 {
            for u in 0..12u32 {
                for v in 0..11u32 {
                    b.add_click(UserId(gidx * 12 + u), ItemId(gidx * 11 + v), 13);
                }
            }
        }
        for u in 0..300u32 {
            b.add_click(UserId(2000 + u), ItemId(100 + (u % 40)), 2);
        }
        b.build()
    }

    /// Four planted bicliques glued through one shared hot item (the hot
    /// item survives extraction: it shares ≥ k₁ users with every biclique
    /// item) + organic noise: one giant merged component, forcing hash
    /// splits and boundary replication once the cap is small.
    fn glued_world() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        let mut next_user = 0u32;
        for gidx in 0..4u32 {
            for u in 0..12 {
                let user = UserId(next_user + u);
                b.add_click(user, ItemId(0), 1); // shared hot item
                for v in 0..11u32 {
                    b.add_click(user, ItemId(1 + gidx * 11 + v), 13);
                }
            }
            next_user += 12;
        }
        // Hot-item background so the glue item is genuinely hot.
        for u in 0..800u32 {
            b.add_click(UserId(1000 + u), ItemId(0), 1);
        }
        // Organic noise.
        for u in 0..300u32 {
            b.add_click(UserId(2000 + u), ItemId(100 + (u % 40)), 2);
        }
        b.build()
    }

    fn sharded(g: &BipartiteGraph, cfg: &ShardConfig, workers: usize) -> Vec<SuspiciousGroup> {
        detect_groups_sharded(
            g,
            &Seeds::none(),
            &RicdParams::default(),
            &WorkerPool::new(workers),
            cfg,
            &never(),
            None,
        )
        .expect("sharded detection completes")
        .groups
    }

    fn unsharded(g: &BipartiteGraph) -> Vec<SuspiciousGroup> {
        detect_groups_with(
            g,
            &Seeds::none(),
            &RicdParams::default(),
            &WorkerPool::new(4),
            SquareStrategy::Parallel,
            FixpointMode::Delta,
            None,
        )
        .groups
    }

    #[test]
    fn sharded_equals_unsharded_on_disjoint_world() {
        let g = disjoint_world();
        let want = unsharded(&g);
        assert_eq!(want.len(), 4, "scenario sanity: four planted groups");
        for (cfg, workers) in [
            (ShardConfig::default(), 4),
            (
                ShardConfig {
                    shards: Some(1),
                    max_users: None,
                    ..Default::default()
                },
                1,
            ),
            (
                ShardConfig {
                    shards: None,
                    max_users: Some(12),
                    ..Default::default()
                },
                4,
            ),
            (
                ShardConfig {
                    shards: None,
                    max_users: Some(5),
                    ..Default::default()
                },
                2,
            ),
            (
                ShardConfig {
                    shards: Some(64),
                    max_users: None,
                    ..Default::default()
                },
                4,
            ),
        ] {
            let got = sharded(&g, &cfg, workers);
            assert_eq!(got, want, "cfg={cfg:?} workers={workers}");
        }
    }

    #[test]
    fn sharded_equals_unsharded_on_glued_world() {
        let g = glued_world();
        let want = unsharded(&g);
        assert_eq!(want.len(), 1, "scenario sanity: one merged giant group");
        assert_eq!(want[0].users.len(), 48);
        for (cfg, workers) in [
            (ShardConfig::default(), 4),
            (
                ShardConfig {
                    shards: Some(1),
                    max_users: None,
                    ..Default::default()
                },
                1,
            ),
            (
                ShardConfig {
                    shards: None,
                    max_users: Some(5),
                    ..Default::default()
                },
                4,
            ),
            (
                ShardConfig {
                    shards: None,
                    max_users: Some(1),
                    ..Default::default()
                },
                2,
            ),
            (
                ShardConfig {
                    shards: Some(64),
                    max_users: None,
                    ..Default::default()
                },
                4,
            ),
        ] {
            let got = sharded(&g, &cfg, workers);
            assert_eq!(got, want, "cfg={cfg:?} workers={workers}");
        }
    }

    #[test]
    fn tiny_cap_forces_hash_shards_and_reconciliation() {
        let g = glued_world();
        let registry = MetricsRegistry::new();
        let got = detect_groups_sharded(
            &g,
            &Seeds::none(),
            &RicdParams::default(),
            &WorkerPool::new(4),
            &ShardConfig {
                shards: None,
                max_users: Some(4),
                ..Default::default()
            },
            &never(),
            Some(&registry),
        )
        .unwrap()
        .groups;
        assert_eq!(got, unsharded(&g));
        let snap = registry.snapshot();
        assert!(
            snap.counter("shard.hash").unwrap() > 0,
            "cap 4 must hash-split"
        );
        assert!(snap.counter("shard.giant_components").unwrap() > 0);
        assert!(snap.counter("shard.replicated_items").unwrap() > 0);
        assert!(
            snap.counter("shard.prefilter_removed_users").unwrap() > 0,
            "noise users die in the pre-filter"
        );
        assert_eq!(snap.counter("shard.merged_groups"), Some(1));
    }

    #[test]
    fn seeded_sharded_detection_matches_unsharded() {
        let g = glued_world();
        let seeds = Seeds {
            users: vec![],
            items: vec![ItemId(1)],
        };
        let params = RicdParams::default();
        let want = detect_groups_with(
            &g,
            &seeds,
            &params,
            &WorkerPool::new(2),
            SquareStrategy::Parallel,
            FixpointMode::Delta,
            None,
        )
        .groups;
        let got = detect_groups_sharded(
            &g,
            &seeds,
            &params,
            &WorkerPool::new(2),
            &ShardConfig {
                shards: None,
                max_users: Some(6),
                ..Default::default()
            },
            &never(),
            None,
        )
        .unwrap()
        .groups;
        assert_eq!(got, want);
    }

    #[test]
    fn deadline_already_exceeded_aborts() {
        let g = glued_world();
        let err = detect_groups_sharded(
            &g,
            &Seeds::none(),
            &RicdParams::default(),
            &WorkerPool::new(2),
            &ShardConfig::default(),
            &(|| true),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, ShardAbort::DeadlineExceeded));
    }

    #[test]
    fn empty_graph_yields_no_groups() {
        let g = GraphBuilder::new().build();
        let out = detect_groups_sharded(
            &g,
            &Seeds::none(),
            &RicdParams::default(),
            &WorkerPool::new(2),
            &ShardConfig::default(),
            &never(),
            None,
        )
        .unwrap();
        assert!(out.groups.is_empty());
    }

    #[test]
    fn prefilter_matches_core_bounds() {
        let g = glued_world();
        let params = RicdParams::default();
        let mut view = GraphView::full(&g);
        core_prefilter(&mut view, &params);
        // Fixpoint check: every survivor meets both degree bounds.
        for u in view.users().collect::<Vec<_>>() {
            assert!(view.user_degree(u) >= params.user_degree_bound());
        }
        for v in view.items().collect::<Vec<_>>() {
            assert!(view.item_degree(v) >= params.item_degree_bound());
        }
        assert!(view.check_consistency());
    }
}
