//! Windowed streaming detection: old clicks age out of the graph.
//!
//! [`crate::incremental::StreamingDetector`] accumulates forever — correct
//! for the append-only replay it was built for, but a continuous monitor
//! over months of traffic cannot keep (or keep *trusting*) every click it
//! ever saw. The [`WindowedDetector`] consumes *timestamped* batches and
//! maintains a bounded evidence window:
//!
//! * **sliding window** (`window = Some(W)`): a record at event time `ts`
//!   participates in detection while `now < ts + W`, where `now` is the
//!   high-water mark of ingested event times; once the watermark passes,
//!   the record is evicted permanently. Records arriving already outside
//!   the window (late stragglers) are dropped on ingest and counted.
//! * **exponential decay** (`half_life = Some(H)`): an edge's effective
//!   weight is its click count halved once per elapsed half-life —
//!   computed as the integer shift `c >> ((now − ts) / H)`, which is
//!   deterministic, monotone in `now`, and hits exactly zero, at which
//!   point the record is evicted (decay is a soft window).
//!
//! Window advancement *is* the compaction story: eviction physically drops
//! records, so the working graph is rebuilt from the live window only and
//! memory is bounded by window volume, not stream length.
//!
//! ## Why every detection runs the full pipeline on the window graph
//!
//! The incremental detector's frontier seeding is sound because its graph
//! only *grows*: a group can newly satisfy the (α, k₁, k₂) predicate only
//! via a new heavy edge. Under eviction and decay that premise fails in
//! both directions — edges fall back *below* `T_click`, items drop below
//! `T_hot` and change hot/cold classification, and groups must *dissolve*
//! when their evidence ages out. So the windowed detector re-runs the
//! full deterministic pipeline over the (bounded) window graph; its result
//! is a pure function of the live window, which is what makes the
//! infinite-window mode provably identical to one-shot batch detection
//! (see `tests/proptest_stream.rs`) and checkpoint/resume exact.

use crate::pipeline::RicdPipeline;
use crate::result::DetectionResult;
use ricd_graph::{BipartiteGraph, GraphBuilder, ItemId, UserId};
use serde::{Deserialize, Serialize};

/// A timestamped click record: `(user, item, clicks, event_time)`.
pub type TimedClick = (UserId, ItemId, u32, u64);

/// Window-mode configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Sliding-window length in ticks. `None` keeps every record forever
    /// (infinite window — equivalent to batch detection).
    pub window: Option<u64>,
    /// Exponential-decay half-life in ticks: effective clicks halve once
    /// per elapsed half-life. `None` disables decay.
    pub half_life: Option<u64>,
    /// Run detection every N batches (1 = every batch). Skipped batches
    /// still ingest, evict, and advance the clock; the next detection
    /// catches up exactly (the result is a function of the window alone).
    pub detect_every: u64,
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self {
            window: None,
            half_life: None,
            detect_every: 1,
        }
    }
}

impl WindowConfig {
    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == Some(0) {
            return Err("window must be positive (None = infinite)".into());
        }
        if self.half_life == Some(0) {
            return Err("decay half-life must be positive (None = no decay)".into());
        }
        if self.detect_every == 0 {
            return Err("detect_every must be ≥ 1".into());
        }
        Ok(())
    }
}

/// Counters for one windowed batch ingestion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowBatchStats {
    /// Valid records ingested into the window.
    pub records: usize,
    /// Zero-click records rejected by validation.
    pub rejected: usize,
    /// Records dropped on arrival because their event time had already
    /// aged out of the window.
    pub late: usize,
    /// Records evicted from the window by this batch's clock advance.
    pub evicted: usize,
    /// Records live in the window after ingest.
    pub window_records: usize,
    /// True if detection ran on this batch (vs deferred by `detect_every`).
    pub detected: bool,
    /// True if the batch was an at-least-once redelivery and was dropped.
    pub replayed: bool,
}

/// A serializable snapshot of a [`WindowedDetector`]'s window state.
/// Restoring it and continuing the stream yields results identical to a
/// detector that never stopped: the live log, watermark, and sequence
/// cursor are the whole state (the detection result is recomputed, being a
/// pure function of the window).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindowCheckpoint {
    /// Live (un-evicted) records, time-sorted.
    pub log: Vec<TimedClick>,
    /// Event-time high-water mark.
    pub now: u64,
    /// Next expected batch sequence number.
    pub next_seq: u64,
    /// Batches ingested so far (drives the `detect_every` cadence).
    pub batches_ingested: u64,
}

/// An online RICD detector over timestamped batches with a bounded
/// evidence window. See the module docs for the semantics.
pub struct WindowedDetector {
    pipeline: RicdPipeline,
    cfg: WindowConfig,
    /// Live records, sorted by event time.
    log: Vec<TimedClick>,
    /// Event-time high-water mark across all ingested records.
    now: u64,
    next_seq: u64,
    batches_ingested: u64,
    last: DetectionResult,
    /// True when `last` predates window contents (a detection was skipped).
    dirty: bool,
}

impl WindowedDetector {
    /// A detector with the given pipeline and window configuration.
    pub fn new(pipeline: RicdPipeline, cfg: WindowConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(Self {
            pipeline,
            cfg,
            log: Vec::new(),
            now: 0,
            next_seq: 0,
            batches_ingested: 0,
            last: DetectionResult::default(),
            dirty: false,
        })
    }

    /// Restores a detector from a [`WindowCheckpoint`]. The pipeline and
    /// window configuration are not part of the checkpoint and are
    /// supplied fresh; the detection result is recomputed on the next
    /// [`result`](Self::result) call.
    pub fn restore(
        pipeline: RicdPipeline,
        cfg: WindowConfig,
        ckpt: WindowCheckpoint,
    ) -> Result<Self, String> {
        cfg.validate()?;
        Ok(Self {
            pipeline,
            cfg,
            log: ckpt.log,
            now: ckpt.now,
            next_seq: ckpt.next_seq,
            batches_ingested: ckpt.batches_ingested,
            last: DetectionResult::default(),
            dirty: true,
        })
    }

    /// Snapshots the window state for crash recovery.
    pub fn checkpoint(&self) -> WindowCheckpoint {
        let metrics = &self.pipeline.metrics;
        metrics.counter("stream.window_checkpoints").inc();
        WindowCheckpoint {
            log: self.log.clone(),
            now: self.now,
            next_seq: self.next_seq,
            batches_ingested: self.batches_ingested,
        }
    }

    /// The next batch sequence number this detector expects.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The event-time high-water mark.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of live records in the window.
    pub fn window_records(&self) -> usize {
        self.log.len()
    }

    /// The window configuration.
    pub fn config(&self) -> &WindowConfig {
        &self.cfg
    }

    /// Effective weight of `clicks` observed at `ts` as of watermark
    /// `now`: halved once per elapsed half-life, exact integer arithmetic.
    fn effective(&self, clicks: u32, ts: u64) -> u32 {
        match self.cfg.half_life {
            None => clicks,
            Some(h) => {
                let halvings = self.now.saturating_sub(ts) / h;
                if halvings >= 32 {
                    0
                } else {
                    clicks >> halvings
                }
            }
        }
    }

    /// The current window graph: live records at their effective weights.
    pub fn window_graph(&self) -> BipartiteGraph {
        let mut b = GraphBuilder::with_capacity(self.log.len());
        for &(u, v, c, ts) in &self.log {
            let w = self.effective(c, ts);
            if w > 0 {
                b.add_click(u, v, w);
            }
        }
        b.build()
    }

    /// Ingests one timestamped batch with the next expected sequence
    /// number. Use [`ingest_batch`](Self::ingest_batch) when the source
    /// numbers its batches and may redeliver.
    pub fn ingest(&mut self, batch: &[TimedClick]) -> WindowBatchStats {
        self.ingest_batch(self.next_seq, batch)
    }

    /// Ingests batch number `seq`: advances the event-time watermark,
    /// evicts aged-out records, and (subject to `detect_every`) re-runs
    /// detection on the window graph. Sequence handling matches
    /// [`crate::incremental::StreamingDetector`]: a lower `seq` is an
    /// at-least-once redelivery and is dropped; a higher one counts the
    /// skipped numbers and proceeds.
    pub fn ingest_batch(&mut self, seq: u64, batch: &[TimedClick]) -> WindowBatchStats {
        let metrics = self.pipeline.metrics.clone();
        let _span = metrics.span("stream/window_ingest");
        let mut stats = WindowBatchStats::default();
        if seq < self.next_seq {
            metrics.counter("stream.batches_replayed").inc();
            stats.replayed = true;
            return stats;
        }
        if seq > self.next_seq {
            metrics.inc_by("stream.seqs_skipped", seq - self.next_seq);
        }
        metrics.counter("stream.batches_ingested").inc();
        self.next_seq = seq + 1;
        self.batches_ingested += 1;

        // Validation mirrors the incremental detector: zero-click records
        // are producer bugs and are quarantined.
        let mut rejected = 0usize;
        let valid: Vec<TimedClick> = batch
            .iter()
            .copied()
            .filter(|&(_, _, c, _)| {
                let ok = c > 0;
                rejected += usize::from(!ok);
                ok
            })
            .collect();
        stats.rejected = rejected;
        metrics.inc_by("stream.records_rejected", rejected as u64);

        // The watermark advances to the batch's max event time first, so a
        // batch that contains both fresh records and ancient stragglers
        // admits the former and rejects the latter consistently.
        let new_now = valid
            .iter()
            .map(|&(_, _, _, ts)| ts)
            .max()
            .map_or(self.now, |m| self.now.max(m));
        self.now = new_now;

        let mut late = 0usize;
        let mut admitted = 0usize;
        for &(u, v, c, ts) in &valid {
            let aged_out = self
                .cfg
                .window
                .is_some_and(|w| ts.saturating_add(w) <= new_now);
            if aged_out {
                late += 1;
            } else {
                self.log.push((u, v, c, ts));
                admitted += 1;
            }
        }
        stats.records = admitted;
        stats.late = late;
        metrics.inc_by("stream.records_ingested", admitted as u64);
        metrics.inc_by("stream.late_records", late as u64);
        // Keep the log time-sorted so eviction is a prefix drain. Stable
        // sort: ties keep arrival order, which is deterministic under
        // deterministic replay.
        self.log.sort_by_key(|&(_, _, _, ts)| ts);

        // Window eviction: drain the aged-out prefix.
        let mut evicted = 0usize;
        let mut evicted_clicks = 0u64;
        if let Some(w) = self.cfg.window {
            let keep_from = self
                .log
                .partition_point(|&(_, _, _, ts)| ts.saturating_add(w) <= self.now);
            for &(_, _, c, _) in &self.log[..keep_from] {
                evicted_clicks += c as u64;
            }
            evicted += keep_from;
            self.log.drain(..keep_from);
        }
        // Decay eviction: drop records whose effective weight reached
        // zero. Monotone in `now`, so eviction is permanent.
        if self.cfg.half_life.is_some() {
            let now_self = &*self; // borrow for the closure below
            let before = self.log.len();
            let mut decayed_clicks = 0u64;
            let retained: Vec<TimedClick> = self
                .log
                .iter()
                .copied()
                .filter(|&(_, _, c, ts)| {
                    let live = now_self.effective(c, ts) > 0;
                    if !live {
                        decayed_clicks += c as u64;
                    }
                    live
                })
                .collect();
            self.log = retained;
            evicted += before - self.log.len();
            evicted_clicks += decayed_clicks;
        }
        stats.evicted = evicted;
        metrics.inc_by("stream.evicted_records", evicted as u64);
        metrics.inc_by("stream.evicted_clicks", evicted_clicks);
        stats.window_records = self.log.len();
        metrics
            .gauge("stream.window_records")
            .set(self.log.len() as i64);
        let span = self
            .log
            .first()
            .map_or(0, |&(_, _, _, ts)| self.now.saturating_sub(ts));
        metrics.gauge("stream.window_span").set(span as i64);

        // Detection cadence.
        if self.batches_ingested.is_multiple_of(self.cfg.detect_every) {
            self.detect(&metrics);
            stats.detected = true;
        } else {
            self.dirty = true;
            metrics.counter("stream.detect_skipped").inc();
        }
        stats
    }

    fn detect(&mut self, metrics: &ricd_obs::MetricsRegistry) {
        let g = self.window_graph();
        self.last = self.pipeline.run(&g);
        self.dirty = false;
        metrics.counter("stream.detects").inc();
        metrics
            .gauge("stream.window_clicks")
            .set(g.total_clicks() as i64);
    }

    /// The detection result over the current window, re-running detection
    /// first if the cadence skipped it.
    pub fn result(&mut self) -> &DetectionResult {
        if self.dirty {
            let metrics = self.pipeline.metrics.clone();
            self.detect(&metrics);
        }
        &self.last
    }

    /// The last computed result without forcing a catch-up detection (may
    /// lag the window by up to `detect_every − 1` batches).
    pub fn last_result(&self) -> &DetectionResult {
        &self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RicdParams;

    fn pipeline() -> RicdPipeline {
        RicdPipeline::new(RicdParams::default())
    }

    /// The incremental suite's world, timestamped: a hot item (`ItemId(0)`,
    /// 1200 organic clickers) ridden by 12 workers who each hit 11 targets
    /// with `clicks` heavy clicks, all at time `ts`.
    fn attack_at(ts: u64, clicks: u32) -> Vec<TimedClick> {
        let mut v = Vec::new();
        for u in 1000..2200u32 {
            v.push((UserId(u), ItemId(0), 1, ts));
        }
        for u in 0..12u32 {
            for t in 1..12u32 {
                v.push((UserId(u), ItemId(t), clicks, ts));
            }
            v.push((UserId(u), ItemId(0), 1, ts));
        }
        v
    }

    #[test]
    fn infinite_window_flags_the_attack() {
        let mut d = WindowedDetector::new(pipeline(), WindowConfig::default()).unwrap();
        let stats = d.ingest(&attack_at(100, 12));
        assert!(stats.detected);
        assert_eq!(stats.late, 0);
        assert_eq!(stats.evicted, 0);
        let users = d.result().suspicious_users();
        assert_eq!(users.len(), 12, "the 12 workers flagged: {users:?}");
    }

    #[test]
    fn window_evicts_old_evidence_and_groups_dissolve() {
        let cfg = WindowConfig {
            window: Some(100),
            ..WindowConfig::default()
        };
        let mut d = WindowedDetector::new(pipeline(), cfg).unwrap();
        d.ingest(&attack_at(0, 12));
        assert!(!d.result().suspicious_users().is_empty());
        // An empty-ish later batch advances the clock past the window.
        let stats = d.ingest(&[(UserId(200), ItemId(50), 1, 500)]);
        assert!(stats.evicted > 0, "old records evicted");
        assert!(
            d.result().suspicious_users().is_empty(),
            "groups dissolve when their evidence ages out"
        );
        assert_eq!(d.window_records(), 1);
    }

    #[test]
    fn late_records_are_dropped() {
        let cfg = WindowConfig {
            window: Some(100),
            ..WindowConfig::default()
        };
        let mut d = WindowedDetector::new(pipeline(), cfg).unwrap();
        d.ingest(&[(UserId(1), ItemId(1), 1, 1_000)]);
        let stats = d.ingest(&[(UserId(2), ItemId(2), 1, 10)]);
        assert_eq!(stats.late, 1);
        assert_eq!(stats.records, 0);
        assert_eq!(d.window_records(), 1);
    }

    #[test]
    fn decay_halves_and_eventually_evicts() {
        let cfg = WindowConfig {
            half_life: Some(100),
            ..WindowConfig::default()
        };
        let mut d = WindowedDetector::new(pipeline(), cfg).unwrap();
        d.ingest(&attack_at(0, 12));
        assert!(!d.result().suspicious_users().is_empty());
        // One half-life later the heavy edges are at 6 < T_click.
        d.ingest(&[(UserId(200), ItemId(50), 1, 100)]);
        assert!(d.result().suspicious_users().is_empty());
        let g = d.window_graph();
        assert_eq!(g.clicks(UserId(0), ItemId(1)), Some(6));
        // After enough half-lives everything decays to zero and is evicted.
        let stats = d.ingest(&[(UserId(200), ItemId(50), 1, 800)]);
        assert!(stats.evicted > 0);
        assert!(d.window_records() <= 2, "only the fresh clicks remain");
    }

    #[test]
    fn replay_and_skip_sequencing() {
        let mut d = WindowedDetector::new(pipeline(), WindowConfig::default()).unwrap();
        let b = [(UserId(1), ItemId(1), 2, 10)];
        assert!(!d.ingest_batch(0, &b).replayed);
        assert!(d.ingest_batch(0, &b).replayed, "redelivery dropped");
        assert_eq!(d.window_records(), 1);
        d.ingest_batch(5, &b);
        assert_eq!(d.next_seq(), 6);
    }

    #[test]
    fn zero_click_records_rejected() {
        let mut d = WindowedDetector::new(pipeline(), WindowConfig::default()).unwrap();
        let stats = d.ingest(&[(UserId(1), ItemId(1), 0, 10), (UserId(1), ItemId(2), 1, 10)]);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.records, 1);
    }

    #[test]
    fn detect_every_defers_and_result_catches_up() {
        let cfg = WindowConfig {
            detect_every: 3,
            ..WindowConfig::default()
        };
        let mut d = WindowedDetector::new(pipeline(), cfg).unwrap();
        let s1 = d.ingest(&attack_at(10, 12));
        assert!(!s1.detected, "batch 1 of 3 defers");
        assert!(d.last_result().suspicious_users().is_empty());
        let users = d.result().suspicious_users();
        assert_eq!(users.len(), 12, "result() catches up: {users:?}");
    }

    #[test]
    fn checkpoint_resume_is_exact() {
        let cfg = WindowConfig {
            window: Some(300),
            ..WindowConfig::default()
        };
        let mut a = WindowedDetector::new(pipeline(), cfg).unwrap();
        a.ingest(&attack_at(0, 6));
        let ckpt = a.checkpoint();
        let mut b = WindowedDetector::restore(pipeline(), cfg, ckpt).unwrap();
        let more = attack_at(200, 6);
        a.ingest(&more);
        b.ingest(&more);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.next_seq(), b.next_seq());
        assert_eq!(a.window_records(), b.window_records());
        let (ra, rb) = (a.result().clone(), b.result().clone());
        assert_eq!(ra.suspicious_users(), rb.suspicious_users());
        assert_eq!(ra.ranked_users, rb.ranked_users);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(WindowConfig {
            window: Some(0),
            ..WindowConfig::default()
        }
        .validate()
        .is_err());
        assert!(WindowConfig {
            half_life: Some(0),
            ..WindowConfig::default()
        }
        .validate()
        .is_err());
        assert!(WindowConfig {
            detect_every: 0,
            ..WindowConfig::default()
        }
        .validate()
        .is_err());
        assert!(WindowedDetector::new(
            pipeline(),
            WindowConfig {
                window: Some(0),
                ..WindowConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn checkpoint_serde_round_trip() {
        let mut d = WindowedDetector::new(pipeline(), WindowConfig::default()).unwrap();
        d.ingest(&attack_at(42, 3));
        let ckpt = d.checkpoint();
        let s = serde_json::to_string(&ckpt).unwrap();
        let back: WindowCheckpoint = serde_json::from_str(&s).unwrap();
        assert_eq!(ckpt, back);
    }
}
