//! Threshold derivation (Section IV-A, steps 1–2) and the Module-3
//! threshold feedback seam.

use crate::params::{ParamsMode, RicdParams};
use ricd_graph::stats;
use ricd_graph::BipartiteGraph;
use serde::{Deserialize, Serialize};

/// Derives `T_hot` from the data by the Pareto rule: rank items by total
/// clicks and take the click count of the last item inside the top-`share`
/// cumulative click mass (paper: `share = 0.8` yields `T_hot = 1,320` on
/// `TaoBao_UI_Clicks`).
///
/// Returns 0 for an empty graph (then *no* item is hot).
pub fn derive_t_hot(g: &BipartiteGraph, share: f64) -> u64 {
    stats::pareto_hot_threshold(g, share).unwrap_or(0)
}

/// Eq 4: `T_click = (Avg_clk × 80%) / (Avg_cnt × 20%)`.
///
/// `avg_clk` is the users' average total clicks, `avg_cnt` the users'
/// average distinct items (Table II). The rationale: a crowd worker spends a
/// "reasonable" total budget (`Avg_clk`), concentrates ~80% of it on ~20% of
/// their edges (the targets), so a single target edge carries about this
/// many clicks.
///
/// The raw ratio is returned; [`derive_t_click`] rounds it **up to the next
/// integer and adds one** to match the paper's operating point: with the
/// paper's inputs (11.35, 4.23) the ratio is ≈10.7 while the paper uses
/// `T_click = 12` ("an ordinary item whose number of clicks greater than or
/// equal to 12 is an abnormal click record") — i.e. the threshold sits
/// strictly above the derived ratio.
pub fn t_click_ratio(avg_clk: f64, avg_cnt: f64) -> f64 {
    (avg_clk * 0.8) / (avg_cnt * 0.2)
}

/// The integer `T_click` actually used by the detector (see
/// [`t_click_ratio`] for the rounding rule).
pub fn derive_t_click(avg_clk: f64, avg_cnt: f64) -> u32 {
    (t_click_ratio(avg_clk, avg_cnt).ceil() as u32) + 1
}

/// Derives both thresholds from a graph in one pass.
pub fn derive_thresholds(g: &BipartiteGraph, pareto_share: f64) -> (u64, u32) {
    let t_hot = derive_t_hot(g, pareto_share);
    let us = stats::user_stats(g);
    let t_click = if us.avg_cnt > 0.0 {
        derive_t_click(us.avg_clk, us.avg_cnt)
    } else {
        u32::MAX
    };
    (t_hot, t_click)
}

/// Resolves a [`ParamsMode`] against the graph under detection: `Default`
/// is the paper's operating point; `Derived` replaces `T_hot`/`T_click`
/// with [`derive_thresholds`] (Pareto share 0.8) and keeps the structural
/// parameters at their defaults.
pub fn params_for_mode(mode: ParamsMode, g: &BipartiteGraph) -> RicdParams {
    match mode {
        ParamsMode::Default => RicdParams::default(),
        ParamsMode::Derived => {
            let (t_hot, t_click) = derive_thresholds(g, 0.8);
            RicdParams {
                t_hot,
                t_click: t_click.max(1),
                ..RicdParams::default()
            }
        }
    }
}

/// The Module-3 threshold feedback seam (paper Fig 7, generalized for the
/// adversarial lab): when a round flags fewer nodes than the analyst's
/// expectation, every recall gate relaxes one monotone step — `T_click`
/// down toward its floor, `k₁`/`k₂` down toward the group-size floor, `α`
/// down toward its floor, and `T_hot` *up* toward its cap (a higher hot
/// bar means fewer items are excused as hot, defeating hot-item mimicry).
///
/// Each knob only ever moves in one direction, so a tuning trajectory can
/// never oscillate; once the flagged count meets `target_flagged` (or every
/// knob is at its bound) [`FeedbackTuner::observe`] returns `None` and the
/// parameters are frozen. The existing [`crate::identify::FeedbackLoop`]
/// stays the paper-faithful Fig 7 driver; this tuner is the per-round seam
/// the adversarial matrix records.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FeedbackTuner {
    /// Minimum flagged nodes (users + items) for a round to count as
    /// converged — the analyst's expectation `T`.
    pub target_flagged: usize,
    /// `T_click` decrement per round.
    pub t_click_step: u32,
    /// `T_click` never relaxes below this.
    pub t_click_floor: u32,
    /// `k₁`/`k₂` never relax below this.
    pub k_floor: usize,
    /// `α` decrement per round.
    pub alpha_step: f64,
    /// `α` never relaxes below this.
    pub alpha_floor: f64,
    /// `T_hot` multiplier per round.
    pub t_hot_factor: u64,
    /// `T_hot` never escalates above this.
    pub t_hot_cap: u64,
}

impl Default for FeedbackTuner {
    fn default() -> Self {
        Self {
            target_flagged: 15,
            t_click_step: 3,
            t_click_floor: 4,
            k_floor: 4,
            alpha_step: 0.1,
            alpha_floor: 0.7,
            t_hot_factor: 2,
            t_hot_cap: 8_000,
        }
    }
}

impl FeedbackTuner {
    /// One feedback step: given the parameters a round ran with and how
    /// many nodes it flagged, returns the relaxed parameters for the next
    /// round — or `None` if the round converged (enough flagged) or every
    /// knob is already at its bound.
    pub fn observe(&self, params: &RicdParams, flagged_nodes: usize) -> Option<RicdParams> {
        if flagged_nodes >= self.target_flagged {
            return None;
        }
        let mut p = *params;
        p.t_click = p
            .t_click
            .saturating_sub(self.t_click_step)
            .max(self.t_click_floor)
            .min(p.t_click);
        p.k1 = p.k1.saturating_sub(1).max(self.k_floor).min(p.k1);
        p.k2 = p.k2.saturating_sub(1).max(self.k_floor).min(p.k2);
        if p.alpha - self.alpha_step >= self.alpha_floor - 1e-9 {
            p.alpha = ((p.alpha - self.alpha_step) * 10.0).round() / 10.0;
        }
        p.t_hot = p
            .t_hot
            .saturating_mul(self.t_hot_factor)
            .min(self.t_hot_cap)
            .max(p.t_hot);
        (p != *params).then_some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::{GraphBuilder, ItemId, UserId};

    #[test]
    fn eq4_with_paper_inputs() {
        // Section IV-A quotes Avg_clk = 11.35 and Avg_cnt = 4.23 (the text's
        // value; Table II prints 4.32) and lands on T_click = 12.
        let ratio = t_click_ratio(11.35, 4.23);
        assert!((10.0..11.5).contains(&ratio), "ratio {ratio}");
        assert_eq!(derive_t_click(11.35, 4.23), 12);
    }

    #[test]
    fn t_click_monotone_in_budget() {
        assert!(derive_t_click(20.0, 4.0) > derive_t_click(10.0, 4.0));
        assert!(derive_t_click(10.0, 2.0) > derive_t_click(10.0, 4.0));
    }

    #[test]
    fn t_hot_from_skewed_graph() {
        let mut b = GraphBuilder::new();
        for u in 0..10 {
            b.add_click(UserId(u), ItemId(0), 100);
        }
        for v in 1..20 {
            b.add_click(UserId(0), ItemId(v), 10);
        }
        let g = b.build();
        // total = 1000 + 190 = 1190; 80% = 952 → item 0 alone covers it.
        assert_eq!(derive_t_hot(&g, 0.8), 1_000);
    }

    #[test]
    fn empty_graph_thresholds() {
        let g = GraphBuilder::new().build();
        assert_eq!(derive_t_hot(&g, 0.8), 0);
        let (t_hot, t_click) = derive_thresholds(&g, 0.8);
        assert_eq!(t_hot, 0);
        assert_eq!(t_click, u32::MAX, "no users → nothing is abnormal");
    }

    #[test]
    fn params_mode_resolution() {
        let mut b = GraphBuilder::new();
        for u in 0..10 {
            b.add_click(UserId(u), ItemId(0), 100);
        }
        for v in 1..20 {
            b.add_click(UserId(0), ItemId(v), 10);
        }
        let g = b.build();
        assert_eq!(
            params_for_mode(ParamsMode::Default, &g),
            RicdParams::default()
        );
        let derived = params_for_mode(ParamsMode::Derived, &g);
        assert_eq!(derived.t_hot, 1_000, "Pareto head of the skewed graph");
        assert_ne!(derived.t_click, 0);
        assert_eq!(derived.k1, RicdParams::default().k1, "structure untouched");
        assert_eq!(ParamsMode::parse("derived"), Ok(ParamsMode::Derived));
        assert!(ParamsMode::parse("banana").is_err());
    }

    #[test]
    fn tuner_stops_when_expectation_met() {
        let t = FeedbackTuner::default();
        assert_eq!(t.observe(&RicdParams::default(), t.target_flagged), None);
        assert_eq!(t.observe(&RicdParams::default(), 1_000), None);
    }

    #[test]
    fn tuner_relaxes_every_gate_monotonically() {
        let t = FeedbackTuner::default();
        let mut p = RicdParams::default();
        let mut rounds = 0;
        while let Some(next) = t.observe(&p, 0) {
            assert!(next.t_click <= p.t_click);
            assert!(next.k1 <= p.k1 && next.k2 <= p.k2);
            assert!(next.alpha <= p.alpha + 1e-12);
            assert!(next.t_hot >= p.t_hot);
            next.validate().unwrap();
            p = next;
            rounds += 1;
            assert!(rounds < 32, "tuning must reach its bounds");
        }
        assert_eq!(p.t_click, t.t_click_floor);
        assert_eq!(p.k1, t.k_floor);
        assert!((p.alpha - t.alpha_floor).abs() < 1e-9);
        assert_eq!(p.t_hot, t.t_hot_cap);
        // Paper defaults: T_click (12→9→6→4), alpha, and T_hot (×2 to the
        // 8k cap) all reach their bounds by round 3; only k keeps walking.
        let mut q = RicdParams::default();
        for _ in 0..3 {
            q = t.observe(&q, 0).unwrap();
        }
        assert_eq!(q.t_click, t.t_click_floor);
        assert_eq!(q.t_hot, t.t_hot_cap);
        assert!((q.alpha - t.alpha_floor).abs() < 1e-9);
    }

    #[test]
    fn tuner_respects_preexisting_bounds() {
        let t = FeedbackTuner::default();
        // Derived params can start beyond the tuner's bounds; they stay put.
        let odd = RicdParams {
            t_click: 2,
            t_hot: 50_000,
            ..RicdParams::default()
        };
        let next = t.observe(&odd, 0).unwrap();
        assert_eq!(next.t_click, 2, "below the floor already");
        assert_eq!(next.t_hot, 50_000, "above the cap already");
        assert_eq!(next.k1, 9, "k still relaxes");
    }

    #[test]
    fn derive_thresholds_combined() {
        let mut b = GraphBuilder::new();
        for u in 0..100 {
            b.add_click(UserId(u), ItemId(0), 8);
            b.add_click(UserId(u), ItemId(1 + u % 10), 2);
        }
        let g = b.build();
        let (t_hot, t_click) = derive_thresholds(&g, 0.8);
        assert!(t_hot > 0);
        assert!(t_click >= 2);
    }
}
