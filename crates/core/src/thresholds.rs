//! Threshold derivation (Section IV-A, steps 1–2).

use ricd_graph::stats;
use ricd_graph::BipartiteGraph;

/// Derives `T_hot` from the data by the Pareto rule: rank items by total
/// clicks and take the click count of the last item inside the top-`share`
/// cumulative click mass (paper: `share = 0.8` yields `T_hot = 1,320` on
/// `TaoBao_UI_Clicks`).
///
/// Returns 0 for an empty graph (then *no* item is hot).
pub fn derive_t_hot(g: &BipartiteGraph, share: f64) -> u64 {
    stats::pareto_hot_threshold(g, share).unwrap_or(0)
}

/// Eq 4: `T_click = (Avg_clk × 80%) / (Avg_cnt × 20%)`.
///
/// `avg_clk` is the users' average total clicks, `avg_cnt` the users'
/// average distinct items (Table II). The rationale: a crowd worker spends a
/// "reasonable" total budget (`Avg_clk`), concentrates ~80% of it on ~20% of
/// their edges (the targets), so a single target edge carries about this
/// many clicks.
///
/// The raw ratio is returned; [`derive_t_click`] rounds it **up to the next
/// integer and adds one** to match the paper's operating point: with the
/// paper's inputs (11.35, 4.23) the ratio is ≈10.7 while the paper uses
/// `T_click = 12` ("an ordinary item whose number of clicks greater than or
/// equal to 12 is an abnormal click record") — i.e. the threshold sits
/// strictly above the derived ratio.
pub fn t_click_ratio(avg_clk: f64, avg_cnt: f64) -> f64 {
    (avg_clk * 0.8) / (avg_cnt * 0.2)
}

/// The integer `T_click` actually used by the detector (see
/// [`t_click_ratio`] for the rounding rule).
pub fn derive_t_click(avg_clk: f64, avg_cnt: f64) -> u32 {
    (t_click_ratio(avg_clk, avg_cnt).ceil() as u32) + 1
}

/// Derives both thresholds from a graph in one pass.
pub fn derive_thresholds(g: &BipartiteGraph, pareto_share: f64) -> (u64, u32) {
    let t_hot = derive_t_hot(g, pareto_share);
    let us = stats::user_stats(g);
    let t_click = if us.avg_cnt > 0.0 {
        derive_t_click(us.avg_clk, us.avg_cnt)
    } else {
        u32::MAX
    };
    (t_hot, t_click)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::{GraphBuilder, ItemId, UserId};

    #[test]
    fn eq4_with_paper_inputs() {
        // Section IV-A quotes Avg_clk = 11.35 and Avg_cnt = 4.23 (the text's
        // value; Table II prints 4.32) and lands on T_click = 12.
        let ratio = t_click_ratio(11.35, 4.23);
        assert!((10.0..11.5).contains(&ratio), "ratio {ratio}");
        assert_eq!(derive_t_click(11.35, 4.23), 12);
    }

    #[test]
    fn t_click_monotone_in_budget() {
        assert!(derive_t_click(20.0, 4.0) > derive_t_click(10.0, 4.0));
        assert!(derive_t_click(10.0, 2.0) > derive_t_click(10.0, 4.0));
    }

    #[test]
    fn t_hot_from_skewed_graph() {
        let mut b = GraphBuilder::new();
        for u in 0..10 {
            b.add_click(UserId(u), ItemId(0), 100);
        }
        for v in 1..20 {
            b.add_click(UserId(0), ItemId(v), 10);
        }
        let g = b.build();
        // total = 1000 + 190 = 1190; 80% = 952 → item 0 alone covers it.
        assert_eq!(derive_t_hot(&g, 0.8), 1_000);
    }

    #[test]
    fn empty_graph_thresholds() {
        let g = GraphBuilder::new().build();
        assert_eq!(derive_t_hot(&g, 0.8), 0);
        let (t_hot, t_click) = derive_thresholds(&g, 0.8);
        assert_eq!(t_hot, 0);
        assert_eq!(t_click, u32::MAX, "no users → nothing is abnormal");
    }

    #[test]
    fn derive_thresholds_combined() {
        let mut b = GraphBuilder::new();
        for u in 0..100 {
            b.add_click(UserId(u), ItemId(0), 8);
            b.add_click(UserId(u), ItemId(1 + u % 10), 2);
        }
        let g = b.build();
        let (t_hot, t_click) = derive_thresholds(&g, 0.8);
        assert!(t_hot > 0);
        assert!(t_click >= 2);
    }
}
