//! Property tests: degradation accounting. For any input graph and any run
//! budget, a degraded run emits exactly one `degradation` event (with a
//! non-empty reason) and a complete run emits none — the alerting contract
//! a production deployment would page on.

use proptest::prelude::*;
use ricd_core::prelude::*;
use ricd_graph::{GraphBuilder, ItemId, UserId};
use ricd_obs::MetricsRegistry;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn degraded_runs_emit_exactly_one_degradation_event(
        clicks in proptest::collection::vec((0u32..40, 0u32..20, 1u32..9), 1..200),
        deadline_sel in 0usize..3,
        cap_sel in 0usize..3,
    ) {
        // The vendored proptest shim has no `prop_oneof`; select budget
        // shapes by index instead.
        let deadline_ms = [None, Some(0u64), Some(1u64)][deadline_sel];
        let max_groups = [None, Some(0usize), Some(1usize)][cap_sel];
        let mut b = GraphBuilder::new();
        for &(u, v, c) in &clicks {
            b.add_click(UserId(u), ItemId(v), c);
        }
        let g = b.build();

        let mut budget = RunBudget::none();
        if let Some(ms) = deadline_ms {
            budget = budget.with_deadline(Duration::from_millis(ms));
        }
        if let Some(cap) = max_groups {
            budget = budget.with_max_groups(cap);
        }

        let registry = MetricsRegistry::new();
        let result = RicdPipeline::new(RicdParams::default())
            .with_budget(budget)
            .with_metrics(registry.clone())
            .run(&g);

        let snap = registry.snapshot();
        let degradations: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.name == "degradation")
            .collect();
        match &result.status {
            RunStatus::Degraded { reason, phase } => {
                prop_assert_eq!(
                    degradations.len(), 1,
                    "degraded run must emit exactly one degradation event"
                );
                prop_assert!(!degradations[0].message.is_empty());
                prop_assert!(!reason.is_empty());
                prop_assert!(!phase.is_empty());
                prop_assert_eq!(snap.counter("pipeline.runs_degraded"), Some(1));
            }
            RunStatus::Complete => {
                prop_assert_eq!(
                    degradations.len(), 0,
                    "complete run must not emit degradation events"
                );
                prop_assert_eq!(snap.counter("pipeline.runs_degraded").unwrap_or(0), 0);
            }
        }
        prop_assert_eq!(snap.counter("pipeline.runs"), Some(1));
    }
}
