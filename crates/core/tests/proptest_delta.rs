//! Differential property tests for the delta-driven fixpoint: on random
//! graphs with planted bicliques, `FixpointMode::Delta` (dirty frontiers +
//! mid-fixpoint compaction) must reach exactly the alive set of the
//! `FixpointMode::FullRescan` baseline, for both square strategies.

use proptest::prelude::*;
use ricd_core::detect::{detect_groups_with, Seeds};
use ricd_core::extract::{extract_with, ExtractionStats, FixpointMode, SquareStrategy};
use ricd_core::params::RicdParams;
use ricd_engine::WorkerPool;
use ricd_graph::{BipartiteGraph, GraphBuilder, GraphView, ItemId, UserId};

/// Random sparse noise, an optional planted biclique, and optional filler:
/// hundreds of degree-1 pairs that CorePruning wipes out immediately,
/// pushing the vertex count past the compaction threshold so delta runs
/// exercise the compacted path and not just the frontier path.
fn graphs() -> impl Strategy<Value = (BipartiteGraph, Option<usize>, bool)> {
    (
        proptest::collection::vec((0u32..60, 0u32..40, 1u32..20), 0..300),
        proptest::option::of(6usize..12), // planted k x k biclique size
        any::<bool>(),                    // add compaction-triggering filler
    )
        .prop_map(|(noise, planted, filler)| {
            let mut b = GraphBuilder::new();
            for (u, v, c) in noise {
                b.add_click(UserId(u), ItemId(v), c);
            }
            if let Some(k) = planted {
                // Plant at offset ids so noise overlaps only partially.
                for u in 0..k as u32 {
                    for v in 0..k as u32 {
                        b.add_click(UserId(100 + u), ItemId(100 + v), 13);
                    }
                }
            }
            if filler {
                for i in 0..600u32 {
                    b.add_click(UserId(1000 + i), ItemId(1000 + i), 1);
                }
            }
            (b.build(), planted, filler)
        })
}

fn params(k: usize, alpha: f64) -> RicdParams {
    RicdParams {
        k1: k,
        k2: k,
        alpha,
        ..RicdParams::default()
    }
}

fn run(
    g: &BipartiteGraph,
    p: &RicdParams,
    workers: usize,
    strategy: SquareStrategy,
    mode: FixpointMode,
) -> ((Vec<UserId>, Vec<ItemId>), ExtractionStats) {
    let mut view = GraphView::full(g);
    let stats = extract_with(
        &mut view,
        p,
        &WorkerPool::new(workers),
        strategy,
        mode,
        None,
    );
    (view.alive_sets(), stats)
}

/// Detection-module output as comparable (users, items) id lists.
fn groups(
    g: &BipartiteGraph,
    p: &RicdParams,
    mode: FixpointMode,
) -> Vec<(Vec<UserId>, Vec<ItemId>)> {
    let out = detect_groups_with(
        g,
        &Seeds::none(),
        p,
        &WorkerPool::new(2),
        SquareStrategy::Parallel,
        mode,
        None,
    );
    out.groups
        .into_iter()
        .map(|gr| (gr.users, gr.items))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The delta fixpoint is an optimisation, not an approximation: it must
    /// agree with the full-rescan baseline vertex for vertex.
    #[test]
    fn delta_matches_full_rescan(
        (g, _, _) in graphs(),
        k in 3usize..8,
        alpha in 0.7f64..=1.0,
    ) {
        let p = params(k, alpha);
        let (full, _) = run(&g, &p, 2, SquareStrategy::Parallel, FixpointMode::FullRescan);
        let (delta, _) = run(&g, &p, 2, SquareStrategy::Parallel, FixpointMode::Delta);
        prop_assert_eq!(&full, &delta, "delta diverged from full rescan (parallel)");
        let (delta_seq, _) =
            run(&g, &p, 1, SquareStrategy::SequentialOrdered, FixpointMode::Delta);
        prop_assert_eq!(&full, &delta_seq, "delta diverged from full rescan (sequential)");
        // Same invariant one layer up: the detection module's group output
        // (connected components of the survivors) must also be identical.
        prop_assert_eq!(
            groups(&g, &p, FixpointMode::FullRescan),
            groups(&g, &p, FixpointMode::Delta),
            "group output diverged between fixpoint modes"
        );
    }

    /// With filler pushing the graph past the compaction threshold and a
    /// surviving planted biclique keeping the alive set non-empty, the delta
    /// run must actually take the compacted path — and still agree.
    #[test]
    fn delta_compacts_and_still_matches(
        (g, planted, filler) in graphs(),
        k in 3usize..6,
    ) {
        prop_assume!(filler);
        prop_assume!(planted.is_some_and(|size| size >= k));
        let p = params(k, 1.0);
        let (full, full_stats) =
            run(&g, &p, 2, SquareStrategy::Parallel, FixpointMode::FullRescan);
        let (delta, delta_stats) =
            run(&g, &p, 2, SquareStrategy::Parallel, FixpointMode::Delta);
        prop_assert_eq!(&full, &delta);
        prop_assert!(delta_stats.compactions >= 1, "filler world should compact");
        prop_assert_eq!(full_stats.compactions, 0, "full rescan never compacts");
        prop_assert!(!full.0.is_empty(), "planted biclique should survive");
    }
}
