//! Property tests for the (α, k₁, k₂)-extension biclique extraction
//! (Algorithm 3): the Lemma 1/2 invariants on survivors, planted-structure
//! completeness, fixpoint idempotence, and strategy agreement.

use proptest::prelude::*;
use ricd_core::extract::{extract, SquareStrategy};
use ricd_core::params::RicdParams;
use ricd_engine::WorkerPool;
use ricd_graph::twohop::{self, CommonNeighborScratch};
use ricd_graph::{BipartiteGraph, GraphBuilder, GraphView, ItemId, UserId};

/// Random sparse noise plus an optional planted biclique.
fn graphs() -> impl Strategy<Value = (BipartiteGraph, Option<usize>)> {
    (
        proptest::collection::vec((0u32..60, 0u32..40, 1u32..20), 0..300),
        proptest::option::of(6usize..12), // planted k x k biclique size
    )
        .prop_map(|(noise, planted)| {
            let mut b = GraphBuilder::new();
            for (u, v, c) in noise {
                b.add_click(UserId(u), ItemId(v), c);
            }
            if let Some(k) = planted {
                // Plant at offset ids so noise overlaps only partially.
                for u in 0..k as u32 {
                    for v in 0..k as u32 {
                        b.add_click(UserId(100 + u), ItemId(100 + v), 13);
                    }
                }
            }
            (b.build(), planted)
        })
}

fn params(k: usize, alpha: f64) -> RicdParams {
    RicdParams {
        k1: k,
        k2: k,
        alpha,
        ..RicdParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 1: every survivor satisfies the degree bounds.
    #[test]
    fn survivors_satisfy_degree_bounds((g, _) in graphs(), k in 3usize..8) {
        let p = params(k, 1.0);
        let mut view = GraphView::full(&g);
        extract(&mut view, &p, &WorkerPool::new(2), SquareStrategy::Parallel);
        for u in view.users() {
            prop_assert!(view.user_degree(u) >= p.user_degree_bound(),
                "{u} degree {} < bound {}", view.user_degree(u), p.user_degree_bound());
        }
        for v in view.items() {
            prop_assert!(view.item_degree(v) >= p.item_degree_bound());
        }
    }

    /// Lemma 2: every survivor has enough (α, k)-neighbors (self included
    /// when its degree qualifies).
    #[test]
    fn survivors_satisfy_neighbor_bounds((g, _) in graphs(), k in 3usize..8) {
        let p = params(k, 1.0);
        let mut view = GraphView::full(&g);
        extract(&mut view, &p, &WorkerPool::new(2), SquareStrategy::Parallel);
        let mut scratch = CommonNeighborScratch::new(g.num_users());
        for u in view.users() {
            let mut count = usize::from(view.user_degree(u) as u32 >= p.user_common_bound());
            twohop::for_each_user_common_neighbor(&view, u, &mut scratch, |_, c| {
                if c >= p.user_common_bound() {
                    count += 1;
                }
            });
            prop_assert!(count >= p.k1, "{u} has {count} qualified neighbors < k1 {}", p.k1);
        }
    }

    /// A planted biclique at least (k1, k2) large always survives intact.
    #[test]
    fn planted_biclique_survives((g, planted) in graphs(), k in 3usize..6) {
        prop_assume!(planted.is_some());
        let size = planted.unwrap();
        prop_assume!(size >= k);
        let p = params(k, 1.0);
        let mut view = GraphView::full(&g);
        extract(&mut view, &p, &WorkerPool::new(2), SquareStrategy::Parallel);
        for u in 0..size as u32 {
            prop_assert!(view.user_alive(UserId(100 + u)), "planted worker pruned");
        }
        for v in 0..size as u32 {
            prop_assert!(view.item_alive(ItemId(100 + v)), "planted target pruned");
        }
    }

    /// Extraction is idempotent: a second run removes nothing.
    #[test]
    fn extraction_is_idempotent((g, _) in graphs(), k in 3usize..8) {
        let p = params(k, 1.0);
        let mut view = GraphView::full(&g);
        extract(&mut view, &p, &WorkerPool::new(2), SquareStrategy::Parallel);
        let before = view.alive_sets();
        let stats = extract(&mut view, &p, &WorkerPool::new(2), SquareStrategy::Parallel);
        prop_assert_eq!(view.alive_sets(), before);
        prop_assert_eq!(stats.core_removed_users + stats.square_removed_users, 0);
    }

    /// Parallel and sequential strategies reach the same fixpoint.
    #[test]
    fn strategies_agree((g, _) in graphs(), k in 3usize..8, alpha in 0.7f64..=1.0) {
        let p = params(k, alpha);
        let mut a = GraphView::full(&g);
        extract(&mut a, &p, &WorkerPool::new(4), SquareStrategy::Parallel);
        let mut b = GraphView::full(&g);
        extract(&mut b, &p, &WorkerPool::new(1), SquareStrategy::SequentialOrdered);
        prop_assert_eq!(a.alive_sets(), b.alive_sets());
    }

    /// Looser α never prunes more than stricter α (monotonicity of the
    /// admission condition).
    #[test]
    fn alpha_monotonicity((g, _) in graphs(), k in 3usize..8) {
        let mut strict = GraphView::full(&g);
        extract(&mut strict, &params(k, 1.0), &WorkerPool::new(2), SquareStrategy::Parallel);
        let mut loose = GraphView::full(&g);
        extract(&mut loose, &params(k, 0.7), &WorkerPool::new(2), SquareStrategy::Parallel);
        // Everything alive under α=1.0 stays alive under α=0.7 (the bounds
        // only shrink).
        for u in strict.users() {
            prop_assert!(loose.user_alive(u), "{u} alive at α=1.0 but pruned at α=0.7");
        }
        for v in strict.items() {
            prop_assert!(loose.item_alive(v));
        }
    }
}
