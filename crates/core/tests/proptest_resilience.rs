//! Property tests for the fault-tolerance surface of the detection core:
//! checkpoint/resume equivalence and replay idempotence under arbitrary
//! click streams.

use proptest::prelude::*;
use ricd_core::prelude::*;
use ricd_graph::{ItemId, UserId};

/// Strategy: a stream of small batches of click records.
fn batches() -> impl Strategy<Value = Vec<Vec<(u32, u32, u32)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..24, 0u32..12, 0u32..9), 0..30),
        1..6,
    )
}

fn detector() -> StreamingDetector {
    StreamingDetector::new(RicdPipeline::new(RicdParams::default()))
}

fn feed(d: &mut StreamingDetector, batches: &[Vec<(u32, u32, u32)>], from_seq: u64) {
    for (i, b) in batches.iter().enumerate() {
        let recs: Vec<(UserId, ItemId, u32)> = b
            .iter()
            .map(|&(u, v, c)| (UserId(u), ItemId(v), c))
            .collect();
        d.ingest_batch(from_seq + i as u64, &recs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Checkpointing at any cut point and restoring yields a detector
    /// indistinguishable from one that never crashed.
    #[test]
    fn checkpoint_resume_is_transparent(bs in batches(), cut_frac in 0.0f64..1.0) {
        let mut steady = detector();
        feed(&mut steady, &bs, 0);

        let cut = ((bs.len() as f64) * cut_frac) as usize;
        let mut before = detector();
        feed(&mut before, &bs[..cut], 0);
        let ckpt = before.checkpoint();
        drop(before);

        let mut resumed = StreamingDetector::restore(
            RicdPipeline::new(RicdParams::default()),
            ckpt,
        );
        feed(&mut resumed, &bs[cut..], cut as u64);

        prop_assert_eq!(steady.groups(), resumed.groups());
        prop_assert_eq!(steady.graph().num_edges(), resumed.graph().num_edges());
        prop_assert_eq!(steady.graph().total_clicks(), resumed.graph().total_clicks());
        prop_assert_eq!(steady.next_seq(), resumed.next_seq());
    }

    /// Redelivering any prefix of already-ingested batches (at-least-once
    /// delivery) changes nothing: replays are dropped by sequence number.
    #[test]
    fn replayed_prefix_is_idempotent(bs in batches(), replay_frac in 0.0f64..1.0) {
        let mut clean = detector();
        feed(&mut clean, &bs, 0);

        let replay_to = ((bs.len() as f64) * replay_frac) as usize;
        let mut faulty = detector();
        feed(&mut faulty, &bs, 0);
        for (i, b) in bs[..replay_to].iter().enumerate() {
            let recs: Vec<(UserId, ItemId, u32)> = b
                .iter()
                .map(|&(u, v, c)| (UserId(u), ItemId(v), c))
                .collect();
            let stats = faulty.ingest_batch(i as u64, &recs);
            prop_assert!(stats.replayed);
        }

        prop_assert_eq!(clean.groups(), faulty.groups());
        prop_assert_eq!(clean.graph().num_edges(), faulty.graph().num_edges());
        prop_assert_eq!(clean.graph().total_clicks(), faulty.graph().total_clicks());
    }

    /// Zero-click records are quarantined, never ingested: the rejected
    /// count plus accepted records conserves the batch size.
    #[test]
    fn rejected_records_are_conserved(b in proptest::collection::vec((0u32..24, 0u32..12, 0u32..9), 0..60)) {
        let mut d = detector();
        let recs: Vec<(UserId, ItemId, u32)> = b
            .iter()
            .map(|&(u, v, c)| (UserId(u), ItemId(v), c))
            .collect();
        let stats = d.ingest_batch(0, &recs);
        let zero = b.iter().filter(|&&(_, _, c)| c == 0).count();
        prop_assert_eq!(stats.rejected, zero);
        let total: u64 = b.iter().map(|&(_, _, c)| c as u64).sum();
        prop_assert_eq!(d.graph().total_clicks(), total);
    }
}
