//! Differential property tests for the sharded detection runtime: on
//! arbitrary generated worlds, `detect_groups_sharded` must produce exactly
//! the flagged-group set of the unsharded `detect_groups_with`, for every
//! shard configuration — and one layer up, `RicdPipeline::run_sharded` must
//! reproduce the unsharded pipeline's risk scores and ranking.
//!
//! A second suite engineers worlds that *force* the hard paths: planted
//! bicliques glued into one giant component through a surviving hub item,
//! sharded under a tiny user cap so the planner must hash-split the giant
//! and replicate boundary items — verified through the `shard.*` counters,
//! not assumed.

use proptest::prelude::*;
use ricd_core::detect::{detect_groups_with, Seeds};
use ricd_core::extract::{FixpointMode, SquareStrategy};
use ricd_core::kernel::KernelSelection;
use ricd_core::params::RicdParams;
use ricd_core::pipeline::RicdPipeline;
use ricd_core::result::SuspiciousGroup;
use ricd_core::shard_run::{detect_groups_sharded, ShardConfig};
use ricd_engine::WorkerPool;
use ricd_graph::{BipartiteGraph, GraphBuilder, ItemId, UserId};
use ricd_obs::MetricsRegistry;

fn params(k: usize) -> RicdParams {
    RicdParams {
        k1: k,
        k2: k,
        ..RicdParams::default()
    }
}

/// Arbitrary worlds: random sparse noise plus a few planted bicliques at
/// disjoint id offsets, optionally glued through a shared hub item.
fn worlds() -> impl Strategy<Value = BipartiteGraph> {
    (
        proptest::collection::vec((0u32..80, 0u32..50, 1u32..20), 0..400),
        proptest::collection::vec(5usize..10, 0..3), // planted biclique sizes
        any::<bool>(),                               // glue plants through a hub item
    )
        .prop_map(|(noise, plants, glue)| {
            let mut b = GraphBuilder::new();
            for (u, v, c) in noise {
                b.add_click(UserId(u), ItemId(v), c);
            }
            for (p, k) in plants.iter().enumerate() {
                let (ubase, vbase) = (200 + 100 * p as u32, 200 + 100 * p as u32);
                for u in 0..*k as u32 {
                    for v in 0..*k as u32 {
                        b.add_click(UserId(ubase + u), ItemId(vbase + v), 13);
                    }
                    if glue {
                        b.add_click(UserId(ubase + u), ItemId(77), 2);
                    }
                }
            }
            b.build()
        })
}

fn shard_configs() -> impl Strategy<Value = ShardConfig> {
    (0usize..3, 1usize..8, 1usize..40, any::<bool>()).prop_map(
        |(which, shards, max_users, wedge_only)| {
            let kernel = if wedge_only {
                KernelSelection::WedgeOnly
            } else {
                KernelSelection::Auto
            };
            match which {
                0 => ShardConfig {
                    kernel,
                    ..ShardConfig::default()
                },
                1 => ShardConfig {
                    shards: Some(shards),
                    max_users: None,
                    kernel,
                },
                _ => ShardConfig {
                    shards: None,
                    max_users: Some(max_users),
                    kernel,
                },
            }
        },
    )
}

fn unsharded_groups(g: &BipartiteGraph, p: &RicdParams) -> Vec<SuspiciousGroup> {
    detect_groups_with(
        g,
        &Seeds::none(),
        p,
        &WorkerPool::new(2),
        SquareStrategy::Parallel,
        FixpointMode::Delta,
        None,
    )
    .groups
}

/// Worlds engineered to force giant-component splitting: `plants` bicliques
/// of `k + 2` users × `k + 1` items, every worker also clicking hub item 0,
/// plus a hub background crowd. The hub shares ≥ k users with every planted
/// item, so it *survives* extraction and welds all plants into one giant
/// component that a small user cap must hash-split.
fn glued_world(plants: usize, k: usize, crowd: u32) -> BipartiteGraph {
    let mut b = GraphBuilder::new();
    let mut next_user = 0u32;
    for p in 0..plants {
        for _ in 0..k + 2 {
            let u = UserId(next_user);
            next_user += 1;
            b.add_click(u, ItemId(0), 1);
            for v in 0..(k + 1) as u32 {
                b.add_click(u, ItemId(1 + (p as u32) * 50 + v), 13);
            }
        }
    }
    for c in 0..crowd {
        b.add_click(UserId(10_000 + c), ItemId(0), 1);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharding is an execution strategy, not an approximation: identical
    /// flagged groups on arbitrary worlds under arbitrary shard configs.
    #[test]
    fn sharded_groups_match_unsharded(
        g in worlds(),
        cfg in shard_configs(),
        k in 3usize..7,
        workers in 1usize..4,
    ) {
        let p = params(k);
        let want = unsharded_groups(&g, &p);
        let got = detect_groups_sharded(
            &g,
            &Seeds::none(),
            &p,
            &WorkerPool::new(workers),
            &cfg,
            &(|| false),
            None,
        )
        .expect("sharded detection completes")
        .groups;
        prop_assert_eq!(got, want, "cfg={:?} workers={}", cfg, workers);
    }

    /// One layer up: the sharded pipeline reproduces the unsharded risk
    /// scores and ranking, not just the group partition.
    #[test]
    fn sharded_pipeline_matches_risk_scores(
        g in worlds(),
        cfg in shard_configs(),
        k in 3usize..6,
    ) {
        let p = params(k);
        let want = RicdPipeline::new(p).run(&g);
        let got = RicdPipeline::new(p).run_sharded(&g, &cfg);
        prop_assert_eq!(got.status, want.status);
        prop_assert_eq!(got.groups, want.groups);
        prop_assert_eq!(got.ranked_users, want.ranked_users, "user risk ordering diverged");
        prop_assert_eq!(got.ranked_items, want.ranked_items, "item risk ordering diverged");
    }

    /// The engineered giant: a tiny user cap must force hash splitting with
    /// boundary-item replication (proven via counters), and the output must
    /// still be byte-identical to the unsharded run.
    #[test]
    fn forced_giant_split_still_matches(
        plants in 2usize..5,
        k in 3usize..6,
        crowd in 20u32..200,
        cap in 1usize..6,
        workers in 1usize..4,
    ) {
        let g = glued_world(plants, k, crowd);
        let p = params(k);
        let want = unsharded_groups(&g, &p);
        prop_assert_eq!(want.len(), 1, "hub must weld the plants into one group");

        let registry = MetricsRegistry::new();
        let got = detect_groups_sharded(
            &g,
            &Seeds::none(),
            &p,
            &WorkerPool::new(workers),
            &ShardConfig { shards: None, max_users: Some(cap), ..ShardConfig::default() },
            &(|| false),
            Some(&registry),
        )
        .expect("sharded detection completes")
        .groups;
        prop_assert_eq!(got, want);

        let snap = registry.snapshot();
        prop_assert!(
            snap.counter("shard.giant_components").unwrap_or(0) > 0,
            "cap {} must classify the welded component as a giant", cap
        );
        prop_assert!(
            snap.counter("shard.hash").unwrap_or(0) > 0,
            "the giant must be hash-split"
        );
        prop_assert!(
            snap.counter("shard.replicated_items").unwrap_or(0) > 0,
            "hash shards must replicate boundary items"
        );
    }
}
