//! Property tests for exactly-once group reporting in the streaming
//! detector: planted campaigns whose clicks accumulate across batches must
//! be reported exactly once, no matter how the transport mangles delivery
//! (at-least-once redelivery of any already-ingested batch, arbitrary
//! arrival order).
//!
//! The delivery contract under test (see `ingest_batch`): a batch whose
//! sequence number is below the next expected one is a redelivery and is
//! dropped whole; a batch at or above it is ingested and advances the
//! counter past it. Replayed click records therefore never double-count
//! toward `T_click`, and a group crossing the threshold is merged into the
//! running result exactly once.

use proptest::prelude::*;
use ricd_core::prelude::*;
use ricd_graph::{ItemId, UserId};

/// Spacing between planted groups' user/item id ranges.
const GROUP_STRIDE: u32 = 100;
/// Workers per planted group (≥ k1 = 10 under default params).
const WORKERS: u32 = 12;
/// Targets per planted group (≥ k2 = 10 under default params).
const TARGETS: u32 = 11;

/// A hot item plus light organic noise, as batch 0 of every stream.
fn background() -> Vec<(UserId, ItemId, u32)> {
    let mut recs = Vec::new();
    for u in 10_000..11_200u32 {
        recs.push((UserId(u), ItemId(0), 1));
    }
    for u in 0..100u32 {
        recs.push((UserId(5_000 + u), ItemId(1_000 + u % 30), 2));
    }
    recs
}

/// The planted world as a batch stream: background first, then each
/// group's target clicks arriving in three slices of 5 (crossing
/// `T_click = 12` only in the third slice, so every group's detection
/// straddles batch boundaries — the case replays could double-count).
fn planted_batches(num_groups: u32) -> Vec<Vec<(UserId, ItemId, u32)>> {
    let mut batches = vec![background()];
    for g in 0..num_groups {
        let (u0, v0) = (g * GROUP_STRIDE, 1 + g * GROUP_STRIDE);
        let mut slices = vec![Vec::new(), Vec::new(), Vec::new()];
        for u in u0..u0 + WORKERS {
            for v in v0..v0 + TARGETS {
                for slice in &mut slices {
                    slice.push((UserId(u), ItemId(v), 5));
                }
            }
            slices[0].push((UserId(u), ItemId(0), 1));
        }
        batches.extend(slices);
    }
    batches
}

fn detector() -> StreamingDetector {
    StreamingDetector::new(RicdPipeline::new(RicdParams::default()))
}

/// Asserts every reported group has a user set distinct from all others —
/// the "reported exactly once" half of the dedup contract.
fn assert_no_duplicate_groups(d: &StreamingDetector) -> Result<(), TestCaseError> {
    let groups = d.groups();
    for (i, a) in groups.iter().enumerate() {
        for b in &groups[i + 1..] {
            prop_assert!(
                a.users != b.users,
                "the same user set was reported as two groups"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Redelivering already-ingested batches at arbitrary points in the
    /// stream changes nothing: the final groups match a clean exactly-once
    /// run, each group is reported once, and the per-batch `new_groups`
    /// counters sum to the group count (no group is announced twice).
    #[test]
    fn groups_survive_interleaved_replays_exactly_once(
        num_groups in 1u32..=3,
        // For each in-order delivery position, how many replays to inject
        // right after it and (as a fraction) which earlier batch to replay.
        replays in proptest::collection::vec((0usize..3, 0.0f64..1.0), 12),
    ) {
        let batches = planted_batches(num_groups);

        let mut clean = detector();
        let mut clean_new_groups = 0;
        for (seq, b) in batches.iter().enumerate() {
            clean_new_groups += clean.ingest_batch(seq as u64, b).new_groups;
        }
        prop_assert_eq!(
            clean.groups().len(),
            num_groups as usize,
            "every planted campaign is detected on the clean stream"
        );
        prop_assert_eq!(clean_new_groups, clean.groups().len());

        let mut faulty = detector();
        let mut faulty_new_groups = 0;
        for (seq, b) in batches.iter().enumerate() {
            faulty_new_groups += faulty.ingest_batch(seq as u64, b).new_groups;
            let (count, frac) = replays[seq % replays.len()];
            for _ in 0..count {
                let replay_seq = ((seq as f64) * frac) as usize;
                let stats = faulty.ingest_batch(replay_seq as u64, &batches[replay_seq]);
                prop_assert!(stats.replayed, "an old sequence number must be dropped");
                prop_assert_eq!(stats.new_groups, 0);
            }
        }

        prop_assert_eq!(clean.groups(), faulty.groups());
        prop_assert_eq!(faulty_new_groups, faulty.groups().len());
        prop_assert_eq!(clean.graph().total_clicks(), faulty.graph().total_clicks());
        assert_no_duplicate_groups(&faulty)?;
    }

    /// Arbitrary arrival order: batches delivered in a shuffled order keep
    /// their original sequence numbers, so the detector accepts exactly
    /// those arriving at-or-past its counter and drops the rest as
    /// redeliveries. The result must equal a clean run over just the
    /// accepted batches, with every group reported exactly once.
    #[test]
    fn out_of_order_delivery_reports_accepted_groups_once(
        num_groups in 1u32..=2,
        order in (0u64..u64::MAX).prop_map(|seed| {
            use rand::Rng;
            let mut rng = proptest::rng_from_seed(seed);
            let mut idx: Vec<usize> = (0..7).collect();
            for i in (1..idx.len()).rev() {
                let j = rng.gen_range(0..=i);
                idx.swap(i, j);
            }
            idx
        }),
    ) {
        let batches = planted_batches(num_groups);
        let order: Vec<usize> = order.into_iter().filter(|&i| i < batches.len()).collect();

        let mut shuffled = detector();
        let mut accepted = Vec::new();
        let mut expected_next = 0u64;
        let mut announced = 0;
        for &i in &order {
            let stats = shuffled.ingest_batch(i as u64, &batches[i]);
            announced += stats.new_groups;
            if (i as u64) < expected_next {
                prop_assert!(stats.replayed, "below-counter batches are dropped");
            } else {
                prop_assert!(!stats.replayed);
                accepted.push(i);
                expected_next = i as u64 + 1;
            }
        }
        prop_assert_eq!(shuffled.next_seq(), expected_next);

        // Reference: the accepted batches alone, delivered exactly once in
        // the same arrival order.
        let mut reference = detector();
        for (seq, &i) in accepted.iter().enumerate() {
            reference.ingest_batch(seq as u64, &batches[i]);
        }

        prop_assert_eq!(shuffled.groups(), reference.groups());
        prop_assert_eq!(announced, shuffled.groups().len());
        prop_assert_eq!(
            shuffled.graph().total_clicks(),
            reference.graph().total_clicks()
        );
        assert_no_duplicate_groups(&shuffled)?;
    }
}
