//! Detector-aware attacker strategies (ROADMAP item 2).
//!
//! The base [`crate::attack`] planner implements the paper's single optimal
//! strategy. The adaptive-fraudster literature (see PAPERS.md: poisoning
//! attacks on graph recommenders, RecAD's attack/defense library) models
//! attackers who *know the detector's operating point* and shape their
//! campaigns against it. This module makes that attacker pluggable: an
//! [`AttackerStrategy`] receives the organic world, the detector's published
//! thresholds ([`DetectorProfile`]) and a click [`AttackBudget`], and returns
//! a timestamped click plan plus exact ground truth.
//!
//! Every strategy obeys two contracts, property-tested in
//! `crates/datagen/tests/proptest_attack.rs`:
//!
//! * **seed-stable** — the same `StdRng` seed yields a byte-identical plan;
//! * **budget-sound** — the total injected clicks never exceed the budget,
//!   for any group split ([`clamp_to_budget`] is the hard backstop; the
//!   strategies additionally only plant whole groups they can afford).
//!
//! The shipped strategies:
//!
//! * [`PaperOptimal`] — the paper's Section IV-A optimum, as the fixed
//!   reference cell of the adversarial matrix;
//! * [`CamouflageSweep`] — divert a ratio of each worker's target budget
//!   into single-click camouflage so no edge reaches `T_click`;
//! * [`BudgetSplit`] — many small groups sized one below the `(k₁, k₂)`
//!   floor, so CorePruning removes every target before a group forms;
//! * [`HotItemMimicry`] — pump the fresh targets past `T_hot` with diffuse
//!   organic-looking singles, so the targets are misclassified as hot items
//!   and the workers never show a heavy click on an *ordinary* item;
//! * [`SlowDrip`] — the full per-edge budget split into unit clicks and
//!   dripped flat over the horizon through the PR-9 [`RampSchedule`]
//!   machinery, so no sliding window ever accumulates `T_click` on one edge.

use crate::attack::IdAllocator;
use crate::timeline::{RampSchedule, Tick, TimedRecord};
use crate::truth::{GroundTruth, InjectedGroup};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use ricd_graph::{ItemId, UserId};
use serde::{Deserialize, Serialize};

/// What the attacker can see of the organic world.
#[derive(Clone, Debug)]
pub struct WorldView {
    /// Number of organic user accounts (ids `0..organic_users`).
    pub organic_users: usize,
    /// Number of organic catalog items (ids `0..organic_items`).
    pub organic_items: usize,
    /// The popularity head — items eligible to be ridden.
    pub hot_pool: Vec<ItemId>,
    /// The catalog tail — items eligible as camouflage clicks.
    pub ordinary_pool: Vec<ItemId>,
    /// Simulation horizon in ticks; all timestamps land in `[0, horizon)`.
    pub horizon: Tick,
}

/// The detector operating point the attacker adapts to — a plain-number
/// mirror of `ricd_core::RicdParams` (datagen deliberately does not depend
/// on the core crate; the eval driver translates).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DetectorProfile {
    /// Minimum users in an extracted structure (`k₁`).
    pub k1: usize,
    /// Minimum items in an extracted structure (`k₂`).
    pub k2: usize,
    /// Extension tolerance `α`.
    pub alpha: f64,
    /// Hot-item threshold on total item clicks (`T_hot`).
    pub t_hot: u64,
    /// Abnormal-click threshold on a single edge (`T_click`).
    pub t_click: u32,
}

impl Default for DetectorProfile {
    /// The paper's published operating point (Section VI-B).
    fn default() -> Self {
        Self {
            k1: 10,
            k2: 10,
            alpha: 1.0,
            t_hot: 1_000,
            t_click: 12,
        }
    }
}

/// The attacker's total click budget — every injected click (target hits,
/// hot rides, camouflage, and mimicry pumping alike) is paid from it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackBudget {
    /// Maximum total clicks across all injected records.
    pub clicks: u64,
}

/// A planned adversarial campaign: timestamped clicks plus ground truth.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdversarialPlan {
    /// Timestamped fake click records.
    pub records: Vec<TimedRecord>,
    /// Who did what (workers and targets per group).
    pub truth: GroundTruth,
}

impl AdversarialPlan {
    /// Total clicks across all records — the budget actually spent.
    pub fn total_clicks(&self) -> u64 {
        self.records.iter().map(|r| r.clicks as u64).sum()
    }
}

/// A pluggable detector-aware attacker.
pub trait AttackerStrategy {
    /// Stable machine name, used as the matrix row key.
    fn name(&self) -> &'static str;

    /// True if the plan's timestamps carry the attack (evaluate through a
    /// windowed replay); false if the one-shot aggregate graph suffices.
    fn temporal(&self) -> bool {
        false
    }

    /// Plans the campaign. Deterministic given the `rng` seed; total
    /// clicks never exceed `budget.clicks`.
    fn plan(
        &self,
        world: &WorldView,
        detector: &DetectorProfile,
        budget: AttackBudget,
        alloc: &mut IdAllocator,
        rng: &mut StdRng,
    ) -> Result<AdversarialPlan, String>;
}

/// Hard budget backstop: walks the records in order, truncating the first
/// record that would overflow the budget and dropping the rest. Strategies
/// plan whole affordable groups so this is normally a no-op, but it makes
/// budget-soundness unconditional.
pub fn clamp_to_budget(records: &mut Vec<TimedRecord>, budget: AttackBudget) {
    let mut spent = 0u64;
    let mut keep = records.len();
    for (i, r) in records.iter_mut().enumerate() {
        let left = budget.clicks.saturating_sub(spent);
        if left == 0 {
            keep = i;
            break;
        }
        if r.clicks as u64 > left {
            r.clicks = left as u32;
        }
        spent += r.clicks as u64;
    }
    records.truncate(keep);
}

/// Uniform random timestamp over the world's horizon.
fn stamp(rng: &mut StdRng, horizon: Tick) -> Tick {
    rng.gen_range(0..horizon.max(1))
}

/// The worker × target biclique shape shared by the one-shot strategies.
struct GroupShape {
    workers: usize,
    targets: usize,
    /// Clicks per worker→target edge.
    per_edge: u32,
    /// Hot items each worker rides (single clicks).
    rides: usize,
}

impl GroupShape {
    /// Upper bound on one group's click cost.
    fn cost(&self) -> u64 {
        (self.workers * self.targets) as u64 * self.per_edge as u64
            + (self.workers * self.rides) as u64
    }
}

/// Plants one group of `shape`: fresh workers and targets, per-edge clicks
/// at a single timestamp each, plus one-click rides on sampled hot items.
fn plant_group(
    shape: &GroupShape,
    world: &WorldView,
    alloc: &mut IdAllocator,
    rng: &mut StdRng,
    plan: &mut AdversarialPlan,
) {
    let workers: Vec<UserId> = (0..shape.workers).map(|_| alloc.user()).collect();
    let targets: Vec<ItemId> = (0..shape.targets).map(|_| alloc.item()).collect();
    let rides: Vec<ItemId> = world
        .hot_pool
        .choose_multiple(rng, shape.rides.min(world.hot_pool.len()))
        .copied()
        .collect();
    for &w in &workers {
        for &h in &rides {
            plan.records.push(TimedRecord {
                user: w,
                item: h,
                clicks: 1,
                ts: stamp(rng, world.horizon),
            });
        }
        for &t in &targets {
            plan.records.push(TimedRecord {
                user: w,
                item: t,
                clicks: shape.per_edge,
                ts: stamp(rng, world.horizon),
            });
        }
    }
    plan.truth.groups.push(InjectedGroup {
        workers,
        targets,
        ridden_hot_items: rides,
    });
}

/// The paper's Section IV-A optimum, unchanged: a comfortable-margin
/// biclique (`k₁+2 × k₂+2` at `T_click+2` per edge) riding two hot items.
/// This is the matrix's fixed reference cell — the detector must keep
/// seed-level recall on it at round 0, whatever else changes.
#[derive(Clone, Copy, Debug, Default)]
pub struct PaperOptimal;

impl AttackerStrategy for PaperOptimal {
    fn name(&self) -> &'static str {
        "paper_optimal"
    }

    fn plan(
        &self,
        world: &WorldView,
        detector: &DetectorProfile,
        budget: AttackBudget,
        alloc: &mut IdAllocator,
        rng: &mut StdRng,
    ) -> Result<AdversarialPlan, String> {
        let shape = GroupShape {
            workers: detector.k1 + 2,
            targets: detector.k2 + 2,
            per_edge: detector.t_click + 2,
            rides: 2.min(world.hot_pool.len()),
        };
        let mut plan = AdversarialPlan::default();
        let mut left = budget.clicks;
        while left >= shape.cost() {
            plant_group(&shape, world, alloc, rng, &mut plan);
            left -= shape.cost();
        }
        clamp_to_budget(&mut plan.records, budget);
        Ok(plan)
    }
}

/// Camouflage-ratio sweep: each worker keeps the paper's *total* target
/// budget but diverts `ratio` of it into single-click camouflage on random
/// ordinary items, so no worker→target edge reaches `T_click`. The planted
/// biclique still survives extraction (extraction is weight-agnostic) —
/// the evasion defeats the *screening* stage, and only a `T_click`
/// relaxation (the Module-3 response) recovers it.
#[derive(Clone, Copy, Debug)]
pub struct CamouflageSweep {
    /// Fraction of the per-edge target budget diverted to camouflage,
    /// in `[0, 1)`.
    pub ratio: f64,
}

impl Default for CamouflageSweep {
    fn default() -> Self {
        Self { ratio: 0.5 }
    }
}

impl AttackerStrategy for CamouflageSweep {
    fn name(&self) -> &'static str {
        "camouflage_sweep"
    }

    fn plan(
        &self,
        world: &WorldView,
        detector: &DetectorProfile,
        budget: AttackBudget,
        alloc: &mut IdAllocator,
        rng: &mut StdRng,
    ) -> Result<AdversarialPlan, String> {
        if !(0.0..1.0).contains(&self.ratio) {
            return Err("camouflage ratio must be in [0, 1)".into());
        }
        let full = detector.t_click + 2;
        let per_edge = (((1.0 - self.ratio) * full as f64).floor() as u32).max(1);
        let shape = GroupShape {
            workers: detector.k1 + 2,
            targets: detector.k2 + 2,
            per_edge,
            rides: 2.min(world.hot_pool.len()),
        };
        // The diverted budget per worker, spent as camouflage singles.
        let diverted = shape.targets as u64 * (full - per_edge) as u64;
        let group_cost = shape.cost() + shape.workers as u64 * diverted;
        let mut plan = AdversarialPlan::default();
        let mut left = budget.clicks;
        while left >= group_cost {
            plant_group(&shape, world, alloc, rng, &mut plan);
            let group = plan.truth.groups.last().expect("just planted");
            for &w in &group.workers.clone() {
                for &c in world
                    .ordinary_pool
                    .choose_multiple(rng, (diverted as usize).min(world.ordinary_pool.len()))
                {
                    plan.records.push(TimedRecord {
                        user: w,
                        item: c,
                        clicks: 1,
                        ts: stamp(rng, world.horizon),
                    });
                }
            }
            left -= group_cost;
        }
        clamp_to_budget(&mut plan.records, budget);
        Ok(plan)
    }
}

/// Budget splitting: many small groups sized one below the `(k₁, k₂)`
/// floor. Every target's degree is `k₁ − 1`, so round-0 CorePruning removes
/// all targets, the workers lose their support and follow, and nothing is
/// extracted. The Module-3 `k` decrement is the only response that brings
/// the groups back over the structural floor.
#[derive(Clone, Copy, Debug, Default)]
pub struct BudgetSplit;

impl AttackerStrategy for BudgetSplit {
    fn name(&self) -> &'static str {
        "budget_split"
    }

    fn plan(
        &self,
        world: &WorldView,
        detector: &DetectorProfile,
        budget: AttackBudget,
        alloc: &mut IdAllocator,
        rng: &mut StdRng,
    ) -> Result<AdversarialPlan, String> {
        let shape = GroupShape {
            // One below the extraction floor, but never below the
            // screening floors (3 users / 2 targets) — a smaller group
            // would be unreportable even under full relaxation.
            workers: detector.k1.saturating_sub(1).max(3),
            targets: detector.k2.saturating_sub(1).max(2),
            per_edge: detector.t_click,
            rides: 2.min(world.hot_pool.len()),
        };
        let mut plan = AdversarialPlan::default();
        let mut left = budget.clicks;
        while left >= shape.cost() {
            plant_group(&shape, world, alloc, rng, &mut plan);
            left -= shape.cost();
        }
        clamp_to_budget(&mut plan.records, budget);
        Ok(plan)
    }
}

/// Hot-item mimicry: plant the paper's biclique on fresh targets, then pump
/// each target past `T_hot` with diffuse single clicks from random organic
/// accounts. The detector misclassifies the targets as hot items; the
/// workers then have no heavy click on any *ordinary* group item and fail
/// the user behavior check. Only raising `T_hot` (Module 3) re-classifies
/// the targets as ordinary and recovers the group. A budget too small to
/// pump degenerates to an unpumped (and promptly caught) group — mimicry
/// is the expensive strategy.
#[derive(Clone, Copy, Debug, Default)]
pub struct HotItemMimicry;

impl HotItemMimicry {
    /// Per-target total clicks needed to clear `T_hot` with a 5% margin.
    fn hot_total(detector: &DetectorProfile) -> u64 {
        detector.t_hot + detector.t_hot / 20 + 1
    }
}

impl AttackerStrategy for HotItemMimicry {
    fn name(&self) -> &'static str {
        "hot_item_mimicry"
    }

    fn plan(
        &self,
        world: &WorldView,
        detector: &DetectorProfile,
        budget: AttackBudget,
        alloc: &mut IdAllocator,
        rng: &mut StdRng,
    ) -> Result<AdversarialPlan, String> {
        let shape = GroupShape {
            workers: detector.k1 + 2,
            targets: detector.k2,
            per_edge: detector.t_click + 2,
            rides: 0,
        };
        let worker_clicks_per_target = (shape.workers as u64) * shape.per_edge as u64;
        let pump_per_target = Self::hot_total(detector).saturating_sub(worker_clicks_per_target);
        let pumped_cost = shape.cost() + shape.targets as u64 * pump_per_target;
        let can_pump = world.organic_users > 0 && budget.clicks >= pumped_cost;

        let mut plan = AdversarialPlan::default();
        let mut left = budget.clicks;
        if can_pump {
            while left >= pumped_cost {
                plant_group(&shape, world, alloc, rng, &mut plan);
                let targets = plan
                    .truth
                    .groups
                    .last()
                    .expect("just planted")
                    .targets
                    .clone();
                for t in targets {
                    for _ in 0..pump_per_target {
                        let u = UserId(rng.gen_range(0..world.organic_users as u32));
                        plan.records.push(TimedRecord {
                            user: u,
                            item: t,
                            clicks: 1,
                            ts: stamp(rng, world.horizon),
                        });
                    }
                }
                left -= pumped_cost;
            }
        } else if left >= shape.cost() {
            plant_group(&shape, world, alloc, rng, &mut plan);
        }
        clamp_to_budget(&mut plan.records, budget);
        Ok(plan)
    }
}

/// Slow drip: the paper-optimal biclique, but every worker→target edge's
/// budget is split into unit clicks and dripped *flat* over the whole
/// horizon through the PR-9 [`RampSchedule`] machinery (a linear ramp would
/// concentrate the tail and hand a sliding window the full edge weight; the
/// detector-aware drip keeps every window's per-edge accumulation below
/// `T_click`). Defeated by the Module-3 `T_click` relaxation.
#[derive(Clone, Copy, Debug)]
pub struct SlowDrip {
    /// Drip slots across the horizon (the ramp schedule's resolution).
    pub slots: usize,
}

impl Default for SlowDrip {
    fn default() -> Self {
        Self { slots: 16 }
    }
}

impl AttackerStrategy for SlowDrip {
    fn name(&self) -> &'static str {
        "slow_drip"
    }

    fn temporal(&self) -> bool {
        true
    }

    fn plan(
        &self,
        world: &WorldView,
        detector: &DetectorProfile,
        budget: AttackBudget,
        alloc: &mut IdAllocator,
        rng: &mut StdRng,
    ) -> Result<AdversarialPlan, String> {
        if self.slots == 0 {
            return Err("slow drip needs at least one slot".into());
        }
        let workers = detector.k1 + 2;
        let targets = detector.k2 + 2;
        let per_edge = detector.t_click + 2;
        let group_cost = (workers * targets) as u64 * per_edge as u64;
        let slot_len = (world.horizon / self.slots as Tick).max(1);
        // Flat weights: the detector-aware choice (see the type docs).
        let sched = RampSchedule::weighted((0..self.slots).collect(), vec![1.0; self.slots]);

        let mut plan = AdversarialPlan::default();
        let mut left = budget.clicks;
        while left >= group_cost {
            let ws: Vec<UserId> = (0..workers).map(|_| alloc.user()).collect();
            let ts_items: Vec<ItemId> = (0..targets).map(|_| alloc.item()).collect();
            for &w in &ws {
                for &t in &ts_items {
                    for _ in 0..per_edge {
                        let slot = sched.pick(rng) as Tick;
                        let lo = slot * slot_len;
                        let hi = ((slot + 1) * slot_len).min(world.horizon).max(lo + 1);
                        plan.records.push(TimedRecord {
                            user: w,
                            item: t,
                            clicks: 1,
                            ts: lo + rng.gen_range(0..hi - lo),
                        });
                    }
                }
            }
            plan.truth.groups.push(InjectedGroup {
                workers: ws,
                targets: ts_items,
                ridden_hot_items: vec![],
            });
            left -= group_cost;
        }
        clamp_to_budget(&mut plan.records, budget);
        Ok(plan)
    }
}

/// The shipped strategy library, in matrix row order.
pub fn standard_strategies() -> Vec<Box<dyn AttackerStrategy>> {
    vec![
        Box::new(PaperOptimal),
        Box::new(CamouflageSweep::default()),
        Box::new(BudgetSplit),
        Box::new(HotItemMimicry),
        Box::new(SlowDrip::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn world() -> WorldView {
        WorldView {
            organic_users: 500,
            organic_items: 100,
            hot_pool: (0..4).map(ItemId).collect(),
            ordinary_pool: (4..100).map(ItemId).collect(),
            horizon: 1_600,
        }
    }

    fn plan_with(s: &dyn AttackerStrategy, budget: u64, seed: u64) -> AdversarialPlan {
        let w = world();
        let mut alloc = IdAllocator::new(w.organic_users, w.organic_items);
        let mut rng = StdRng::seed_from_u64(seed);
        s.plan(
            &w,
            &DetectorProfile::default(),
            AttackBudget { clicks: budget },
            &mut alloc,
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn library_has_at_least_four_strategies() {
        let lib = standard_strategies();
        assert!(
            lib.len() >= 4,
            "ISSUE demands ≥ 4 detector-aware strategies"
        );
        let mut names: Vec<&str> = lib.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), lib.len(), "names are unique row keys");
    }

    #[test]
    fn paper_optimal_matches_published_shape() {
        let p = plan_with(&PaperOptimal, 6_000, 7);
        assert_eq!(p.truth.groups.len(), 2, "6000 clicks buy two groups");
        let g = &p.truth.groups[0];
        assert_eq!(g.workers.len(), 12);
        assert_eq!(g.targets.len(), 12);
        assert_eq!(g.ridden_hot_items.len(), 2);
        let heavy = p
            .records
            .iter()
            .filter(|r| r.user == g.workers[0] && g.targets.contains(&r.item))
            .map(|r| r.clicks)
            .collect::<Vec<_>>();
        assert_eq!(heavy, vec![14; 12], "T_click + 2 per target edge");
    }

    #[test]
    fn camouflage_keeps_edges_below_t_click() {
        let p = plan_with(&CamouflageSweep::default(), 6_000, 7);
        assert!(!p.truth.groups.is_empty());
        let det = DetectorProfile::default();
        for g in &p.truth.groups {
            for r in &p.records {
                if g.workers.contains(&r.user) && g.targets.contains(&r.item) {
                    assert!(r.clicks < det.t_click, "edge {} >= T_click", r.clicks);
                }
            }
        }
        // The diverted budget shows up as camouflage singles on organic
        // ordinary items.
        let camo = p
            .records
            .iter()
            .filter(|r| r.item.0 < 100 && r.item.0 >= 4)
            .count();
        assert!(camo > 0, "diverted budget becomes camouflage");
    }

    #[test]
    fn budget_split_sits_below_the_floor() {
        let p = plan_with(&BudgetSplit, 6_000, 7);
        let det = DetectorProfile::default();
        assert!(p.truth.groups.len() >= 4, "many small groups");
        for g in &p.truth.groups {
            assert!(g.workers.len() < det.k1);
            assert!(g.targets.len() < det.k2);
            assert!(g.workers.len() >= 3 && g.targets.len() >= 2);
        }
    }

    #[test]
    fn mimicry_pumps_targets_past_t_hot_when_affordable() {
        let det = DetectorProfile::default();
        let p = plan_with(&HotItemMimicry, 20_000, 7);
        assert_eq!(p.truth.groups.len(), 1);
        let g = &p.truth.groups[0];
        for &t in &g.targets {
            let total: u64 = p
                .records
                .iter()
                .filter(|r| r.item == t)
                .map(|r| r.clicks as u64)
                .sum();
            assert!(total > det.t_hot, "target at {total} clicks must look hot");
        }
        // Starved of budget, mimicry degenerates to an unpumped group.
        let starved = plan_with(&HotItemMimicry, 6_000, 7);
        assert_eq!(starved.truth.groups.len(), 1);
        let g = &starved.truth.groups[0];
        let total: u64 = starved
            .records
            .iter()
            .filter(|r| r.item == g.targets[0])
            .map(|r| r.clicks as u64)
            .sum();
        assert!(total < det.t_hot, "no budget to pump");
    }

    #[test]
    fn slow_drip_spreads_unit_clicks_over_the_horizon() {
        let w = world();
        let p = plan_with(&SlowDrip::default(), 6_000, 7);
        assert!(SlowDrip::default().temporal());
        assert!(!p.truth.groups.is_empty());
        let mid = w.horizon / 2;
        let (mut early, mut late) = (0u64, 0u64);
        for r in &p.records {
            assert_eq!(r.clicks, 1, "drip is unit clicks");
            assert!(r.ts < w.horizon);
            if r.ts < mid {
                early += 1;
            } else {
                late += 1;
            }
        }
        // Flat drip: neither half carries more than ~60% of the traffic.
        let total = early + late;
        assert!(
            early * 10 >= total * 4 && late * 10 >= total * 4,
            "flat drip, got {early} early vs {late} late"
        );
    }

    #[test]
    fn budgets_are_respected_exactly() {
        for s in standard_strategies() {
            for budget in [0u64, 1, 37, 990, 2_064, 6_000, 20_000] {
                let p = plan_with(s.as_ref(), budget, 11);
                assert!(
                    p.total_clicks() <= budget,
                    "{} spent {} of {budget}",
                    s.name(),
                    p.total_clicks()
                );
            }
        }
    }

    #[test]
    fn plans_are_seed_stable() {
        for s in standard_strategies() {
            let a = plan_with(s.as_ref(), 20_000, 42);
            let b = plan_with(s.as_ref(), 20_000, 42);
            assert_eq!(a, b, "{} not seed-stable", s.name());
            let c = plan_with(s.as_ref(), 20_000, 43);
            assert_ne!(a.records, c.records, "{} ignores its seed", s.name());
        }
    }

    #[test]
    fn clamp_truncates_mid_record() {
        let mut records = vec![
            TimedRecord {
                user: UserId(0),
                item: ItemId(0),
                clicks: 10,
                ts: 0,
            },
            TimedRecord {
                user: UserId(0),
                item: ItemId(1),
                clicks: 10,
                ts: 1,
            },
            TimedRecord {
                user: UserId(0),
                item: ItemId(2),
                clicks: 10,
                ts: 2,
            },
        ];
        clamp_to_budget(&mut records, AttackBudget { clicks: 15 });
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].clicks, 10);
        assert_eq!(records[1].clicks, 5);
    }
}
