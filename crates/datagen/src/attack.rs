//! Planting "Ride Item's Coattails" attacks.
//!
//! Implements the attacker model of Sections III-A and IV-A. Each group is a
//! seller task executed by `workers_per_group` crowd accounts:
//!
//! * the worker clicks each of the group's **hot items** once or twice —
//!   just enough to establish the co-click link (the analysis around Eq 2–3
//!   shows spending more budget here is wasted);
//! * the worker clicks (a coverage fraction of) the group's **target items**
//!   heavily — the optimum `C′ = C = C_b − 2` pushes all remaining budget
//!   onto the target;
//! * the worker clicks a few random **ordinary items** lightly as
//!   camouflage (Section III-A's adversarial "arbitrary camouflage").
//!
//! Target items additionally receive a trickle of organic clicks (fresh
//! low-quality listings attract few users — Section IV-B).

use crate::config::AttackConfig;
use crate::truth::{GroundTruth, InjectedGroup};
use rand::seq::SliceRandom;
use rand::Rng;
use ricd_graph::{ItemId, UserId};

/// The planned fake click records plus the ground truth describing them.
#[derive(Clone, Debug, Default)]
pub struct AttackPlan {
    /// Fake (and target-organic) click records to merge into the dataset.
    pub records: Vec<(UserId, ItemId, u32)>,
    /// Who did what.
    pub truth: GroundTruth,
}

/// Identifier allocation for the planted entities.
///
/// Workers get fresh user ids after the organic population and target items
/// get fresh item ids after the organic catalog — matching the paper's
/// observation that targets are items that "newly appear in item tables"
/// and workers are accounts with little relation to the sellers.
pub struct IdAllocator {
    next_user: u32,
    next_item: u32,
}

impl IdAllocator {
    /// Starts allocating after the organic id spaces.
    pub fn new(num_organic_users: usize, num_organic_items: usize) -> Self {
        Self {
            next_user: num_organic_users as u32,
            next_item: num_organic_items as u32,
        }
    }

    pub(crate) fn user(&mut self) -> UserId {
        let u = UserId(self.next_user);
        self.next_user += 1;
        u
    }

    pub(crate) fn item(&mut self) -> ItemId {
        let v = ItemId(self.next_item);
        self.next_item += 1;
        v
    }
}

fn sample_range<R: Rng + ?Sized>(rng: &mut R, (lo, hi): (u32, u32)) -> u32 {
    rng.gen_range(lo..=hi)
}

/// Plans all attack groups.
///
/// * `hot_pool` — item ids eligible to be ridden (the popularity head of the
///   organic catalog); each group samples `hot_items_per_group` of them.
/// * `ordinary_pool` — item ids eligible as camouflage clicks.
/// * `organic_users` — number of organic users; a few of them contribute the
///   targets' organic trickle.
pub fn plan_attacks<R: Rng + ?Sized>(
    cfg: &AttackConfig,
    hot_pool: &[ItemId],
    ordinary_pool: &[ItemId],
    organic_users: usize,
    alloc: &mut IdAllocator,
    rng: &mut R,
) -> Result<AttackPlan, String> {
    cfg.validate()?;
    if cfg.num_groups == 0 {
        return Ok(AttackPlan::default());
    }
    if hot_pool.len() < cfg.hot_items_per_group {
        return Err(format!(
            "hot pool has {} items, group needs {}",
            hot_pool.len(),
            cfg.hot_items_per_group
        ));
    }
    if cfg.camouflage_items > 0 && ordinary_pool.is_empty() {
        return Err("camouflage requested but ordinary pool is empty".into());
    }

    let mut plan = AttackPlan::default();
    for _ in 0..cfg.num_groups {
        // Per-group size heterogeneity (see `AttackConfig::group_size_jitter`).
        let scale = if cfg.group_size_jitter > 0.0 {
            1.0 + cfg.group_size_jitter * (rng.gen::<f64>() * 2.0 - 1.0)
        } else {
            1.0
        };
        let n_workers = (((cfg.workers_per_group as f64) * scale).round() as usize).max(2);
        let n_targets = (((cfg.targets_per_group as f64) * scale).round() as usize).max(1);
        let workers: Vec<UserId> = (0..n_workers).map(|_| alloc.user()).collect();
        let targets: Vec<ItemId> = (0..n_targets).map(|_| alloc.item()).collect();
        let ridden: Vec<ItemId> = hot_pool
            .choose_multiple(rng, cfg.hot_items_per_group)
            .copied()
            .collect();

        let per_worker_targets = ((targets.len() as f64) * cfg.target_coverage).ceil() as usize;
        let per_worker_targets = per_worker_targets.clamp(1, targets.len());

        for &w in &workers {
            // Ride the hot items: minimal clicks (Eq 3: one click establishes
            // the link; the rest of the budget belongs on the target).
            for &h in &ridden {
                plan.records.push((w, h, sample_range(rng, cfg.hot_clicks)));
            }
            // Hammer the covered subset of targets.
            let covered: Vec<ItemId> = if per_worker_targets == targets.len() {
                targets.clone()
            } else {
                targets
                    .choose_multiple(rng, per_worker_targets)
                    .copied()
                    .collect()
            };
            for t in covered {
                plan.records
                    .push((w, t, sample_range(rng, cfg.target_clicks)));
            }
            // Camouflage on random ordinary items.
            for &c in
                ordinary_pool.choose_multiple(rng, cfg.camouflage_items.min(ordinary_pool.len()))
            {
                plan.records
                    .push((w, c, sample_range(rng, cfg.camouflage_clicks)));
            }
        }

        // Organic trickle onto each fresh target, plus the normal users its
        // inflated exposure attracts (challenge 4): both are single light
        // clicks from random real accounts.
        if organic_users > 0 {
            for &t in &targets {
                let organic = sample_range(rng, cfg.target_organic_clicks)
                    + sample_range(rng, cfg.attracted_users_per_target);
                for _ in 0..organic {
                    let u = UserId(rng.gen_range(0..organic_users as u32));
                    plan.records.push((u, t, 1));
                }
            }
        }

        plan.truth.groups.push(InjectedGroup {
            workers,
            targets,
            ridden_hot_items: ridden,
        });
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pools() -> (Vec<ItemId>, Vec<ItemId>) {
        let hot: Vec<ItemId> = (0..20).map(ItemId).collect();
        let ordinary: Vec<ItemId> = (20..400).map(ItemId).collect();
        (hot, ordinary)
    }

    fn plan(cfg: &AttackConfig) -> AttackPlan {
        let (hot, ordinary) = pools();
        let mut alloc = IdAllocator::new(1000, 400);
        let mut rng = StdRng::seed_from_u64(1);
        plan_attacks(cfg, &hot, &ordinary, 1000, &mut alloc, &mut rng).unwrap()
    }

    #[test]
    fn group_structure_matches_config() {
        let cfg = AttackConfig::default();
        let p = plan(&cfg);
        assert_eq!(p.truth.groups.len(), cfg.num_groups);
        for g in &p.truth.groups {
            assert_eq!(g.workers.len(), cfg.workers_per_group);
            assert_eq!(g.targets.len(), cfg.targets_per_group);
            assert_eq!(g.ridden_hot_items.len(), cfg.hot_items_per_group);
            // Fresh ids beyond the organic spaces.
            assert!(g.workers.iter().all(|u| u.0 >= 1000));
            assert!(g.targets.iter().all(|v| v.0 >= 400));
            assert!(g.ridden_hot_items.iter().all(|v| v.0 < 20));
        }
    }

    #[test]
    fn worker_click_signature_is_papers_optimum() {
        // Every worker: small clicks on hot, heavy on targets, light on camo.
        let cfg = AttackConfig::default();
        let p = plan(&cfg);
        let g = &p.truth.groups[0];
        let w = g.workers[0];
        let mut hot_clicks = vec![];
        let mut target_clicks = vec![];
        for &(u, v, c) in &p.records {
            if u != w {
                continue;
            }
            if g.ridden_hot_items.contains(&v) {
                hot_clicks.push(c);
            } else if g.targets.contains(&v) {
                target_clicks.push(c);
            }
        }
        assert_eq!(hot_clicks.len(), cfg.hot_items_per_group);
        assert!(hot_clicks.iter().all(|&c| c <= cfg.hot_clicks.1));
        assert_eq!(
            target_clicks.len(),
            cfg.targets_per_group,
            "full coverage by default"
        );
        assert!(target_clicks.iter().all(|&c| c >= cfg.target_clicks.0));
    }

    #[test]
    fn partial_coverage_reduces_target_edges() {
        let cfg = AttackConfig {
            target_coverage: 0.5,
            ..AttackConfig::default()
        };
        let p = plan(&cfg);
        let g = &p.truth.groups[0];
        let w = g.workers[0];
        let covered = p
            .records
            .iter()
            .filter(|&&(u, v, _)| u == w && g.targets.contains(&v))
            .count();
        assert_eq!(covered, 6, "ceil(12 * 0.5)");
    }

    #[test]
    fn no_groups_yields_empty_plan() {
        let p = plan(&AttackConfig::none());
        assert!(p.records.is_empty());
        assert!(p.truth.groups.is_empty());
    }

    #[test]
    fn insufficient_hot_pool_rejected() {
        let cfg = AttackConfig::default();
        let mut alloc = IdAllocator::new(10, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let err = plan_attacks(&cfg, &[ItemId(0)], &[ItemId(1)], 10, &mut alloc, &mut rng);
        assert!(err.is_err());
    }

    #[test]
    fn groups_have_disjoint_fresh_entities() {
        let p = plan(&AttackConfig::default());
        let users = p.truth.abnormal_users();
        let expected: usize = p.truth.groups.iter().map(|g| g.workers.len()).sum();
        assert_eq!(users.len(), expected, "no worker shared between groups");
        let items = p.truth.abnormal_items();
        let expected: usize = p.truth.groups.iter().map(|g| g.targets.len()).sum();
        assert_eq!(items.len(), expected);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = AttackConfig::default();
        let (hot, ordinary) = pools();
        let run = || {
            let mut alloc = IdAllocator::new(1000, 400);
            let mut rng = StdRng::seed_from_u64(99);
            plan_attacks(&cfg, &hot, &ordinary, 1000, &mut alloc, &mut rng)
                .unwrap()
                .records
        };
        assert_eq!(run(), run());
    }
}
