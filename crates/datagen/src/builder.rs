//! Assembling a full synthetic dataset: organic population + planted
//! attacks + ground truth, in both table and graph form.

use crate::attack::{plan_attacks, IdAllocator};
use crate::community::{
    plant_communities, plant_flash_items, plant_hunter_rings, OrganicCommunity,
};
use crate::config::{AttackConfig, DatasetConfig};
use crate::normal::NormalModel;
use crate::truth::GroundTruth;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use ricd_graph::{BipartiteGraph, GraphBuilder, ItemId, UserId};
use ricd_table::ClickTable;

/// A complete synthetic dataset: the substitution for `TaoBao_UI_Clicks`
/// plus the expert labels.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    /// The configuration that produced the organic population.
    pub config: DatasetConfig,
    /// The configuration that produced the attacks.
    pub attack_config: AttackConfig,
    /// Graph form (what the detectors run on).
    pub graph: BipartiteGraph,
    /// Exact labels for every planted worker and target.
    pub truth: GroundTruth,
    /// The benign dense communities planted in the organic traffic (these
    /// are *not* abnormal; a detector flagging them pays in precision).
    pub communities: Vec<OrganicCommunity>,
    /// The benign bargain-hunter rings (heavy-click cliques below the
    /// `(k₁, k₂)` floor; also not abnormal).
    pub hunter_rings: Vec<OrganicCommunity>,
}

impl SyntheticDataset {
    /// Relational form of the data (built on demand).
    pub fn table(&self) -> ClickTable {
        ClickTable::from_graph(&self.graph)
    }

    /// Number of organic (non-worker) users.
    pub fn organic_users(&self) -> usize {
        self.config.num_users
    }

    /// Number of organic (non-target) items.
    pub fn organic_items(&self) -> usize {
        self.config.num_items
    }
}

/// Generates a dataset. Fully deterministic given the two configs (each
/// carries its own seed).
///
/// Pipeline:
/// 1. sample every organic user's click list in *popularity-rank* space;
/// 2. shuffle ranks into arbitrary item ids (so no algorithm can read
///    popularity off the id);
/// 3. compute the organic popularity head (top 1% by total clicks) as the
///    hot pool the attacks ride, and the rest as the camouflage pool;
/// 4. plan attacks (fresh worker/target ids after the organic spaces);
/// 5. optionally give each worker an organic history ("experienced
///    workers", Section I challenge 2);
/// 6. merge all records into one [`BipartiteGraph`].
pub fn generate(
    config: &DatasetConfig,
    attack_config: &AttackConfig,
) -> Result<SyntheticDataset, String> {
    generate_with_attacks(config, std::slice::from_ref(attack_config))
}

/// Like [`generate`], but plants several independently configured attack
/// waves (e.g. the sensitivity experiments mix small tight groups with big
/// loose ones). The returned dataset's `attack_config` is the first entry
/// (or the default when the slice is empty).
pub fn generate_with_attacks(
    config: &DatasetConfig,
    attack_configs: &[AttackConfig],
) -> Result<SyntheticDataset, String> {
    config.validate()?;
    for a in attack_configs {
        a.validate()?;
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let model = NormalModel::new(config);

    // Rank → item-id permutation.
    let mut rank_to_item: Vec<u32> = (0..config.num_items as u32).collect();
    rank_to_item.shuffle(&mut rng);

    // Organic records.
    let mut records: Vec<(UserId, ItemId, u32)> = Vec::new();
    let mut organic_item_totals = vec![0u64; config.num_items];
    for u in 0..config.num_users as u32 {
        for (rank, clicks) in model.sample_user(&mut rng) {
            let item = rank_to_item[rank as usize];
            organic_item_totals[item as usize] += clicks as u64;
            records.push((UserId(u), ItemId(item), clicks));
        }
    }

    // Benign dense communities over cold-half items (see `community`).
    let community_pool: Vec<ItemId> = (config.num_items / 2..config.num_items)
        .map(|rank| ItemId(rank_to_item[rank]))
        .collect();
    let (communities, community_records) = plant_communities(config, &community_pool, &mut rng);
    for &(_, v, c) in &community_records {
        organic_item_totals[v.index()] += c as u64;
    }
    records.extend(community_records);

    // Flash items over mid-popularity ranks (25%..50%), disjoint from the
    // community pool above.
    let flash_pool: Vec<ItemId> = (config.num_items / 4..config.num_items / 2)
        .map(|rank| ItemId(rank_to_item[rank]))
        .collect();
    let flash_records = plant_flash_items(config, &flash_pool, &mut rng);
    for &(_, v, c) in &flash_records {
        organic_item_totals[v.index()] += c as u64;
    }
    records.extend(flash_records);

    // Bargain-hunter rings over the remainder of the flash pool (disjoint
    // from the flash items themselves).
    let hunter_pool: Vec<ItemId> =
        flash_pool[config.num_flash_items.min(flash_pool.len())..].to_vec();
    let (hunter_rings, hunter_records) = plant_hunter_rings(config, &hunter_pool, &mut rng);
    for &(_, v, c) in &hunter_records {
        organic_item_totals[v.index()] += c as u64;
    }
    records.extend(hunter_records);

    // Popularity head (hot pool): top 1% of organic items by total clicks,
    // at least `hot_items_per_group` so tiny test configs still work.
    let mut by_clicks: Vec<u32> = (0..config.num_items as u32).collect();
    by_clicks.sort_unstable_by_key(|&v| std::cmp::Reverse(organic_item_totals[v as usize]));
    let head = ((config.num_items as f64) * 0.01).ceil() as usize;
    let max_hot_need = attack_configs
        .iter()
        .map(|a| a.hot_items_per_group)
        .max()
        .unwrap_or(0);
    let head = head.max(max_hot_need).min(config.num_items);
    let hot_pool: Vec<ItemId> = by_clicks[..head].iter().map(|&v| ItemId(v)).collect();
    let ordinary_pool: Vec<ItemId> = by_clicks[head..].iter().map(|&v| ItemId(v)).collect();

    // Attack waves share one id allocator so workers/targets never collide.
    let mut alloc = IdAllocator::new(config.num_users, config.num_items);
    let mut truth = GroundTruth::default();
    for attack_config in attack_configs {
        let mut attack_rng = StdRng::seed_from_u64(attack_config.seed);
        let plan = plan_attacks(
            attack_config,
            &hot_pool,
            &ordinary_pool,
            config.num_users,
            &mut alloc,
            &mut attack_rng,
        )?;
        records.extend(plan.records.iter().copied());

        // Experienced workers blend in with organic histories.
        if attack_config.experienced_workers {
            for g in &plan.truth.groups {
                for &w in &g.workers {
                    for (rank, clicks) in model.sample_user(&mut attack_rng) {
                        records.push((w, ItemId(rank_to_item[rank as usize]), clicks));
                    }
                }
            }
        }
        truth.groups.extend(plan.truth.groups);
    }

    let total_users =
        config.num_users + truth.groups.iter().map(|g| g.workers.len()).sum::<usize>();
    let total_items =
        config.num_items + truth.groups.iter().map(|g| g.targets.len()).sum::<usize>();

    let mut b = GraphBuilder::with_capacity(records.len());
    b.reserve_users(total_users).reserve_items(total_items);
    b.extend(records);
    let graph = b.build();

    Ok(SyntheticDataset {
        config: config.clone(),
        attack_config: attack_configs
            .first()
            .cloned()
            .unwrap_or_else(AttackConfig::none),
        graph,
        truth,
        communities,
        hunter_rings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::stats;

    #[test]
    fn small_dataset_generates_and_validates() {
        let ds = generate(&DatasetConfig::small(), &AttackConfig::small()).unwrap();
        ds.graph.validate().unwrap();
        assert_eq!(
            ds.graph.num_users(),
            2_000 + 4 * 25,
            "organic + 4 groups x 25 workers"
        );
        assert_eq!(ds.graph.num_items(), 400 + 4 * 12);
        assert_eq!(ds.truth.groups.len(), 4);
    }

    #[test]
    fn multi_wave_attacks_merge_disjointly() {
        let waves = AttackConfig::sensitivity_mix();
        let ds = generate_with_attacks(&DatasetConfig::small(), &waves).unwrap();
        let expected_groups: usize = waves.iter().map(|w| w.num_groups).sum();
        assert_eq!(ds.truth.groups.len(), expected_groups);
        // Worker/target ids never collide across waves.
        let users = ds.truth.abnormal_users();
        let total: usize = ds.truth.groups.iter().map(|g| g.workers.len()).sum();
        assert_eq!(users.len(), total, "no shared workers across waves");
        ds.graph.validate().unwrap();
        // Wave shapes survive.
        assert_eq!(ds.truth.groups[0].workers.len(), 12);
        assert_eq!(ds.truth.groups[4].workers.len(), 35);
    }

    #[test]
    fn empty_attack_slice_is_clean() {
        let ds = generate_with_attacks(&DatasetConfig::tiny(), &[]).unwrap();
        assert_eq!(ds.truth.num_abnormal(), 0);
        assert_eq!(ds.attack_config.num_groups, 0);
    }

    #[test]
    fn single_wave_matches_generate() {
        let a = generate(&DatasetConfig::tiny(), &AttackConfig::small()).unwrap();
        let b = generate_with_attacks(&DatasetConfig::tiny(), &[AttackConfig::small()]).unwrap();
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_eq!(ea, eb);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn deterministic() {
        let a = generate(&DatasetConfig::tiny(), &AttackConfig::small()).unwrap();
        let b = generate(&DatasetConfig::tiny(), &AttackConfig::small()).unwrap();
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_eq!(ea, eb);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn clean_dataset_has_no_truth() {
        let ds = generate(&DatasetConfig::tiny(), &AttackConfig::none()).unwrap();
        assert_eq!(ds.truth.num_abnormal(), 0);
        assert_eq!(ds.graph.num_users(), 500);
        assert_eq!(ds.graph.num_items(), 100);
    }

    #[test]
    fn workers_click_their_group_structure() {
        let ds = generate(&DatasetConfig::small(), &AttackConfig::small()).unwrap();
        let g0 = &ds.truth.groups[0];
        let w = g0.workers[0];
        // Heavy clicks on every target (full coverage by default).
        for &t in &g0.targets {
            let c = ds.graph.clicks(w, t).expect("worker clicked target");
            assert!(c >= ds.attack_config.target_clicks.0);
        }
        // Light clicks on ridden hot items.
        for &h in &g0.ridden_hot_items {
            let c = ds.graph.clicks(w, h).expect("worker clicked hot item");
            // Experienced workers may add organic clicks on the same hot
            // item, so allow slack above the planned max.
            assert!(c >= 1);
        }
    }

    #[test]
    fn targets_have_few_users_many_clicks() {
        // Table V shape: target items show high clicks from few users.
        let ds = generate(&DatasetConfig::small(), &AttackConfig::small()).unwrap();
        let g0 = &ds.truth.groups[0];
        let t = g0.targets[0];
        let users = ds.graph.item_degree(t);
        let clicks = ds.graph.item_total_clicks(t);
        let mean = clicks as f64 / users as f64;
        // The paper's Table V target shows mean 3.64 clicks/user — the
        // signature is the *contrast* against ordinary traffic (whose
        // per-edge mean is ~2), not a large absolute value: the attracted
        // normal users dilute the workers' heavy edges. Baseline over
        // non-target items only; the attack edges themselves would inflate
        // a global mean.
        let targets = ds.truth.abnormal_items();
        let (mut base_clicks, mut base_users) = (0u64, 0u64);
        for v in 0..ds.graph.num_items() as u32 {
            let v = ItemId(v);
            if targets.binary_search(&v).is_err() {
                base_clicks += ds.graph.item_total_clicks(v);
                base_users += ds.graph.item_degree(v) as u64;
            }
        }
        let edge_mean = base_clicks as f64 / base_users as f64;
        assert!(
            mean > 1.4 * edge_mean,
            "target mean clicks/user {mean:.1} should exceed the ordinary per-edge mean {edge_mean:.1}"
        );
    }

    #[test]
    fn organic_stats_near_table2_band() {
        let ds = generate(&DatasetConfig::default(), &AttackConfig::none()).unwrap();
        let us = stats::user_stats(&ds.graph);
        let is = stats::item_stats(&ds.graph);
        // Paper: user Avg_clk 11.35, Avg_cnt 4.32; item Avg_clk 54.94,
        // Avg_cnt 20.49. Generous bands — we need the shape, not the digits.
        assert!(
            (6.0..16.0).contains(&us.avg_clk),
            "user avg_clk {}",
            us.avg_clk
        );
        assert!(
            (3.0..6.5).contains(&us.avg_cnt),
            "user avg_cnt {}",
            us.avg_cnt
        );
        assert!(
            (30.0..90.0).contains(&is.avg_clk),
            "item avg_clk {}",
            is.avg_clk
        );
        assert!(
            (15.0..33.0).contains(&is.avg_cnt),
            "item avg_cnt {}",
            is.avg_cnt
        );
        assert!(us.stdev > us.avg_clk, "user totals heavy-tailed");
        assert!(is.stdev > is.avg_clk, "item totals heavy-tailed");
    }

    #[test]
    fn pareto_8020_holds() {
        let ds = generate(&DatasetConfig::default(), &AttackConfig::none()).unwrap();
        let c = stats::pareto_concentration(&ds.graph, 0.2);
        assert!(
            (0.65..0.95).contains(&c),
            "top-20% items hold {c:.2} of clicks; want ~0.8"
        );
    }

    #[test]
    fn edge_and_click_scale_near_paper_ratio() {
        let ds = generate(&DatasetConfig::default(), &AttackConfig::none()).unwrap();
        let s = stats::dataset_scale(&ds.graph);
        // 1000x scale-down of 90M edges / 200M clicks.
        assert!(
            (60_000..140_000).contains(&s.edges),
            "edges {} (want ~90k)",
            s.edges
        );
        assert!(
            (120_000..320_000).contains(&s.total_clicks),
            "clicks {} (want ~200k)",
            s.total_clicks
        );
    }
}
