//! Marketing-campaign traffic simulation (the Section VII case study,
//! Fig 10).
//!
//! The paper's case-study narrative, as a generative process:
//!
//! * sellers post the attack mission **before** the campaign starts, so
//!   abnormal (fake) traffic on the target items ramps up from
//!   `attack_start_day`;
//! * once the campaign begins (`campaign_start_day`) the inflated I2I scores
//!   expose the targets to real shoppers, so *normal* traffic on them grows
//!   rapidly;
//! * on the day RICD detects the group (`cleaning_day`), the platform cleans
//!   the fake clicks: fake traffic drops to zero and normal traffic falls
//!   back to its organic base;
//! * on `delist_day` the sellers remove the inferior items: all traffic
//!   stops.
//!
//! [`simulate_campaign`] produces both the plottable day series and the
//! per-day click records, so the Fig 10 experiment can *actually run the
//! detector* on each day's cumulative graph to find the detection day.

use crate::attack::{plan_attacks, IdAllocator};
use crate::builder::{generate, SyntheticDataset};
use crate::config::{AttackConfig, DatasetConfig};
use crate::timeline::RampSchedule;
use crate::truth::GroundTruth;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ricd_graph::{BipartiteGraph, GraphBuilder, ItemId, UserId};
use serde::{Deserialize, Serialize};

/// Configuration of the simulated campaign.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Length of the simulated window in days (paper figure: 13).
    pub num_days: usize,
    /// First day with fake traffic (mission posted before the campaign).
    pub attack_start_day: usize,
    /// Last day of the crowd mission's intended window: the workers spend
    /// the full click budget by this day (unless cleaning stops them
    /// earlier). The case-study narrative has the attack "launching" during
    /// days 6–9, i.e. the mission concludes around the campaign's peak.
    pub attack_end_day: usize,
    /// Day the marketing campaign starts (normal traffic begins to grow).
    pub campaign_start_day: usize,
    /// Day the platform cleans the fake clicks (`None` = never detected).
    /// The Fig 10 runner sets this to the day RICD actually fires.
    pub cleaning_day: Option<usize>,
    /// Day the sellers delist the target items.
    pub delist_day: usize,
    /// Organic clicks per day across all targets before the campaign.
    pub base_normal_per_day: u32,
    /// Daily multiplicative growth of normal target traffic while the
    /// campaign runs and the fake boost is live (paper: "grew rapidly").
    pub campaign_growth: f64,
    /// Total fake clicks the group spends per day at the ramp's peak.
    pub peak_fake_per_day: u32,
    /// Organic background population.
    pub dataset: DatasetConfig,
    /// The single attack group (its `num_groups` is forced to 1).
    pub attack: AttackConfig,
    /// RNG seed for the day-by-day assignment.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            num_days: 13,
            attack_start_day: 3,
            attack_end_day: 9,
            campaign_start_day: 6,
            cleaning_day: None,
            delist_day: 13,
            base_normal_per_day: 30,
            campaign_growth: 1.7,
            peak_fake_per_day: 900,
            dataset: DatasetConfig::small(),
            // The case-study group: 28 accounts, 2 hot items, 11 targets.
            attack: AttackConfig {
                num_groups: 1,
                workers_per_group: 28,
                targets_per_group: 11,
                hot_items_per_group: 2,
                ..AttackConfig::default()
            },
            seed: 0x5eed_0003,
        }
    }
}

/// One day of target-item traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignDay {
    /// 1-based day index.
    pub day: usize,
    /// Organic clicks on the target items that day.
    pub normal_clicks: u64,
    /// Fake (crowd-worker) clicks on the target items that day.
    pub fake_clicks: u64,
}

/// The simulated campaign: plottable series plus replayable records.
pub struct CampaignTimeline {
    /// The Fig 10 series.
    pub days: Vec<CampaignDay>,
    /// Ground truth for the single planted group.
    pub truth: GroundTruth,
    /// The organic background population (attack-free).
    pub background: SyntheticDataset,
    /// Records added on each day (fake + campaign-driven normal clicks).
    pub per_day_records: Vec<Vec<(UserId, ItemId, u32)>>,
}

impl CampaignTimeline {
    /// Graph of everything clicked up to and including `day` (1-based):
    /// the snapshot a daily detection job would see.
    pub fn cumulative_graph(&self, day: usize) -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        b.reserve_users(self.background.graph.num_users() + 64);
        b.reserve_items(self.background.graph.num_items() + 64);
        b.extend(self.background.graph.edges());
        for d in 0..day.min(self.per_day_records.len()) {
            b.extend(self.per_day_records[d].iter().copied());
        }
        b.build()
    }
}

/// Runs the generative process described in the module docs.
pub fn simulate_campaign(cfg: &CampaignConfig) -> Result<CampaignTimeline, String> {
    if cfg.num_days == 0 {
        return Err("campaign needs at least one day".into());
    }
    if cfg.attack_start_day == 0 || cfg.attack_start_day > cfg.num_days {
        return Err("attack_start_day out of range".into());
    }
    if cfg.campaign_start_day < cfg.attack_start_day {
        return Err("campaign must not start before the attack mission is posted".into());
    }
    if cfg.attack_end_day < cfg.attack_start_day {
        return Err("attack mission window is empty".into());
    }

    // Attack-free organic background.
    let background = generate(&cfg.dataset, &AttackConfig::none())?;

    // Plan one group against the background's popularity head.
    let mut attack = cfg.attack.clone();
    attack.num_groups = 1;
    let totals = background.graph.all_item_total_clicks();
    let mut by_clicks: Vec<u32> = (0..background.graph.num_items() as u32).collect();
    by_clicks.sort_unstable_by_key(|&v| std::cmp::Reverse(totals[v as usize]));
    let head = (by_clicks.len() / 100).max(attack.hot_items_per_group);
    let hot_pool: Vec<ItemId> = by_clicks[..head].iter().map(|&v| ItemId(v)).collect();
    let ordinary_pool: Vec<ItemId> = by_clicks[head..].iter().map(|&v| ItemId(v)).collect();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut alloc = IdAllocator::new(background.graph.num_users(), background.graph.num_items());
    let plan = plan_attacks(
        &attack,
        &hot_pool,
        &ordinary_pool,
        background.graph.num_users(),
        &mut alloc,
        &mut rng,
    )?;
    let group = &plan.truth.groups[0];

    // Assign each fake record to a day: linear ramp from attack start until
    // cleaning (or the end), weighted so later days carry more traffic,
    // capped by peak_fake_per_day. Click counts are split day-wise by
    // repeating the record with weight 1..; to keep it simple each planned
    // record lands whole on one day. The ramp-weighted pick is the shared
    // [`RampSchedule`] from the timeline engine; its RNG consumption (one
    // `f64` per record) keeps this output byte-stable (see the pinned
    // digest test).
    let fake_end = cfg
        .cleaning_day
        .unwrap_or(cfg.attack_end_day)
        .min(cfg.attack_end_day)
        .min(cfg.num_days);
    let fake_days: Vec<usize> = (cfg.attack_start_day..=fake_end).collect();
    let ramp = RampSchedule::linear(fake_days);

    let mut per_day_records: Vec<Vec<(UserId, ItemId, u32)>> = vec![Vec::new(); cfg.num_days];
    let mut fake_per_day = vec![0u64; cfg.num_days + 1];
    if !ramp.is_empty() {
        for &(u, v, c) in &plan.records {
            // Pick a ramp-weighted day.
            let day = ramp.pick(&mut rng);
            // Only clicks on the group's targets count as "fake target
            // traffic" in the figure; hot-item/camouflage clicks still enter
            // the record stream.
            per_day_records[day - 1].push((u, v, c));
            if group.targets.contains(&v)
                && fake_per_day[day] + c as u64 <= cfg.peak_fake_per_day as u64 * 2
            {
                fake_per_day[day] += c as u64;
            } else if group.targets.contains(&v) {
                fake_per_day[day] += c as u64; // still counted; cap is soft
            }
        }
    }

    // Normal target traffic per day.
    let mut normal_per_day = vec![0u64; cfg.num_days + 1];
    for day in 1..=cfg.num_days {
        let delisted = day >= cfg.delist_day;
        let cleaned = cfg.cleaning_day.is_some_and(|c| day > c);
        let boosted = day >= cfg.campaign_start_day && !cleaned && !delisted;
        let normal = if delisted {
            0
        } else if boosted {
            let growth_days = (day - cfg.campaign_start_day) as i32 + 1;
            ((cfg.base_normal_per_day as f64) * cfg.campaign_growth.powi(growth_days)) as u64
        } else {
            cfg.base_normal_per_day as u64
        };
        normal_per_day[day] = normal;
        // Materialize the normal clicks as records from random organic users.
        for _ in 0..normal {
            let u = UserId(rng.gen_range(0..background.graph.num_users() as u32));
            let t = group.targets[rng.gen_range(0..group.targets.len())];
            per_day_records[day - 1].push((u, t, 1));
        }
    }

    let days = (1..=cfg.num_days)
        .map(|day| CampaignDay {
            day,
            normal_clicks: normal_per_day[day],
            fake_clicks: fake_per_day[day],
        })
        .collect();

    Ok(CampaignTimeline {
        days,
        truth: plan.truth,
        background,
        per_day_records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const PINNED_DIGEST: u64 = 0x5c4b_1ca0_9338_aa9c;

    fn quick_cfg() -> CampaignConfig {
        CampaignConfig {
            dataset: DatasetConfig::tiny(),
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn timeline_has_expected_phases() {
        let cfg = quick_cfg();
        let t = simulate_campaign(&cfg).unwrap();
        assert_eq!(t.days.len(), 13);
        // No fake traffic before the mission is posted.
        for d in &t.days[..cfg.attack_start_day - 1] {
            assert_eq!(d.fake_clicks, 0, "day {}", d.day);
        }
        // Fake traffic present during the ramp.
        let ramp_fake: u64 = t.days[cfg.attack_start_day - 1..]
            .iter()
            .map(|d| d.fake_clicks)
            .sum();
        assert!(ramp_fake > 0);
        // Normal traffic grows after campaign start.
        let before = t.days[cfg.campaign_start_day - 2].normal_clicks;
        let after = t.days[cfg.campaign_start_day].normal_clicks;
        assert!(after > before * 2, "campaign boost: {before} -> {after}");
        // Delisted on the final day.
        assert_eq!(t.days[cfg.delist_day - 1].normal_clicks, 0);
    }

    #[test]
    fn cleaning_stops_fake_and_restores_normal() {
        let mut cfg = quick_cfg();
        cfg.cleaning_day = Some(9);
        let t = simulate_campaign(&cfg).unwrap();
        for d in &t.days {
            if d.day > 9 && d.day < cfg.delist_day {
                assert_eq!(d.fake_clicks, 0, "fake cleaned from day 10");
                assert_eq!(
                    d.normal_clicks, cfg.base_normal_per_day as u64,
                    "normal restored"
                );
            }
        }
        // Fig 10 shape: traffic during the boost dwarfs the restored level.
        let peak = t
            .days
            .iter()
            .map(|d| d.normal_clicks + d.fake_clicks)
            .max()
            .unwrap();
        assert!(peak > 4 * cfg.base_normal_per_day as u64);
    }

    #[test]
    fn cumulative_graph_grows_monotonically() {
        let t = simulate_campaign(&quick_cfg()).unwrap();
        let g3 = t.cumulative_graph(3);
        let g9 = t.cumulative_graph(9);
        assert!(g9.total_clicks() > g3.total_clicks());
        assert!(g3.total_clicks() >= t.background.graph.total_clicks());
        g9.validate().unwrap();
    }

    #[test]
    fn group_shape_matches_case_study() {
        let t = simulate_campaign(&quick_cfg()).unwrap();
        assert_eq!(t.truth.groups.len(), 1);
        let g = &t.truth.groups[0];
        assert_eq!(g.workers.len(), 28);
        assert_eq!(g.targets.len(), 11);
        assert_eq!(g.ridden_hot_items.len(), 2);
    }

    /// Guards the Fig 10 runner's byte-stability across refactors of the
    /// day-assignment logic (the ramp loop is shared with
    /// [`crate::timeline`]): the exact per-day record stream for the tiny
    /// config is pinned by digest. If this changes, the Fig 10 output
    /// changed — regenerate it and note the change in EXPERIMENTS.md.
    #[test]
    fn fig10_day_series_digest_is_stable() {
        let t = simulate_campaign(&quick_cfg()).unwrap();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for (d, recs) in t.per_day_records.iter().enumerate() {
            mix(d as u64);
            for &(u, v, c) in recs {
                mix(u.0 as u64);
                mix(v.0 as u64);
                mix(c as u64);
            }
        }
        for d in &t.days {
            mix(d.normal_clicks);
            mix(d.fake_clicks);
        }
        if std::env::var("PRINT_DIGEST").is_ok() {
            println!("fig10 digest: {h:#x}");
        }
        assert_eq!(h, PINNED_DIGEST, "Fig 10 day series changed");
    }

    #[test]
    fn bad_configs_rejected() {
        let mut cfg = quick_cfg();
        cfg.num_days = 0;
        assert!(simulate_campaign(&cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.attack_start_day = 99;
        assert!(simulate_campaign(&cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.campaign_start_day = cfg.attack_start_day - 1;
        assert!(simulate_campaign(&cfg).is_err());
    }
}
