//! Dense *organic* co-click communities.
//!
//! Real e-commerce click graphs contain benign dense bipartite blocks:
//! group-buying packages, fan clubs around a shop, seasonal bundles. They
//! look structurally like attack groups (many users × many items, high
//! co-click coincidence) but behave differently — per-edge clicks stay
//! small, because members are ordinary shoppers, not click farms.
//!
//! The paper cares about exactly this distinction twice: property 4b
//! ("explicitly limit the detected group's size to avoid the misjudgment of
//! group-buying phenomenon") and the screening module, whose `T_click` rule
//! separates heavy attack edges from light communal ones. Planting these
//! communities makes the synthetic benchmark honest: a detector that only
//! measures density cannot tell them from attacks.

use crate::config::DatasetConfig;
use rand::seq::SliceRandom;
use rand::Rng;
use ricd_graph::{ItemId, UserId};

/// One planted organic community (kept for analysis; members are *normal*).
#[derive(Clone, Debug)]
pub struct OrganicCommunity {
    /// Member users (existing organic accounts).
    pub users: Vec<UserId>,
    /// The communal item bundle.
    pub items: Vec<ItemId>,
}

/// Plants the configured communities.
///
/// * members are sampled from the organic user population (communities are
///   made of real shoppers);
/// * item bundles are drawn **disjointly** from `item_pool` (ordinary,
///   non-head items), so communities do not chain into one blob;
/// * each (member, item) edge exists with probability
///   `community_coverage` and carries a small click count.
///
/// Returns the communities and their click records.
pub fn plant_communities<R: Rng + ?Sized>(
    cfg: &DatasetConfig,
    item_pool: &[ItemId],
    rng: &mut R,
) -> (Vec<OrganicCommunity>, Vec<(UserId, ItemId, u32)>) {
    let mut communities = Vec::with_capacity(cfg.num_communities);
    let mut records = Vec::new();
    if cfg.num_communities == 0 {
        return (communities, records);
    }

    // Disjoint item bundles: shuffle the pool once and carve it up.
    let mut pool: Vec<ItemId> = item_pool.to_vec();
    pool.shuffle(rng);
    let mut cursor = 0usize;

    for _ in 0..cfg.num_communities {
        let n_users = rng.gen_range(cfg.community_users.0..=cfg.community_users.1);
        let n_items = rng.gen_range(cfg.community_items.0..=cfg.community_items.1);
        if cursor + n_items > pool.len() {
            break; // pool exhausted; plant fewer communities
        }
        let items: Vec<ItemId> = pool[cursor..cursor + n_items].to_vec();
        cursor += n_items;

        let mut users: Vec<UserId> = Vec::with_capacity(n_users);
        while users.len() < n_users {
            let u = UserId(rng.gen_range(0..cfg.num_users as u32));
            if !users.contains(&u) {
                users.push(u);
            }
        }
        users.sort_unstable();

        for &u in &users {
            for &v in &items {
                if rng.gen::<f64>() <= cfg.community_coverage {
                    let c = rng.gen_range(cfg.community_clicks.0..=cfg.community_clicks.1);
                    records.push((u, v, c));
                }
            }
        }
        communities.push(OrganicCommunity { users, items });
    }
    (communities, records)
}

/// Plants the flash items (see `DatasetConfig::num_flash_items`): for each
/// item drawn from `item_pool`, a handful of organic users re-click it with
/// counts straddling `T_click`. Pool entries are used disjointly from the
/// front; returns the click records (flash items are benign, so there is no
/// truth to record).
pub fn plant_flash_items<R: Rng + ?Sized>(
    cfg: &DatasetConfig,
    item_pool: &[ItemId],
    rng: &mut R,
) -> Vec<(UserId, ItemId, u32)> {
    let mut records = Vec::new();
    for &item in item_pool.iter().take(cfg.num_flash_items) {
        let n_users = rng.gen_range(cfg.flash_users.0..=cfg.flash_users.1);
        let mut users: Vec<UserId> = Vec::with_capacity(n_users);
        while users.len() < n_users {
            let u = UserId(rng.gen_range(0..cfg.num_users as u32));
            if !users.contains(&u) {
                users.push(u);
            }
        }
        for u in users {
            let c = rng.gen_range(cfg.flash_clicks.0..=cfg.flash_clicks.1);
            records.push((u, item, c));
        }
    }
    records
}

/// Plants the bargain-hunter rings (see `DatasetConfig::num_hunter_rings`):
/// miniature heavy-click cliques of deal hunters, sized *below* the
/// detector's `(k₁, k₂)` floor. Ring item bundles are drawn disjointly from
/// `item_pool`; members are random organic users. Returns the rings (for
/// analysis — they are benign) and their click records.
pub fn plant_hunter_rings<R: Rng + ?Sized>(
    cfg: &DatasetConfig,
    item_pool: &[ItemId],
    rng: &mut R,
) -> (Vec<OrganicCommunity>, Vec<(UserId, ItemId, u32)>) {
    let mut rings = Vec::with_capacity(cfg.num_hunter_rings);
    let mut records = Vec::new();
    if cfg.num_hunter_rings == 0 {
        return (rings, records);
    }
    let mut pool: Vec<ItemId> = item_pool.to_vec();
    pool.shuffle(rng);
    let mut cursor = 0usize;
    for _ in 0..cfg.num_hunter_rings {
        let n_users = rng.gen_range(cfg.hunter_users.0..=cfg.hunter_users.1);
        let n_items = rng.gen_range(cfg.hunter_items.0..=cfg.hunter_items.1);
        if cursor + n_items > pool.len() {
            break;
        }
        let items: Vec<ItemId> = pool[cursor..cursor + n_items].to_vec();
        cursor += n_items;
        let mut users: Vec<UserId> = Vec::with_capacity(n_users);
        while users.len() < n_users {
            let u = UserId(rng.gen_range(0..cfg.num_users as u32));
            if !users.contains(&u) {
                users.push(u);
            }
        }
        users.sort_unstable();
        for &u in &users {
            for &v in &items {
                if rng.gen::<f64>() <= cfg.hunter_coverage {
                    let c = rng.gen_range(cfg.hunter_clicks.0..=cfg.hunter_clicks.1);
                    records.push((u, v, c));
                }
            }
        }
        rings.push(OrganicCommunity { users, items });
    }
    (rings, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool(n: u32) -> Vec<ItemId> {
        (0..n).map(ItemId).collect()
    }

    #[test]
    fn plants_configured_count_with_disjoint_bundles() {
        let cfg = DatasetConfig::small();
        let mut rng = StdRng::seed_from_u64(1);
        let (comms, records) = plant_communities(&cfg, &pool(400), &mut rng);
        assert_eq!(comms.len(), cfg.num_communities);
        let mut seen = std::collections::HashSet::new();
        for c in &comms {
            for v in &c.items {
                assert!(seen.insert(*v), "item {v} in two communities");
            }
            assert!(c.users.len() >= cfg.community_users.0);
            assert!(c.items.len() >= cfg.community_items.0);
        }
        assert!(!records.is_empty());
    }

    #[test]
    fn clicks_stay_small() {
        let cfg = DatasetConfig::small();
        let mut rng = StdRng::seed_from_u64(2);
        let (_, records) = plant_communities(&cfg, &pool(400), &mut rng);
        assert!(records
            .iter()
            .all(|&(_, _, c)| { (cfg.community_clicks.0..=cfg.community_clicks.1).contains(&c) }));
    }

    #[test]
    fn coverage_controls_edge_density() {
        let mut cfg = DatasetConfig::small();
        cfg.community_coverage = 1.0;
        let mut rng = StdRng::seed_from_u64(3);
        let (comms, records) = plant_communities(&cfg, &pool(400), &mut rng);
        let expected: usize = comms.iter().map(|c| c.users.len() * c.items.len()).sum();
        assert_eq!(records.len(), expected, "full coverage → complete blocks");
    }

    #[test]
    fn zero_communities_is_empty() {
        let mut cfg = DatasetConfig::small();
        cfg.num_communities = 0;
        let mut rng = StdRng::seed_from_u64(4);
        let (comms, records) = plant_communities(&cfg, &pool(400), &mut rng);
        assert!(comms.is_empty());
        assert!(records.is_empty());
    }

    #[test]
    fn pool_exhaustion_degrades_gracefully() {
        let cfg = DatasetConfig::small();
        let mut rng = StdRng::seed_from_u64(5);
        let (comms, _) = plant_communities(&cfg, &pool(20), &mut rng);
        assert!(comms.len() <= cfg.num_communities);
    }

    #[test]
    fn flash_items_have_heavy_organic_edges() {
        let cfg = DatasetConfig::small();
        let mut rng = StdRng::seed_from_u64(6);
        let records = plant_flash_items(&cfg, &pool(400), &mut rng);
        let mut items: Vec<ItemId> = records.iter().map(|&(_, v, _)| v).collect();
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), cfg.num_flash_items);
        for &(u, _, c) in &records {
            assert!((cfg.flash_clicks.0..=cfg.flash_clicks.1).contains(&c));
            assert!(u.index() < cfg.num_users);
        }
        // Some edges straddle the paper's T_click = 12 on both sides.
        assert!(records.iter().any(|&(_, _, c)| c >= 12));
        assert!(records.iter().any(|&(_, _, c)| c < 12));
    }

    #[test]
    fn zero_flash_items_is_empty() {
        let mut cfg = DatasetConfig::small();
        cfg.num_flash_items = 0;
        let mut rng = StdRng::seed_from_u64(7);
        assert!(plant_flash_items(&cfg, &pool(400), &mut rng).is_empty());
    }

    #[test]
    fn hunter_rings_stay_below_the_k_floor() {
        let cfg = DatasetConfig::small();
        let mut rng = StdRng::seed_from_u64(8);
        let (rings, records) = plant_hunter_rings(&cfg, &pool(100), &mut rng);
        assert_eq!(rings.len(), cfg.num_hunter_rings);
        for r in &rings {
            assert!(r.users.len() < 10, "below k1");
            assert!(r.items.len() < 10, "below k2");
        }
        assert!(records
            .iter()
            .all(|&(_, _, c)| (cfg.hunter_clicks.0..=cfg.hunter_clicks.1).contains(&c)));
        // Rings contain heavy edges (the FP pressure they exist to create).
        assert!(records.iter().any(|&(_, _, c)| c >= 12));
    }

    #[test]
    fn hunter_ring_bundles_disjoint() {
        let cfg = DatasetConfig::small();
        let mut rng = StdRng::seed_from_u64(9);
        let (rings, _) = plant_hunter_rings(&cfg, &pool(100), &mut rng);
        let mut seen = std::collections::HashSet::new();
        for r in &rings {
            for v in &r.items {
                assert!(seen.insert(*v));
            }
        }
    }
}
