//! Generator configuration.

use serde::{Deserialize, Serialize};

/// Configuration of the organic (normal-user) click population.
///
/// Defaults reproduce the paper's Table I at a 1000× scale-down: 20k users,
/// 4k items, ~90k click records, ~200k total clicks — which preserves every
/// per-user / per-item average in Table II.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of organic users (paper: 20M; default 20k).
    pub num_users: usize,
    /// Number of organic items (paper: 4M; default 4k).
    pub num_items: usize,
    /// Zipf exponent of item popularity. `1.0` yields the paper's Pareto
    /// 80/20 click concentration at the default item count.
    pub popularity_exponent: f64,
    /// Exponent of the per-user activity (distinct items) power law.
    pub activity_exponent: f64,
    /// Maximum distinct items one organic user clicks.
    pub max_user_degree: usize,
    /// Mean clicks per edge on cold items (geometric, capped).
    pub cold_clicks_mean: f64,
    /// Mean clicks per edge on popular items. Table IV shows normal users
    /// click hot items *more* per edge, so this exceeds `cold_clicks_mean`.
    pub hot_clicks_mean: f64,
    /// Per-edge click cap for organic traffic.
    pub clicks_cap: u32,
    /// Fraction of the popularity ranking treated as "popular" for the
    /// per-edge click-mean split (top ranks).
    pub popular_rank_fraction: f64,
    /// Number of dense *organic* co-click communities (group-buying
    /// packages, fan clubs). These are benign structures the paper's
    /// property 4b explicitly worries about misjudging: binary-dense
    /// user–item blocks whose per-edge clicks stay small. They stress
    /// pure-density detectors (FRAUDAR spends block budget on them;
    /// community methods surface them) while RICD's behavioral screening
    /// discards them.
    pub num_communities: usize,
    /// Inclusive range of members per community.
    pub community_users: (usize, usize),
    /// Inclusive range of items per community.
    pub community_items: (usize, usize),
    /// Probability that a member clicked a given community item.
    pub community_coverage: f64,
    /// Inclusive range of clicks per community edge (kept small: these are
    /// ordinary shoppers, not click farms).
    pub community_clicks: (u32, u32),
    /// Number of ordinary "flash" items — promotions / hard-decision
    /// purchases that attract a handful of *organic* users who re-click
    /// them many times. Their per-edge clicks straddle `T_click`, so a
    /// detector whose groups sweep them in pays real precision (this is why
    /// the paper's RICD reports 0.81 precision, not 1.0). They are benign:
    /// never part of the ground truth.
    pub num_flash_items: usize,
    /// Inclusive range of obsessive re-clickers per flash item.
    pub flash_users: (usize, usize),
    /// Inclusive range of clicks per flash edge (straddles `T_click`).
    pub flash_clicks: (u32, u32),
    /// Number of "bargain-hunter rings": small organic cliques of deal
    /// hunters who *heavily* re-click a handful of promoted items together.
    /// Structurally these are miniature attack groups — heavy co-clicks,
    /// high coincidence — but at a scale **below** the paper's `(k₁, k₂)`
    /// floor. They are the benign pattern that separates RICD from the
    /// baselines: RICD's structural extraction never admits them, while
    /// community detectors carry them through screening inside larger
    /// communities.
    pub num_hunter_rings: usize,
    /// Inclusive range of hunters per ring (keep the max below `k₁`).
    pub hunter_users: (usize, usize),
    /// Inclusive range of items per ring (keep the max below `k₂`).
    pub hunter_items: (usize, usize),
    /// Probability a hunter clicked a given ring item.
    pub hunter_coverage: f64,
    /// Inclusive range of clicks per hunter edge (straddles `T_click`).
    pub hunter_clicks: (u32, u32),
    /// RNG seed; every dataset is fully reproducible from its config.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            num_users: 20_000,
            num_items: 4_000,
            popularity_exponent: 1.0,
            activity_exponent: 2.0,
            max_user_degree: 150,
            cold_clicks_mean: 1.5,
            hot_clicks_mean: 2.4,
            clicks_cap: 40,
            popular_rank_fraction: 0.2,
            num_communities: 18,
            community_users: (40, 60),
            community_items: (15, 25),
            community_coverage: 0.9,
            community_clicks: (1, 3),
            num_flash_items: 40,
            flash_users: (4, 10),
            flash_clicks: (8, 18),
            num_hunter_rings: 15,
            hunter_users: (4, 8),
            hunter_items: (3, 6),
            hunter_coverage: 0.9,
            hunter_clicks: (8, 18),
            seed: 0x5eed_0001,
        }
    }
}

impl DatasetConfig {
    /// A small config for unit tests (2k users / 400 items).
    pub fn small() -> Self {
        Self {
            num_users: 2_000,
            num_items: 400,
            num_communities: 4,
            community_users: (30, 45),
            community_items: (12, 18),
            num_flash_items: 8,
            num_hunter_rings: 5,
            ..Self::default()
        }
    }

    /// A tiny config for fast property tests (500 users / 100 items).
    pub fn tiny() -> Self {
        Self {
            num_users: 500,
            num_items: 100,
            max_user_degree: 60,
            num_communities: 2,
            community_users: (20, 30),
            community_items: (8, 12),
            num_flash_items: 3,
            num_hunter_rings: 2,
            ..Self::default()
        }
    }

    /// The **100× scale-down** preset: 200k users / 40k items / ~900k click
    /// records — one order of magnitude up from the default 1000× world,
    /// with every confounder population (communities, flash items, hunter
    /// rings) scaled ×10 so the big graph keeps the same structural
    /// *texture*, not just more organic noise. This is the world the
    /// sharded runtime is benchmarked on: large enough that a giant
    /// component actually needs hash splitting.
    pub fn scale100() -> Self {
        Self {
            num_users: 200_000,
            num_items: 40_000,
            num_communities: 180,
            num_flash_items: 400,
            num_hunter_rings: 150,
            seed: 0x5eed_0100,
            ..Self::default()
        }
    }

    /// The **1000× scale-down… inverted** preset: 2M users / 400k items /
    /// ~10M click records — a further order of magnitude past
    /// [`scale100`](Self::scale100), one tenth of the paper's production
    /// graph. Confounder populations scale ×10 again so the world keeps
    /// the 100× texture (thousands of benign dense blocks, not just more
    /// long-tail noise). This is the world the compact-CSR sharded runtime
    /// is gated on in `perf_smoke`: it does not fit the dense
    /// subgraph-per-shard path comfortably, and a sequential shard loop
    /// blows the wall-clock budget.
    pub fn scale1000() -> Self {
        Self {
            num_users: 2_000_000,
            num_items: 400_000,
            num_communities: 1_800,
            num_flash_items: 4_000,
            num_hunter_rings: 1_500,
            seed: 0x5eed_1000,
            ..Self::default()
        }
    }

    /// Scales user/item counts by `factor` (≥ 1 keeps calibration intact;
    /// used by the scaling bench).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.num_users = ((self.num_users as f64) * factor).round().max(1.0) as usize;
        self.num_items = ((self.num_items as f64) * factor).round().max(1.0) as usize;
        self
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_users == 0 || self.num_items == 0 {
            return Err("need at least one user and one item".into());
        }
        if self.max_user_degree == 0 || self.max_user_degree > self.num_items {
            return Err("max_user_degree must be in 1..=num_items".into());
        }
        if self.cold_clicks_mean < 1.0 || self.hot_clicks_mean < 1.0 {
            return Err("click means must be ≥ 1".into());
        }
        if !(0.0..=1.0).contains(&self.popular_rank_fraction) {
            return Err("popular_rank_fraction must be in [0,1]".into());
        }
        if self.num_communities > 0 {
            if self.community_users.0 > self.community_users.1
                || self.community_items.0 > self.community_items.1
                || self.community_clicks.0 > self.community_clicks.1
            {
                return Err("community ranges must be non-empty".into());
            }
            if self.community_users.0 < 2 || self.community_items.0 < 1 {
                return Err("communities need ≥2 users and ≥1 item".into());
            }
            if self.community_clicks.0 == 0 {
                return Err("community clicks must be ≥ 1".into());
            }
            if !(0.0..=1.0).contains(&self.community_coverage) {
                return Err("community_coverage must be in [0,1]".into());
            }
            if self.community_users.1 > self.num_users
                || self.num_communities * self.community_items.1 > self.num_items
            {
                return Err("communities do not fit the user/item spaces".into());
            }
        }
        if self.num_flash_items > 0 {
            if self.flash_users.0 > self.flash_users.1
                || self.flash_clicks.0 > self.flash_clicks.1
                || self.flash_clicks.0 == 0
            {
                return Err("flash ranges must be non-empty with clicks ≥ 1".into());
            }
            if self.num_flash_items > self.num_items / 4 {
                return Err("too many flash items for the catalog".into());
            }
            if self.flash_users.1 > self.num_users {
                return Err("flash_users exceeds the user space".into());
            }
        }
        if self.num_hunter_rings > 0 {
            if self.hunter_users.0 > self.hunter_users.1
                || self.hunter_items.0 > self.hunter_items.1
                || self.hunter_clicks.0 > self.hunter_clicks.1
                || self.hunter_clicks.0 == 0
            {
                return Err("hunter ranges must be non-empty with clicks ≥ 1".into());
            }
            if self.hunter_users.0 < 2 || self.hunter_items.0 < 1 {
                return Err("hunter rings need ≥2 users and ≥1 item".into());
            }
            if !(0.0..=1.0).contains(&self.hunter_coverage) {
                return Err("hunter_coverage must be in [0,1]".into());
            }
            if self.hunter_users.1 > self.num_users
                || self.num_hunter_rings * self.hunter_items.1 > self.num_items / 4
            {
                return Err("hunter rings do not fit the user/item spaces".into());
            }
        }
        Ok(())
    }
}

/// Configuration of the planted "Ride Item's Coattails" attacks.
///
/// Each group follows the paper's Section IV strategy: workers click the
/// group's hot items a *few* times (establishing the co-click link cheaply),
/// the target items *heavily* (maximizing the I2I score under the click
/// budget, per Eq 2–3), and a few random ordinary items as camouflage.
/// The default shape matches the Section VII case-study group: tens of
/// accounts, a couple of ridden hot items, ~a dozen target items.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Number of independent attack groups.
    pub num_groups: usize,
    /// Crowd-worker accounts per group.
    pub workers_per_group: usize,
    /// Freshly listed low-quality target items per group.
    pub targets_per_group: usize,
    /// Hot items each group rides (sampled from the popularity head).
    pub hot_items_per_group: usize,
    /// Inclusive range of clicks a worker puts on each target item; the
    /// lower bound should be ≥ the detector's `T_click` for the paper's
    /// "optimal" attacker (default 12..=18).
    pub target_clicks: (u32, u32),
    /// Inclusive range of clicks a worker puts on each ridden hot item
    /// (Section IV: "click the hot item once", at most a couple of times).
    pub hot_clicks: (u32, u32),
    /// Number of random ordinary items each worker clicks as camouflage.
    pub camouflage_items: usize,
    /// Inclusive range of clicks per camouflage edge.
    pub camouflage_clicks: (u32, u32),
    /// Fraction of the group's target items each worker actually clicks.
    /// `1.0` plants a perfect biclique (α = 1.0); lower values plant
    /// (α < 1)-extension structures for the Fig 9c sensitivity sweep.
    pub target_coverage: f64,
    /// If true, workers are *experienced*: they also carry an organic click
    /// history, making them blend in with normal users (Section I,
    /// challenge 2).
    pub experienced_workers: bool,
    /// Organic traffic drawn by each target item before the attack (fresh
    /// low-quality items attract few clicks).
    pub target_organic_clicks: (u32, u32),
    /// Normal users *attracted* to each target by its inflated exposure
    /// (Section I, challenge 4: "with the increasing popularity of
    /// deceptive items, some normal users may also be attracted by them and
    /// contribute clicks"). Each attracted user clicks the target once.
    /// This is what gives the paper's Table V target its signature — many
    /// light clickers around a core of heavy workers (368 clicks / 101
    /// users / mean 3.64).
    pub attracted_users_per_target: (u32, u32),
    /// Per-group size heterogeneity: each group's worker and target counts
    /// are scaled by a factor drawn uniformly from `[1 − j, 1 + j]`.
    /// `0.0` (the default) keeps every group exactly at the configured
    /// sizes; the evaluation datasets use `≈ 0.3` so group density varies —
    /// the regime where single-density block detectors (FRAUDAR) start
    /// missing the weaker groups, as the paper observes.
    pub group_size_jitter: f64,
    /// RNG seed for attack placement.
    pub seed: u64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self {
            num_groups: 8,
            workers_per_group: 25,
            targets_per_group: 12,
            hot_items_per_group: 2,
            target_clicks: (12, 18),
            hot_clicks: (1, 2),
            camouflage_items: 3,
            camouflage_clicks: (1, 2),
            target_coverage: 1.0,
            experienced_workers: true,
            target_organic_clicks: (0, 5),
            attracted_users_per_target: (30, 120),
            group_size_jitter: 0.0,
            seed: 0x5eed_0002,
        }
    }
}

impl AttackConfig {
    /// A smaller attack set matching [`DatasetConfig::small`].
    pub fn small() -> Self {
        Self {
            num_groups: 4,
            ..Self::default()
        }
    }

    /// The canonical **evaluation** attack mix used by the Fig 8 / Table VI
    /// experiments: heterogeneous group sizes (crowd tasks differ in
    /// budget) and slightly partial target coverage (workers skip a few
    /// targets) — the realistic regime where the baselines' weaknesses
    /// show.
    pub fn evaluation() -> Self {
        Self {
            group_size_jitter: 0.3,
            target_coverage: 0.9,
            ..Self::default()
        }
    }

    /// The attack mix used by the Fig 9 sensitivity sweeps: three waves of
    /// groups whose scale, per-edge intensity and coverage *straddle* the
    /// swept parameter ranges, so every axis of Fig 9 has structure to
    /// discriminate:
    ///
    /// * small tight groups (12 × 10, clicks 12–16, full coverage) — lost
    ///   when `k₁`/`k₂` rise past their size;
    /// * medium groups (18 × 14, clicks 10–14, coverage 0.85) — their
    ///   lighter edges fall off as `T_click` rises;
    /// * large groups (35 × 22, clicks 8–13, coverage 0.8) — the only wave
    ///   whose overlap survives the high-`k` sweep points.
    pub fn sensitivity_mix() -> Vec<Self> {
        vec![
            Self {
                num_groups: 2,
                workers_per_group: 12,
                targets_per_group: 10,
                target_clicks: (12, 16),
                target_coverage: 1.0,
                seed: 0x5eed_0010,
                ..Self::default()
            },
            Self {
                num_groups: 2,
                workers_per_group: 18,
                targets_per_group: 14,
                target_clicks: (10, 14),
                target_coverage: 0.85,
                seed: 0x5eed_0011,
                ..Self::default()
            },
            Self {
                num_groups: 2,
                workers_per_group: 35,
                targets_per_group: 22,
                target_clicks: (8, 13),
                target_coverage: 0.8,
                seed: 0x5eed_0012,
                ..Self::default()
            },
        ]
    }

    /// The attack mix matching [`DatasetConfig::scale100`]: ten times the
    /// default group count with the evaluation regime's heterogeneity, so
    /// the 100× world carries a realistic spread of campaign sizes.
    pub fn scale100() -> Self {
        Self {
            num_groups: 80,
            group_size_jitter: 0.3,
            target_coverage: 0.9,
            seed: 0x5eed_0102,
            ..Self::default()
        }
    }

    /// The attack mix matching [`DatasetConfig::scale1000`]: ten times the
    /// 100× group count under the same heterogeneous evaluation regime —
    /// 800 independent campaigns spread over a 2M-user world.
    pub fn scale1000() -> Self {
        Self {
            num_groups: 800,
            group_size_jitter: 0.3,
            target_coverage: 0.9,
            seed: 0x5eed_1002,
            ..Self::default()
        }
    }

    /// No attacks at all (clean dataset).
    pub fn none() -> Self {
        Self {
            num_groups: 0,
            ..Self::default()
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        for (name, (lo, hi)) in [
            ("target_clicks", self.target_clicks),
            ("hot_clicks", self.hot_clicks),
            ("camouflage_clicks", self.camouflage_clicks),
            ("target_organic_clicks", self.target_organic_clicks),
            (
                "attracted_users_per_target",
                self.attracted_users_per_target,
            ),
        ] {
            if lo > hi {
                return Err(format!("{name}: empty range {lo}..={hi}"));
            }
        }
        if self.target_clicks.0 == 0 || self.hot_clicks.0 == 0 || self.camouflage_clicks.0 == 0 {
            return Err("click ranges must start at ≥ 1".into());
        }
        if !(0.0..=1.0).contains(&self.target_coverage) {
            return Err("target_coverage must be in [0,1]".into());
        }
        if self.num_groups > 0 && (self.workers_per_group == 0 || self.targets_per_group == 0) {
            return Err("groups need at least one worker and one target".into());
        }
        if !(0.0..1.0).contains(&self.group_size_jitter) {
            return Err("group_size_jitter must be in [0, 1)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        DatasetConfig::default().validate().unwrap();
        AttackConfig::default().validate().unwrap();
        DatasetConfig::small().validate().unwrap();
        AttackConfig::small().validate().unwrap();
        AttackConfig::none().validate().unwrap();
        DatasetConfig::scale100().validate().unwrap();
        AttackConfig::scale100().validate().unwrap();
        DatasetConfig::scale1000().validate().unwrap();
        AttackConfig::scale1000().validate().unwrap();
    }

    #[test]
    fn scale1000_is_ten_x_scale100() {
        let c = DatasetConfig::scale1000();
        let d = DatasetConfig::scale100();
        assert_eq!(c.num_users, d.num_users * 10);
        assert_eq!(c.num_items, d.num_items * 10);
        assert_eq!(c.num_communities, d.num_communities * 10);
        assert_eq!(c.num_flash_items, d.num_flash_items * 10);
        assert_eq!(c.num_hunter_rings, d.num_hunter_rings * 10);
        assert_eq!(
            AttackConfig::scale1000().num_groups,
            AttackConfig::scale100().num_groups * 10
        );
    }

    #[test]
    fn scale100_is_ten_x_default() {
        let c = DatasetConfig::scale100();
        let d = DatasetConfig::default();
        assert_eq!(c.num_users, d.num_users * 10);
        assert_eq!(c.num_items, d.num_items * 10);
        assert_eq!(c.num_communities, d.num_communities * 10);
        assert_eq!(c.num_flash_items, d.num_flash_items * 10);
        assert_eq!(c.num_hunter_rings, d.num_hunter_rings * 10);
        assert_eq!(
            AttackConfig::scale100().num_groups,
            AttackConfig::default().num_groups * 10
        );
    }

    #[test]
    fn default_scale_matches_paper_ratio() {
        let c = DatasetConfig::default();
        // 1000x scale-down of 20M/4M.
        assert_eq!(c.num_users, 20_000);
        assert_eq!(c.num_items, 4_000);
        assert_eq!(c.num_users / c.num_items, 5);
    }

    #[test]
    fn scaled_adjusts_counts() {
        let c = DatasetConfig::default().scaled(0.5);
        assert_eq!(c.num_users, 10_000);
        assert_eq!(c.num_items, 2_000);
    }

    #[test]
    fn bad_dataset_configs_rejected() {
        let base = DatasetConfig::default;
        assert!(DatasetConfig {
            num_users: 0,
            ..base()
        }
        .validate()
        .is_err());
        assert!(DatasetConfig {
            max_user_degree: base().num_items + 1,
            ..base()
        }
        .validate()
        .is_err());
        assert!(DatasetConfig {
            cold_clicks_mean: 0.5,
            ..base()
        }
        .validate()
        .is_err());
        assert!(DatasetConfig {
            popular_rank_fraction: 1.5,
            ..base()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn bad_attack_configs_rejected() {
        let base = AttackConfig::default;
        assert!(AttackConfig {
            target_clicks: (5, 4),
            ..base()
        }
        .validate()
        .is_err());
        assert!(AttackConfig {
            hot_clicks: (0, 2),
            ..base()
        }
        .validate()
        .is_err());
        assert!(AttackConfig {
            target_coverage: -0.1,
            ..base()
        }
        .validate()
        .is_err());
        assert!(AttackConfig {
            workers_per_group: 0,
            ..base()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn serde_round_trip() {
        let c = DatasetConfig::default();
        let s = serde_json::to_string(&c).unwrap();
        let c2: DatasetConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(c, c2);
    }
}
