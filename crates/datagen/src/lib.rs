#![warn(missing_docs)]

//! # ricd-datagen — synthetic Taobao-like click data with planted attacks
//!
//! The paper's evaluation runs on a proprietary Taobao click table
//! (`TaoBao_UI_Clicks`: 20M users, 4M items, 90M click records, 200M total
//! clicks — Table I) with expert-labelled ground truth. Neither is available,
//! so this crate is the substitution mandated by the reproduction plan
//! (see `DESIGN.md`): a generator whose output matches the *shape* of the
//! paper's data — the statistics every RICD signal is derived from — with
//! exact ground-truth labels for the planted attacks.
//!
//! Calibration targets (at the default 1000× scale-down, 20k users / 4k
//! items):
//!
//! * per-user averages ≈ Table II's user row (≈11 total clicks over ≈4.3
//!   distinct items, heavy-tailed with stdev ≫ mean);
//! * per-item averages ≈ Table II's item row (≈55 clicks from ≈20 users);
//! * the Pareto 80/20 rule of Fig 2 / Section IV (top ~20% of items draw
//!   ~80% of clicks), from which `T_hot` is derived;
//! * normal users click hot items *more* per edge than cold items
//!   (Table IV's normal-user signature).
//!
//! The [`attack`] module plants "Ride Item's Coattails" groups implementing
//! the paper's own optimal-strategy analysis (Section IV-A): each crowd
//! worker clicks the group's hot items once or twice, its target items
//! heavily (≥ `T_click`), and a few random ordinary items as camouflage.
//! [`campaign`] simulates the Section VII marketing-campaign timeline for
//! Fig 10, and [`timeline`] generalizes it into the temporal scenario
//! engine: every click timestamped, diurnal organic traffic, flash-sale
//! spikes, and ramped attack campaigns with worker-account churn, emitted
//! as deterministic sequence-numbered batches. [`adversary`] goes beyond
//! the paper's fixed optimum: a pluggable [`AttackerStrategy`] trait with
//! detector-aware strategies (camouflage sweeps, budget splitting below
//! the `(k₁, k₂)` floor, hot-item mimicry, slow drips) driven by the
//! adversarial evaluation matrix in `ricd-eval`.

pub mod adversary;
pub mod attack;
pub mod builder;
pub mod campaign;
pub mod community;
pub mod config;
pub mod normal;
pub mod timeline;
pub mod truth;
pub mod zipf;

pub use adversary::{
    standard_strategies, AdversarialPlan, AttackBudget, AttackerStrategy, DetectorProfile,
    WorldView,
};
pub use builder::{generate, generate_with_attacks, SyntheticDataset};
pub use config::{AttackConfig, DatasetConfig};
pub use timeline::{
    build_timeline, CampaignSpec, CampaignWindow, FlashSaleSpec, ScenarioConfig, Tick, TimedBatch,
    TimedRecord, Timeline,
};
pub use truth::{GroundTruth, InjectedGroup};

/// Commonly used generator types.
pub mod prelude {
    pub use crate::adversary::{
        standard_strategies, AdversarialPlan, AttackBudget, AttackerStrategy, DetectorProfile,
        WorldView,
    };
    pub use crate::builder::{generate, generate_with_attacks, SyntheticDataset};
    pub use crate::campaign::{simulate_campaign, CampaignConfig, CampaignDay, CampaignTimeline};
    pub use crate::config::{AttackConfig, DatasetConfig};
    pub use crate::timeline::{
        build_timeline, CampaignSpec, CampaignWindow, FlashSaleSpec, ScenarioConfig, Tick,
        TimedBatch, TimedRecord, Timeline,
    };
    pub use crate::truth::{GroundTruth, InjectedGroup};
}
