//! Organic (normal-user) click traffic.

use crate::config::DatasetConfig;
use crate::zipf::{ClickCount, PowerLawDegree, ZipfSampler};
use rand::Rng;

/// One user's organic click list: `(item rank-resolved id, clicks)`.
pub type ClickList = Vec<(u32, u32)>;

/// Samplers for one dataset's organic population, built once per generation.
pub struct NormalModel {
    popularity: ZipfSampler,
    activity: PowerLawDegree,
    cold_clicks: ClickCount,
    hot_clicks: ClickCount,
    popular_cutoff: usize,
    num_items: usize,
}

impl NormalModel {
    /// Builds the samplers from a validated config.
    pub fn new(cfg: &DatasetConfig) -> Self {
        Self {
            popularity: ZipfSampler::new(cfg.num_items, cfg.popularity_exponent),
            activity: PowerLawDegree::new(
                cfg.max_user_degree.min(cfg.num_items),
                cfg.activity_exponent,
            ),
            cold_clicks: ClickCount::new(cfg.cold_clicks_mean, cfg.clicks_cap),
            hot_clicks: ClickCount::new(cfg.hot_clicks_mean, cfg.clicks_cap),
            popular_cutoff: ((cfg.num_items as f64) * cfg.popular_rank_fraction).ceil() as usize,
            num_items: cfg.num_items,
        }
    }

    /// Samples one organic user's click list.
    ///
    /// The user's distinct-item count comes from the activity power law; each
    /// item is drawn by Zipf popularity (duplicates rejected, so the list has
    /// distinct items); per-edge clicks are geometric with a larger mean on
    /// popular items — reproducing the Table IV normal-user signature of
    /// clicking hot items more.
    ///
    /// Item ids here equal popularity ranks (rank 0 = most popular). The
    /// dataset builder shuffles ranks into arbitrary ids afterwards so
    /// nothing downstream can cheat by reading popularity off the id.
    pub fn sample_user<R: Rng + ?Sized>(&self, rng: &mut R) -> ClickList {
        let degree = self.activity.sample(rng).min(self.num_items);
        let mut items: Vec<u32> = Vec::with_capacity(degree);
        // Rejection sampling for distinctness; degree ≪ num_items makes the
        // expected number of retries tiny. A hard retry cap keeps adversarial
        // configs (degree close to num_items) from spinning.
        let mut retries = 0;
        while items.len() < degree && retries < degree * 50 {
            let rank = self.popularity.sample(rng) as u32;
            if items.contains(&rank) {
                retries += 1;
            } else {
                items.push(rank);
            }
        }
        items
            .into_iter()
            .map(|rank| {
                let clicks = if (rank as usize) < self.popular_cutoff {
                    self.hot_clicks.sample(rng)
                } else {
                    self.cold_clicks.sample(rng)
                };
                (rank, clicks)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn click_lists_have_distinct_items() {
        let cfg = DatasetConfig::tiny();
        let model = NormalModel::new(&cfg);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let list = model.sample_user(&mut rng);
            let mut items: Vec<u32> = list.iter().map(|&(i, _)| i).collect();
            items.sort_unstable();
            items.dedup();
            assert_eq!(items.len(), list.len());
            assert!(list
                .iter()
                .all(|&(i, c)| (i as usize) < cfg.num_items && c >= 1));
        }
    }

    #[test]
    fn popular_items_get_more_clicks_per_edge() {
        let cfg = DatasetConfig::small();
        let model = NormalModel::new(&cfg);
        let mut rng = StdRng::seed_from_u64(9);
        let cutoff = ((cfg.num_items as f64) * cfg.popular_rank_fraction) as u32;
        let (mut hot_sum, mut hot_n, mut cold_sum, mut cold_n) = (0u64, 0u64, 0u64, 0u64);
        for _ in 0..3_000 {
            for (rank, clicks) in model.sample_user(&mut rng) {
                if rank < cutoff {
                    hot_sum += clicks as u64;
                    hot_n += 1;
                } else {
                    cold_sum += clicks as u64;
                    cold_n += 1;
                }
            }
        }
        assert!(hot_n > 0 && cold_n > 0);
        let hot_mean = hot_sum as f64 / hot_n as f64;
        let cold_mean = cold_sum as f64 / cold_n as f64;
        assert!(
            hot_mean > cold_mean + 0.3,
            "hot {hot_mean:.2} vs cold {cold_mean:.2}"
        );
    }

    #[test]
    fn mean_degree_close_to_table2() {
        // Paper Table II: Avg_cnt (distinct items per user) ≈ 4.32.
        let cfg = DatasetConfig::default();
        let model = NormalModel::new(&cfg);
        let mut rng = StdRng::seed_from_u64(13);
        let n = 5_000;
        let total: usize = (0..n).map(|_| model.sample_user(&mut rng).len()).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (3.0..6.5).contains(&mean),
            "mean degree {mean:.2} outside Table II band"
        );
    }

    #[test]
    fn degree_capped_by_item_count() {
        let mut cfg = DatasetConfig::tiny();
        cfg.num_items = 10;
        cfg.max_user_degree = 10;
        let model = NormalModel::new(&cfg);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(model.sample_user(&mut rng).len() <= 10);
        }
    }
}
