//! Temporal scenario engine: timestamped click generation (ROADMAP item 4).
//!
//! Real fake-click campaigns are *time* phenomena — the paper's Section VII
//! case study is a day-by-day narrative of a ramp, a launch, and a cleaning
//! day — but the base generator emits an unordered click multiset. This
//! module assigns a timestamp (an abstract [`Tick`]) to every click and
//! slices the stream into sequence-numbered batches:
//!
//! * **organic traffic** follows a diurnal cycle (a sinusoidal weight over
//!   the time of day) over the whole horizon;
//! * **flash sales** add short spikes of extra organic clicks on the
//!   popularity head;
//! * **attack campaigns** plant one Ride-Item's-Coattails group each
//!   ([`crate::attack::plan_attacks`]) and spread its clicks over a
//!   start/ramp/stop window, split into unit clicks so an edge accumulates
//!   weight *gradually* — a slow drip, not a single lump. Worker-account
//!   **churn** partitions the group's workers into cohorts active in
//!   consecutive sub-intervals of the campaign, the way crowd tasks rotate
//!   through accounts.
//!
//! Everything is deterministic from [`ScenarioConfig::seed`]: the same
//! config yields byte-identical [`Timeline`]s. The per-slot ramp weighting
//! is the same [`RampSchedule`] the Fig 10 runner
//! ([`crate::campaign::simulate_campaign`]) uses for its day loop, so the
//! ramp logic exists once.

use crate::attack::{plan_attacks, IdAllocator};
use crate::builder::generate;
use crate::config::{AttackConfig, DatasetConfig};
use crate::truth::GroundTruth;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ricd_graph::{ItemId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Simulation clock unit. Ticks are abstract — presets use 100 ticks per
/// batch and 400 per "day", but nothing in the engine assigns them a
/// wall-clock meaning.
pub type Tick = u64;

/// A click record with an event timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedRecord {
    /// Clicking user.
    pub user: UserId,
    /// Clicked item.
    pub item: ItemId,
    /// Click count delivered at this instant.
    pub clicks: u32,
    /// Event time.
    pub ts: Tick,
}

impl TimedRecord {
    /// The record without its timestamp (the classic batch shape).
    pub fn untimed(&self) -> (UserId, ItemId, u32) {
        (self.user, self.item, self.clicks)
    }

    /// The wire-tuple shape used by `Request::IngestTimed`.
    pub fn wire(&self) -> (UserId, ItemId, u32, u64) {
        (self.user, self.item, self.clicks, self.ts)
    }
}

/// A weighted slot schedule: picks a slot index with probability
/// proportional to its weight. This is the single home of the ramp-pick
/// logic shared by the timeline engine and the Fig 10 day loop.
///
/// `pick` consumes exactly one `rng.gen::<f64>()` per call and resolves it
/// with a linear scan — the Fig 10 runner's original consumption pattern,
/// preserved so its output stays byte-stable.
pub struct RampSchedule {
    slots: Vec<usize>,
    weights: Vec<f64>,
    weight_sum: f64,
}

impl RampSchedule {
    /// A linear ramp over `slots`: the i-th slot has weight `i + 1`, so
    /// later slots carry proportionally more traffic.
    pub fn linear(slots: Vec<usize>) -> Self {
        let weights: Vec<f64> = (1..=slots.len()).map(|i| i as f64).collect();
        Self::weighted(slots, weights)
    }

    /// An arbitrary non-negative weighting of `slots`.
    pub fn weighted(slots: Vec<usize>, weights: Vec<f64>) -> Self {
        assert_eq!(slots.len(), weights.len(), "one weight per slot");
        let weight_sum: f64 = weights.iter().sum();
        Self {
            slots,
            weights,
            weight_sum,
        }
    }

    /// True if the schedule has no slots (every `pick` would panic).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Picks a weighted slot. Consumes exactly one `f64` from `rng`.
    pub fn pick<R: Rng>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen::<f64>() * self.weight_sum;
        let mut acc = 0.0;
        let mut slot = *self.slots.last().expect("non-empty schedule");
        for (i, &w) in self.weights.iter().enumerate() {
            acc += w;
            if x <= acc {
                slot = self.slots[i];
                break;
            }
        }
        slot
    }
}

/// A short spike of *organic* traffic on the popularity head — a flash
/// sale or promotion. Benign: never part of the ground truth.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlashSaleSpec {
    /// First tick of the spike.
    pub start: Tick,
    /// Spike length in ticks.
    pub duration: Tick,
    /// Extra single-click records spread uniformly over the spike.
    pub extra_clicks: u32,
}

/// One attack campaign on the timeline: a single planted group whose
/// clicks drip in over `[start, stop)`, ramping up linearly during the
/// first `ramp` ticks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// First tick with campaign traffic.
    pub start: Tick,
    /// Ramp-up length: traffic grows linearly over `[start, start + ramp)`
    /// and holds steady afterwards. `0` starts at full intensity.
    pub ramp: Tick,
    /// Exclusive end of campaign traffic.
    pub stop: Tick,
    /// Worker-account churn: the group's workers are split into this many
    /// cohorts, cohort `j` active only during the `j`-th equal sub-interval
    /// of the campaign. `1` keeps every account active throughout.
    pub churn_cohorts: usize,
    /// Shape of the planted group (`num_groups` is forced to 1).
    pub attack: AttackConfig,
}

/// A fully timestamped scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Simulation length in ticks; all traffic lands in `[0, horizon)`.
    pub horizon: Tick,
    /// Ticks per emitted batch (and per ramp/diurnal weighting slot).
    pub batch_interval: Tick,
    /// Ticks per simulated day (the diurnal period).
    pub day_length: Tick,
    /// Amplitude of the diurnal organic cycle in `[0, 1)`: slot weight is
    /// `1 + amplitude · sin(2π · time_of_day)`.
    pub diurnal_amplitude: f64,
    /// The organic background population.
    pub dataset: DatasetConfig,
    /// Flash-sale spikes.
    pub flash_sales: Vec<FlashSaleSpec>,
    /// Attack campaigns (one planted group each).
    pub campaigns: Vec<CampaignSpec>,
    /// RNG seed for every timestamp assignment.
    pub seed: u64,
}

impl ScenarioConfig {
    /// The **burst** preset: a tiny world where one case-study-shaped
    /// group spends its whole click budget inside two batches. The
    /// canonical "detector must fire within a fixed batch budget" workload.
    pub fn burst() -> Self {
        Self {
            horizon: 1_200,
            batch_interval: 100,
            day_length: 400,
            diurnal_amplitude: 0.5,
            dataset: DatasetConfig::tiny(),
            flash_sales: vec![FlashSaleSpec {
                start: 700,
                duration: 100,
                extra_clicks: 300,
            }],
            campaigns: vec![CampaignSpec {
                start: 300,
                ramp: 100,
                stop: 500,
                churn_cohorts: 1,
                attack: Self::case_study_group(),
            }],
            seed: 0x5eed_0007,
        }
    }

    /// The **slow-drip** preset: the same group stretched over sixteen
    /// batches with two worker cohorts churning halfway through — the
    /// detector-aware strategy from the adaptive-fraudster literature.
    /// Each worker still delivers its full per-edge budget *within its
    /// cohort's half* of the campaign, so a sliding window spanning one
    /// cohort interval accumulates the evidence while unbounded history
    /// stays unnecessary.
    pub fn slow_drip() -> Self {
        Self {
            horizon: 2_400,
            batch_interval: 100,
            day_length: 400,
            diurnal_amplitude: 0.5,
            dataset: DatasetConfig::tiny(),
            flash_sales: vec![FlashSaleSpec {
                start: 200,
                duration: 100,
                extra_clicks: 200,
            }],
            campaigns: vec![CampaignSpec {
                start: 400,
                ramp: 800,
                stop: 2_000,
                churn_cohorts: 2,
                attack: Self::case_study_group(),
            }],
            seed: 0x5eed_0008,
        }
    }

    fn case_study_group() -> AttackConfig {
        AttackConfig {
            num_groups: 1,
            workers_per_group: 25,
            targets_per_group: 12,
            hot_items_per_group: 2,
            ..AttackConfig::default()
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.horizon == 0 || self.batch_interval == 0 {
            return Err("horizon and batch_interval must be positive".into());
        }
        if self.batch_interval > self.horizon {
            return Err("batch_interval exceeds the horizon".into());
        }
        if self.day_length == 0 {
            return Err("day_length must be positive".into());
        }
        if !(0.0..1.0).contains(&self.diurnal_amplitude) {
            return Err("diurnal_amplitude must be in [0, 1)".into());
        }
        self.dataset.validate()?;
        for fs in &self.flash_sales {
            if fs.duration == 0 {
                return Err("flash sale duration must be positive".into());
            }
            if fs.start + fs.duration > self.horizon {
                return Err("flash sale extends past the horizon".into());
            }
        }
        for c in &self.campaigns {
            if c.start >= c.stop {
                return Err("campaign window is empty".into());
            }
            if c.stop > self.horizon {
                return Err("campaign extends past the horizon".into());
            }
            if c.ramp > c.stop - c.start {
                return Err("campaign ramp exceeds its window".into());
            }
            if c.churn_cohorts == 0 {
                return Err("churn_cohorts must be ≥ 1".into());
            }
            if c.attack.workers_per_group < c.churn_cohorts {
                return Err("fewer workers than churn cohorts".into());
            }
            c.attack.validate()?;
        }
        Ok(())
    }
}

/// One emitted batch: all records with `start ≤ ts < end`, sorted by time.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedBatch {
    /// Batch sequence number (`0..`), the serve tier's ingest seq.
    pub seq: u64,
    /// Inclusive start tick of the batch's interval.
    pub start: Tick,
    /// Exclusive end tick.
    pub end: Tick,
    /// Timestamped records, sorted by `(ts, user, item)`.
    pub records: Vec<TimedRecord>,
}

impl TimedBatch {
    /// The batch without timestamps (the classic ingest shape).
    pub fn untimed(&self) -> Vec<(UserId, ItemId, u32)> {
        self.records.iter().map(TimedRecord::untimed).collect()
    }

    /// The batch in the timed wire shape.
    pub fn wire(&self) -> Vec<(UserId, ItemId, u32, u64)> {
        self.records.iter().map(TimedRecord::wire).collect()
    }
}

/// A campaign's placement on the timeline, for time-to-flag evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignWindow {
    /// Index of this campaign's group in [`Timeline::truth`].
    pub group: usize,
    /// First tick with campaign traffic.
    pub start: Tick,
    /// End of the ramp phase (`start + ramp`).
    pub ramp_end: Tick,
    /// Exclusive end of campaign traffic.
    pub stop: Tick,
}

/// A generated scenario: seed-stable timestamped batches plus ground truth.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// The generating configuration.
    pub config: ScenarioConfig,
    /// Contiguous batches covering `[0, horizon)`. Batches with no traffic
    /// are present (empty): they still advance the detector's clock.
    pub batches: Vec<TimedBatch>,
    /// Ground truth for every planted campaign group.
    pub truth: GroundTruth,
    /// Per-campaign placement, index-aligned with `truth.groups`.
    pub campaigns: Vec<CampaignWindow>,
}

impl Timeline {
    /// Total records across all batches.
    pub fn num_records(&self) -> usize {
        self.batches.iter().map(|b| b.records.len()).sum()
    }

    /// All records, untimed — the one-shot batch view of the scenario.
    pub fn all_untimed(&self) -> Vec<(UserId, ItemId, u32)> {
        self.batches
            .iter()
            .flat_map(|b| b.records.iter().map(TimedRecord::untimed))
            .collect()
    }
}

/// Linear ramp weight at tick `t` for a campaign starting at `start` with
/// the given ramp length: grows from near 0 to 1 over the ramp, then holds.
fn ramp_weight(t: Tick, start: Tick, ramp: Tick) -> f64 {
    if ramp == 0 || t >= start + ramp {
        1.0
    } else {
        (t.saturating_sub(start) + 1) as f64 / ramp as f64
    }
}

/// Builds the slot schedule for an interval `[lo, hi)` of a campaign:
/// slots overlapping the interval, weighted by the campaign's ramp profile
/// at the slot midpoint (clipped into the interval).
fn campaign_schedule(
    lo: Tick,
    hi: Tick,
    start: Tick,
    ramp: Tick,
    batch_interval: Tick,
    num_slots: usize,
) -> RampSchedule {
    let mut slots = Vec::new();
    let mut weights = Vec::new();
    for s in 0..num_slots {
        let s_start = s as Tick * batch_interval;
        let s_end = s_start + batch_interval;
        if s_start < hi && s_end > lo {
            let a = s_start.max(lo);
            let b = s_end.min(hi);
            let mid = a + (b - a) / 2;
            slots.push(s);
            // Weight by ramp intensity AND by how much of the slot the
            // interval covers, so a sliver slot doesn't get a full share.
            let coverage = (b - a) as f64 / batch_interval as f64;
            weights.push(ramp_weight(mid, start, ramp) * coverage);
        }
    }
    RampSchedule::weighted(slots, weights)
}

/// Draws a tick uniformly from the part of slot `s` inside `[lo, hi)`.
fn tick_in_slot<R: Rng>(rng: &mut R, s: usize, batch_interval: Tick, lo: Tick, hi: Tick) -> Tick {
    let s_start = (s as Tick * batch_interval).max(lo);
    let s_end = (s as Tick * batch_interval + batch_interval).min(hi);
    let span = s_end.saturating_sub(s_start).max(1);
    s_start + rng.gen_range(0..span)
}

/// Generates the timeline: organic background with diurnal timestamps,
/// flash-sale spikes, and ramped, churning attack campaigns, sliced into
/// sequence-numbered batches. Deterministic from the config.
pub fn build_timeline(cfg: &ScenarioConfig) -> Result<Timeline, String> {
    cfg.validate()?;
    let background = generate(&cfg.dataset, &AttackConfig::none())?;
    let num_users = background.graph.num_users();
    let num_items = background.graph.num_items();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let num_slots = cfg.horizon.div_ceil(cfg.batch_interval) as usize;

    // Organic background: each aggregated edge lands whole at a
    // diurnally-weighted instant.
    let diurnal = RampSchedule::weighted(
        (0..num_slots).collect(),
        (0..num_slots)
            .map(|s| {
                let mid = s as Tick * cfg.batch_interval + cfg.batch_interval / 2;
                let phase = (mid % cfg.day_length) as f64 / cfg.day_length as f64;
                1.0 + cfg.diurnal_amplitude * (2.0 * std::f64::consts::PI * phase).sin()
            })
            .collect(),
    );
    let mut records: Vec<TimedRecord> = Vec::new();
    for (user, item, clicks) in background.graph.edges() {
        let slot = diurnal.pick(&mut rng);
        let ts = tick_in_slot(&mut rng, slot, cfg.batch_interval, 0, cfg.horizon);
        records.push(TimedRecord {
            user,
            item,
            clicks,
            ts,
        });
    }

    // Popularity head, shared by flash sales and campaign planning.
    let totals = background.graph.all_item_total_clicks();
    let mut by_clicks: Vec<u32> = (0..num_items as u32).collect();
    by_clicks.sort_unstable_by_key(|&v| std::cmp::Reverse(totals[v as usize]));
    let max_hot = cfg
        .campaigns
        .iter()
        .map(|c| c.attack.hot_items_per_group)
        .max()
        .unwrap_or(0);
    let head = (by_clicks.len() / 100).max(max_hot).max(1);
    let hot_pool: Vec<ItemId> = by_clicks[..head].iter().map(|&v| ItemId(v)).collect();
    let ordinary_pool: Vec<ItemId> = by_clicks[head..].iter().map(|&v| ItemId(v)).collect();

    // Flash sales: extra single clicks on the head, uniform over the spike.
    for fs in &cfg.flash_sales {
        for _ in 0..fs.extra_clicks {
            let user = UserId(rng.gen_range(0..num_users as u32));
            let item = hot_pool[rng.gen_range(0..hot_pool.len())];
            let ts = fs.start + rng.gen_range(0..fs.duration);
            records.push(TimedRecord {
                user,
                item,
                clicks: 1,
                ts,
            });
        }
    }

    // Campaigns: plan one group each against the shared pools, then drip
    // its clicks over the campaign window, unit click by unit click.
    let mut alloc = IdAllocator::new(num_users, num_items);
    let mut truth = GroundTruth::default();
    let mut campaigns = Vec::new();
    for camp in &cfg.campaigns {
        let mut attack = camp.attack.clone();
        attack.num_groups = 1;
        let plan = plan_attacks(
            &attack,
            &hot_pool,
            &ordinary_pool,
            num_users,
            &mut alloc,
            &mut rng,
        )?;
        let group = plan.truth.groups[0].clone();
        let dur = camp.stop - camp.start;
        let cohorts = camp.churn_cohorts.max(1).min(group.workers.len());
        // Contiguous worker blocks → consecutive activity sub-intervals.
        let worker_cohort: BTreeMap<UserId, usize> = group
            .workers
            .iter()
            .enumerate()
            .map(|(i, &w)| (w, i * cohorts / group.workers.len()))
            .collect();
        let intervals: Vec<(Tick, Tick)> = (0..cohorts as Tick)
            .map(|j| {
                (
                    camp.start + dur * j / cohorts as Tick,
                    camp.start + dur * (j + 1) / cohorts as Tick,
                )
            })
            .collect();
        let schedules: Vec<RampSchedule> = intervals
            .iter()
            .map(|&(lo, hi)| {
                campaign_schedule(lo, hi, camp.start, camp.ramp, cfg.batch_interval, num_slots)
            })
            .collect();
        let whole_schedule = campaign_schedule(
            camp.start,
            camp.stop,
            camp.start,
            camp.ramp,
            cfg.batch_interval,
            num_slots,
        );
        for &(user, item, clicks) in &plan.records {
            let (lo, hi, sched) = match worker_cohort.get(&user) {
                Some(&j) => (intervals[j].0, intervals[j].1, &schedules[j]),
                // Attracted organic users and trickle traffic use the whole
                // campaign window.
                None => (camp.start, camp.stop, &whole_schedule),
            };
            for _ in 0..clicks {
                let slot = sched.pick(&mut rng);
                let ts = tick_in_slot(&mut rng, slot, cfg.batch_interval, lo, hi);
                records.push(TimedRecord {
                    user,
                    item,
                    clicks: 1,
                    ts,
                });
            }
        }
        campaigns.push(CampaignWindow {
            group: truth.groups.len(),
            start: camp.start,
            ramp_end: camp.start + camp.ramp,
            stop: camp.stop,
        });
        truth.groups.extend(plan.truth.groups);
    }

    // Slice into contiguous batches. Sorting is total (ties broken by ids)
    // so the batch contents are independent of generation order.
    records.sort_unstable_by_key(|r| (r.ts, r.user.0, r.item.0, r.clicks));
    let mut batches: Vec<TimedBatch> = (0..num_slots as u64)
        .map(|seq| TimedBatch {
            seq,
            start: seq * cfg.batch_interval,
            end: ((seq + 1) * cfg.batch_interval).min(cfg.horizon),
            records: Vec::new(),
        })
        .collect();
    for r in records {
        let slot = (r.ts / cfg.batch_interval) as usize;
        batches[slot.min(num_slots - 1)].records.push(r);
    }

    Ok(Timeline {
        config: cfg.clone(),
        batches,
        truth,
        campaigns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn presets_validate_and_build() {
        for cfg in [ScenarioConfig::burst(), ScenarioConfig::slow_drip()] {
            cfg.validate().unwrap();
            let tl = build_timeline(&cfg).unwrap();
            assert_eq!(tl.truth.groups.len(), 1);
            assert_eq!(tl.campaigns.len(), 1);
            assert!(tl.num_records() > 0);
        }
    }

    #[test]
    fn timeline_is_deterministic() {
        let cfg = ScenarioConfig::burst();
        let a = build_timeline(&cfg).unwrap();
        let b = build_timeline(&cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_the_timeline() {
        let a = build_timeline(&ScenarioConfig::burst()).unwrap();
        let cfg = ScenarioConfig {
            seed: 0xdead_beef,
            ..ScenarioConfig::burst()
        };
        let b = build_timeline(&cfg).unwrap();
        assert_ne!(a.batches, b.batches);
    }

    #[test]
    fn batches_partition_the_horizon() {
        let tl = build_timeline(&ScenarioConfig::burst()).unwrap();
        let cfg = &tl.config;
        assert_eq!(
            tl.batches.len() as u64,
            cfg.horizon.div_ceil(cfg.batch_interval)
        );
        let mut expect_start = 0;
        for (i, b) in tl.batches.iter().enumerate() {
            assert_eq!(b.seq, i as u64);
            assert_eq!(b.start, expect_start);
            assert!(b.end > b.start);
            expect_start = b.end;
            for r in &b.records {
                assert!(b.start <= r.ts && r.ts < b.end, "record outside batch");
                assert!(r.clicks > 0);
            }
            for w in b.records.windows(2) {
                assert!(w[0].ts <= w[1].ts, "batch not time-sorted");
            }
        }
        assert_eq!(expect_start, cfg.horizon);
    }

    #[test]
    fn campaign_clicks_stay_in_their_window() {
        let tl = build_timeline(&ScenarioConfig::slow_drip()).unwrap();
        let camp = tl.campaigns[0];
        let workers: BTreeSet<UserId> = tl.truth.groups[camp.group]
            .workers
            .iter()
            .copied()
            .collect();
        for b in &tl.batches {
            for r in &b.records {
                if workers.contains(&r.user) {
                    assert!(
                        camp.start <= r.ts && r.ts < camp.stop,
                        "worker click at {} outside [{}, {})",
                        r.ts,
                        camp.start,
                        camp.stop
                    );
                    assert_eq!(r.clicks, 1, "campaign clicks drip in as units");
                }
            }
        }
    }

    #[test]
    fn churn_cohorts_partition_worker_activity() {
        let tl = build_timeline(&ScenarioConfig::slow_drip()).unwrap();
        let camp = tl.campaigns[0];
        let mid = camp.start + (camp.stop - camp.start) / 2;
        let workers = &tl.truth.groups[camp.group].workers;
        // With two cohorts, every worker's clicks land entirely in one half.
        let mut spans: BTreeMap<UserId, (Tick, Tick)> = BTreeMap::new();
        for b in &tl.batches {
            for r in &b.records {
                if workers.contains(&r.user) {
                    let e = spans.entry(r.user).or_insert((r.ts, r.ts));
                    e.0 = e.0.min(r.ts);
                    e.1 = e.1.max(r.ts);
                }
            }
        }
        let mut first = 0;
        let mut second = 0;
        for (_, (lo, hi)) in spans {
            assert!(
                hi < mid || lo >= mid,
                "worker active across the churn boundary: [{lo}, {hi}] vs mid {mid}"
            );
            if hi < mid {
                first += 1;
            } else {
                second += 1;
            }
        }
        assert!(first > 0 && second > 0, "both cohorts active");
    }

    #[test]
    fn ramp_shifts_traffic_toward_the_end() {
        // Over the burst campaign's ramp phase, the second half of the
        // window carries more campaign clicks than the first.
        let tl = build_timeline(&ScenarioConfig::burst()).unwrap();
        let camp = tl.campaigns[0];
        let workers: BTreeSet<UserId> = tl.truth.groups[camp.group]
            .workers
            .iter()
            .copied()
            .collect();
        let mid = camp.start + (camp.stop - camp.start) / 2;
        let (mut early, mut late) = (0u64, 0u64);
        for b in &tl.batches {
            for r in &b.records {
                if workers.contains(&r.user) {
                    if r.ts < mid {
                        early += 1;
                    } else {
                        late += 1;
                    }
                }
            }
        }
        assert!(
            late > early,
            "ramp should back-load the campaign: {early} early vs {late} late"
        );
    }

    #[test]
    fn untimed_view_matches_wire_view() {
        let tl = build_timeline(&ScenarioConfig::burst()).unwrap();
        let b = tl
            .batches
            .iter()
            .find(|b| !b.records.is_empty())
            .expect("some batch has records");
        let untimed = b.untimed();
        let wire = b.wire();
        assert_eq!(untimed.len(), wire.len());
        for (u, w) in untimed.iter().zip(&wire) {
            assert_eq!((u.0, u.1, u.2), (w.0, w.1, w.2));
        }
    }

    #[test]
    fn bad_configs_rejected() {
        let base = ScenarioConfig::burst;
        let bad = ScenarioConfig {
            horizon: 0,
            ..base()
        };
        assert!(bad.validate().is_err());
        let mut bad = base();
        bad.campaigns[0].stop = bad.horizon + 1;
        assert!(bad.validate().is_err());
        let mut bad = base();
        bad.campaigns[0].churn_cohorts = 0;
        assert!(bad.validate().is_err());
        let mut bad = base();
        bad.campaigns[0].ramp = bad.campaigns[0].stop;
        assert!(bad.validate().is_err());
        let mut bad = base();
        bad.flash_sales[0].start = bad.horizon;
        assert!(bad.validate().is_err());
        let bad = ScenarioConfig {
            diurnal_amplitude: 1.5,
            ..base()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let tl = build_timeline(&ScenarioConfig::burst()).unwrap();
        let s = serde_json::to_string(&tl).unwrap();
        let tl2: Timeline = serde_json::from_str(&s).unwrap();
        assert_eq!(tl, tl2);
    }

    #[test]
    fn linear_schedule_matches_manual_scan() {
        // The pick must consume exactly one f64 and resolve it the way the
        // Fig 10 loop always did.
        let sched = RampSchedule::linear(vec![3, 4, 5]);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            let picked = sched.pick(&mut a);
            let x: f64 = b.gen::<f64>() * 6.0;
            let manual = if x <= 1.0 {
                3
            } else if x <= 3.0 {
                4
            } else {
                5
            };
            assert_eq!(picked, manual);
        }
    }
}
