//! Ground-truth labels for planted attacks.
//!
//! The paper builds its ground truth by sampling detector output and asking
//! business experts to label ~2,000 nodes. With planted attacks we know the
//! truth exactly: every crowd-worker account and every target item, per
//! group. The evaluation crate consumes this to compute Eq 5/6 precision and
//! recall.

use ricd_graph::{ItemId, UserId};
use serde::{Deserialize, Serialize};

/// One planted "Ride Item's Coattails" group.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedGroup {
    /// Crowd-worker user accounts.
    pub workers: Vec<UserId>,
    /// Low-quality target items the sellers are boosting.
    pub targets: Vec<ItemId>,
    /// The hot items the group rides (NOT abnormal nodes themselves — they
    /// are victims; kept for analysis and the camouflage-restriction tests).
    pub ridden_hot_items: Vec<ItemId>,
}

/// All planted abnormal nodes in a dataset.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Per-group structure.
    pub groups: Vec<InjectedGroup>,
}

impl GroundTruth {
    /// All abnormal users, deduplicated and sorted.
    pub fn abnormal_users(&self) -> Vec<UserId> {
        let mut u: Vec<UserId> = self
            .groups
            .iter()
            .flat_map(|g| g.workers.iter().copied())
            .collect();
        u.sort_unstable();
        u.dedup();
        u
    }

    /// All abnormal (target) items, deduplicated and sorted.
    pub fn abnormal_items(&self) -> Vec<ItemId> {
        let mut v: Vec<ItemId> = self
            .groups
            .iter()
            .flat_map(|g| g.targets.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total number of known abnormal nodes (users + items), the denominator
    /// of the paper's recall (Eq 6).
    pub fn num_abnormal(&self) -> usize {
        self.abnormal_users().len() + self.abnormal_items().len()
    }

    /// True if `u` is a planted worker.
    pub fn is_abnormal_user(&self, u: UserId) -> bool {
        self.groups.iter().any(|g| g.workers.contains(&u))
    }

    /// True if `v` is a planted target item.
    pub fn is_abnormal_item(&self, v: ItemId) -> bool {
        self.groups.iter().any(|g| g.targets.contains(&v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        GroundTruth {
            groups: vec![
                InjectedGroup {
                    workers: vec![UserId(1), UserId(2)],
                    targets: vec![ItemId(10)],
                    ridden_hot_items: vec![ItemId(0)],
                },
                InjectedGroup {
                    workers: vec![UserId(2), UserId(3)],
                    targets: vec![ItemId(11), ItemId(10)],
                    ridden_hot_items: vec![ItemId(0)],
                },
            ],
        }
    }

    #[test]
    fn dedup_across_groups() {
        let t = truth();
        assert_eq!(t.abnormal_users(), vec![UserId(1), UserId(2), UserId(3)]);
        assert_eq!(t.abnormal_items(), vec![ItemId(10), ItemId(11)]);
        assert_eq!(t.num_abnormal(), 5);
    }

    #[test]
    fn membership_checks() {
        let t = truth();
        assert!(t.is_abnormal_user(UserId(3)));
        assert!(!t.is_abnormal_user(UserId(9)));
        assert!(t.is_abnormal_item(ItemId(11)));
        assert!(
            !t.is_abnormal_item(ItemId(0)),
            "ridden hot items are victims, not abnormal"
        );
    }

    #[test]
    fn empty_truth() {
        let t = GroundTruth::default();
        assert_eq!(t.num_abnormal(), 0);
        assert!(t.abnormal_users().is_empty());
    }
}
