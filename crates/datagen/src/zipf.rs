//! Heavy-tail samplers.
//!
//! Fig 2 shows both per-item and per-user click totals are heavy-tailed, and
//! Section IV leans on the Pareto principle (top ~20% of items ← ~80% of
//! clicks) to derive `T_hot`. We implement two samplers from scratch (the
//! `rand_distr` crate is outside the allowed dependency set):
//!
//! * [`ZipfSampler`] — ranks `0..n` with `P(rank k) ∝ (k+1)^{-s}` via a
//!   precomputed CDF and binary search; used for item popularity.
//! * [`PowerLawDegree`] — a truncated discrete power law on `1..=max`,
//!   used for per-user activity (distinct items clicked).

use rand::Rng;

/// Zipf-distributed ranks `0..n` (rank 0 is the most popular).
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with exponent `s > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite/positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(s.is_finite() && s > 0.0, "exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += ((k + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the end.
        *cdf.last_mut().unwrap() = 1.0;
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always at least one rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen();
        // partition_point returns the first index with cdf[i] >= x.
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }

    /// Probability mass of a rank (for tests/calibration).
    pub fn pmf(&self, rank: usize) -> f64 {
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }
}

/// Truncated discrete power law on `1..=max`: `P(d) ∝ d^{-alpha}`.
#[derive(Clone, Debug)]
pub struct PowerLawDegree {
    zipf: ZipfSampler,
}

impl PowerLawDegree {
    /// Builds the sampler for degrees `1..=max` with exponent `alpha`.
    pub fn new(max: usize, alpha: f64) -> Self {
        Self {
            zipf: ZipfSampler::new(max, alpha),
        }
    }

    /// Draws a degree in `1..=max`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.zipf.sample(rng) + 1
    }

    /// Expected value (for calibration).
    pub fn mean(&self) -> f64 {
        (0..self.zipf.len())
            .map(|k| (k + 1) as f64 * self.zipf.pmf(k))
            .sum()
    }
}

/// Geometric click-count sampler on `1..` with mean `1/p`, capped at `cap`.
///
/// Per-edge click counts are small and memoryless-ish (a user re-clicking an
/// item a few times); the cap keeps a single organic edge from looking like
/// an attack edge.
#[derive(Clone, Copy, Debug)]
pub struct ClickCount {
    p: f64,
    cap: u32,
}

impl ClickCount {
    /// Mean `mean ≥ 1`, capped at `cap ≥ 1`.
    pub fn new(mean: f64, cap: u32) -> Self {
        assert!(mean >= 1.0, "mean clicks per edge must be ≥ 1");
        assert!(cap >= 1);
        Self { p: 1.0 / mean, cap }
    }

    /// Draws a click count in `1..=cap`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let mut c = 1u32;
        while c < self.cap && rng.gen::<f64>() > self.p {
            c += 1;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = ZipfSampler::new(100, 1.1);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_rank0_most_probable() {
        let z = ZipfSampler::new(50, 1.0);
        for k in 1..50 {
            assert!(z.pmf(0) >= z.pmf(k));
        }
    }

    #[test]
    fn zipf_samples_in_range_and_skewed() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut top10 = 0;
        let n = 20_000;
        for _ in 0..n {
            let r = z.sample(&mut rng);
            assert!(r < 1000);
            if r < 10 {
                top10 += 1;
            }
        }
        // With s=1.0 and n=1000, P(rank<10) = H(10)/H(1000) ≈ 2.93/7.49 ≈ 0.39.
        let frac = top10 as f64 / n as f64;
        assert!((0.3..0.5).contains(&frac), "top-10 mass {frac}");
    }

    #[test]
    fn zipf_single_rank() {
        let z = ZipfSampler::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_ranks_panics() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn power_law_degree_in_bounds_and_mean_matches() {
        let d = PowerLawDegree::new(200, 2.0);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let mut sum = 0usize;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!((1..=200).contains(&x));
            sum += x;
        }
        let emp = sum as f64 / n as f64;
        let theo = d.mean();
        assert!(
            (emp - theo).abs() / theo < 0.1,
            "empirical {emp} vs theoretical {theo}"
        );
    }

    #[test]
    fn click_count_mean_and_cap() {
        let c = ClickCount::new(2.2, 50);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let x = c.sample(&mut rng);
            assert!((1..=50).contains(&x));
            sum += x as u64;
        }
        let emp = sum as f64 / n as f64;
        assert!((1.9..2.5).contains(&emp), "mean {emp}");
    }

    #[test]
    fn click_count_cap_one_is_constant() {
        let c = ClickCount::new(5.0, 1);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(c.sample(&mut rng), 1);
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let z = ZipfSampler::new(500, 1.2);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
