//! Generation determinism: the synthetic world is a function of its
//! configuration, nothing else. The same seed must produce *byte-identical*
//! TSV output — across runs, at every preset. Anything less silently breaks
//! golden files, `BENCH_extract.json` trajectories, and cross-run
//! shard-vs-unsharded comparisons.

use ricd_datagen::prelude::*;
use ricd_graph::io::write_tsv;

fn tsv_bytes(dataset: &DatasetConfig, attack: &AttackConfig) -> Vec<u8> {
    let ds = generate(dataset, attack).expect("valid configs");
    let mut buf = Vec::new();
    write_tsv(&ds.graph, &mut buf).expect("in-memory write");
    buf
}

#[test]
fn default_preset_is_byte_deterministic() {
    let a = tsv_bytes(&DatasetConfig::default(), &AttackConfig::evaluation());
    let b = tsv_bytes(&DatasetConfig::default(), &AttackConfig::evaluation());
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "default (1000x scale-down) preset must be reproducible"
    );
}

#[test]
fn scale100_preset_is_byte_deterministic() {
    let a = tsv_bytes(&DatasetConfig::scale100(), &AttackConfig::scale100());
    let b = tsv_bytes(&DatasetConfig::scale100(), &AttackConfig::scale100());
    assert!(!a.is_empty());
    assert_eq!(a, b, "100x scale-down preset must be reproducible");
}

#[test]
fn seed_changes_the_world() {
    // The complement: determinism must come from the seed, not from the
    // generator ignoring it.
    let base = tsv_bytes(&DatasetConfig::default(), &AttackConfig::evaluation());
    let reseeded = tsv_bytes(
        &DatasetConfig {
            seed: 0xdead_beef,
            ..DatasetConfig::default()
        },
        &AttackConfig::evaluation(),
    );
    assert_ne!(
        base, reseeded,
        "a different seed must produce a different world"
    );
}
