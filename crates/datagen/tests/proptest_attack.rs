//! Property tests of the adversary strategy library: every shipped
//! [`AttackerStrategy`] is **seed-stable** (same seed ⇒ byte-identical
//! click set and truth) and **budget-sound** (total injected clicks never
//! exceed the budget, for any detector operating point and world shape).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ricd_datagen::adversary::{
    standard_strategies, AdversarialPlan, AttackBudget, AttackerStrategy, DetectorProfile,
    WorldView,
};
use ricd_datagen::attack::IdAllocator;
use ricd_graph::ItemId;

fn world(users: usize, items: usize, hot: usize, horizon: u64) -> WorldView {
    WorldView {
        organic_users: users,
        organic_items: items,
        hot_pool: (0..hot as u32).map(ItemId).collect(),
        ordinary_pool: (hot as u32..items as u32).map(ItemId).collect(),
        horizon,
    }
}

/// Detector operating points around (and below) the paper's, so the
/// budget law is exercised across group shapes — including the degenerate
/// floors where a "group" is a handful of workers.
fn profiles() -> impl Strategy<Value = DetectorProfile> {
    (4usize..14, 4usize..14, 100u64..5_000, 4u32..20, 7u32..=10).prop_map(
        |(k1, k2, t_hot, t_click, alpha10)| DetectorProfile {
            k1,
            k2,
            alpha: alpha10 as f64 / 10.0,
            t_hot,
            t_click,
        },
    )
}

fn plan_with(
    strategy: &dyn AttackerStrategy,
    world: &WorldView,
    profile: &DetectorProfile,
    budget: u64,
    seed: u64,
) -> AdversarialPlan {
    let mut alloc = IdAllocator::new(world.organic_users, world.organic_items);
    let mut rng = StdRng::seed_from_u64(seed);
    strategy
        .plan(
            world,
            profile,
            AttackBudget { clicks: budget },
            &mut alloc,
            &mut rng,
        )
        .expect("strategies never fail on a well-formed world")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Budget soundness: whatever the operating point splits the budget
    /// into, the plan never spends more than it was given, every record
    /// is a real click inside the horizon, and the ground truth only
    /// names synthetic ids the plan itself minted.
    #[test]
    fn every_strategy_is_budget_sound(
        seed in any::<u64>(),
        budget in 0u64..120_000,
        users in 50usize..2_000,
        hot in 2usize..8,
        extra_items in 10usize..300,
        profile in profiles(),
    ) {
        let items = hot + extra_items;
        let w = world(users, items, hot, 1_600);
        for s in standard_strategies() {
            let plan = plan_with(s.as_ref(), &w, &profile, budget, seed);
            prop_assert!(
                plan.total_clicks() <= budget,
                "strategy {} overspent: {} > {}",
                s.name(), plan.total_clicks(), budget
            );
            for r in &plan.records {
                prop_assert!(r.ts < w.horizon, "{}: ts {} past horizon", s.name(), r.ts);
                prop_assert!(r.clicks >= 1, "{}: zero-click record survived", s.name());
            }
            for g in &plan.truth.groups {
                for u in &g.workers {
                    prop_assert!(u.0 as usize >= users, "{}: organic user in truth", s.name());
                }
                for v in &g.targets {
                    prop_assert!(v.0 as usize >= items, "{}: organic item in truth", s.name());
                }
            }
        }
    }

    /// Seed stability: the same seed yields a byte-identical plan —
    /// record-for-record and in the serialized click set — so every
    /// matrix cell is reproducible from `(seed, strategy, budget)` alone.
    #[test]
    fn every_strategy_is_seed_stable(
        seed in any::<u64>(),
        budget in 0u64..60_000,
        users in 50usize..500,
        profile in profiles(),
    ) {
        let w = world(users, 120, 4, 1_600);
        for s in standard_strategies() {
            let a = plan_with(s.as_ref(), &w, &profile, budget, seed);
            let b = plan_with(s.as_ref(), &w, &profile, budget, seed);
            prop_assert_eq!(&a, &b, "strategy {} not seed-stable", s.name());
            let bytes_a = serde_json::to_string(&a.records).unwrap();
            let bytes_b = serde_json::to_string(&b.records).unwrap();
            prop_assert_eq!(bytes_a, bytes_b);
        }
    }

    /// The budget is a live constraint, not dead code: with enough budget
    /// every strategy plants something, and shrinking the budget never
    /// grows the spend.
    #[test]
    fn spend_is_monotone_in_budget(
        seed in any::<u64>(),
        profile in profiles(),
    ) {
        let w = world(400, 120, 4, 1_600);
        for s in standard_strategies() {
            let spends: Vec<u64> = [0u64, 500, 5_000, 50_000]
                .iter()
                .map(|&b| plan_with(s.as_ref(), &w, &profile, b, seed).total_clicks())
                .collect();
            prop_assert_eq!(spends[0], 0, "{}: zero budget must spend nothing", s.name());
            for pair in spends.windows(2) {
                prop_assert!(pair[0] <= pair[1], "{}: spend not monotone: {:?}", s.name(), spends);
            }
            prop_assert!(
                spends[3] > 0,
                "{}: 50k budget must afford at least one group", s.name()
            );
        }
    }
}
