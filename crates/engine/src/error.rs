//! Typed failures surfaced by the engine's fault-tolerant primitives.

/// An error from a bulk-synchronous round that could not be completed even
/// after retries and the sequential fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A partition's closure panicked on every attempt.
    PartitionPanicked {
        /// Index of the partition (in partition order) that kept failing.
        partition: usize,
        /// Total attempts made, counting the initial parallel run, the
        /// parallel retries, and the final sequential fallback.
        attempts: usize,
        /// The panic payload, stringified.
        message: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::PartitionPanicked {
                partition,
                attempts,
                message,
            } => write!(
                f,
                "partition {partition} panicked on all {attempts} attempts \
                 (including the sequential fallback): {message}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}
