//! Deterministic fault injection for chaos testing.
//!
//! The chaos suite needs faults that are (a) reproducible from a seed, so a
//! failing run can be replayed exactly, and (b) *transient* by default —
//! a fault fires once and clears, modeling a crashed worker whose partition
//! succeeds on retry. Persistent faults (fire on every attempt) model a
//! deterministic bug and must surface as a typed error instead of a hang or
//! a silent wrong answer.
//!
//! Besides compute faults, this module carries the byte-level corruption
//! helpers the I/O chaos tests use: truncation, seeded bit flips, and
//! stream-batch replay.

use std::collections::BTreeSet;
use std::sync::Mutex;

/// SplitMix64 — tiny, seedable, good enough to scatter fault points.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A reproducible set of compute-fault points: partition `p` panics the
/// first time it runs during round `r`.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    points: BTreeSet<(usize, usize)>,
    persistent: bool,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with one explicit fault point: `partition` panics in `round`.
    pub fn panic_at(round: usize, partition: usize) -> Self {
        let mut p = Self::default();
        p.add(round, partition);
        p
    }

    /// Scatters `count` fault points over `rounds × partitions` from `seed`.
    /// The same seed always yields the same plan.
    pub fn seeded(seed: u64, rounds: usize, partitions: usize, count: usize) -> Self {
        let mut plan = Self::default();
        if rounds == 0 || partitions == 0 {
            return plan;
        }
        let mut state = seed;
        // Cap the attempts so a `count` larger than the grid terminates.
        let mut budget = count.saturating_mul(4) + 16;
        while plan.points.len() < count.min(rounds * partitions) && budget > 0 {
            let r = (splitmix64(&mut state) % rounds as u64) as usize;
            let p = (splitmix64(&mut state) % partitions as u64) as usize;
            plan.points.insert((r, p));
            budget -= 1;
        }
        plan
    }

    /// Adds a fault point.
    pub fn add(&mut self, round: usize, partition: usize) -> &mut Self {
        self.points.insert((round, partition));
        self
    }

    /// Makes every fault point fire on *every* attempt instead of clearing
    /// after the first. Models a deterministic bug rather than a flaky
    /// worker; the pool must surface this as `EngineError`, not retry
    /// forever.
    pub fn persistent(mut self) -> Self {
        self.persistent = true;
        self
    }

    /// Number of fault points in the plan.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan has no fault points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Arms a [`FaultPlan`] for a run. Worker closures call
/// [`maybe_panic`](Self::maybe_panic); the test harness advances rounds with
/// [`begin_round`](Self::begin_round).
#[derive(Debug)]
pub struct FaultInjector {
    armed: Mutex<BTreeSet<(usize, usize)>>,
    persistent: bool,
    round: Mutex<usize>,
    fired: Mutex<Vec<(usize, usize)>>,
}

impl FaultInjector {
    /// Arms `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            armed: Mutex::new(plan.points),
            persistent: plan.persistent,
            round: Mutex::new(0),
            fired: Mutex::new(Vec::new()),
        }
    }

    /// Starts the next round and returns its index (first call returns 0).
    pub fn begin_round(&self) -> usize {
        let mut r = self.round.lock().expect("fault injector poisoned");
        let current = *r;
        *r += 1;
        current
    }

    /// Panics iff the plan holds a fault for (current round, `partition`).
    /// Transient by default: the fault clears as it fires, so a retry of the
    /// same partition succeeds.
    pub fn maybe_panic(&self, partition: usize) {
        let round = *self.round.lock().expect("fault injector poisoned") - 1;
        let hit = {
            let mut armed = self.armed.lock().expect("fault injector poisoned");
            if self.persistent {
                armed.contains(&(round, partition))
            } else {
                armed.remove(&(round, partition))
            }
        };
        if hit {
            self.fired
                .lock()
                .expect("fault injector poisoned")
                .push((round, partition));
            panic!("injected fault: round {round}, partition {partition}");
        }
    }

    /// Every fault that actually fired, in firing order — lets a test assert
    /// the failure path really executed rather than passing vacuously.
    pub fn fired(&self) -> Vec<(usize, usize)> {
        self.fired.lock().expect("fault injector poisoned").clone()
    }
}

/// A serve-tier fault: what happens to a shard worker (or a wire frame)
/// when its fault point fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeFault {
    /// The shard worker panics before processing the batch — a crash the
    /// supervisor must detect and recover from its checkpoint.
    Kill,
    /// The shard worker sleeps this long before processing — a stall the
    /// health probes must surface (and that clears by itself).
    Stall {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
    /// A wire peer dribbles its frame byte-by-byte with this inter-byte
    /// delay — the slow-loris shape the per-connection I/O deadline guards
    /// against.
    SlowFrame {
        /// Delay between bytes in milliseconds.
        millis: u64,
    },
}

/// A reproducible serve-tier fault plan: shard `s` suffers a [`ServeFault`]
/// when it reaches batch sequence `q`. The compute-fault [`FaultPlan`]
/// models partition retries inside one detection run; this plans process-
/// level chaos across a router topology — crashes, stalls, slow frames —
/// keyed by (shard, batch seq) so a failing run replays exactly.
#[derive(Clone, Debug, Default)]
pub struct ServeFaultPlan {
    points: std::collections::BTreeMap<(usize, u64), ServeFault>,
}

impl ServeFaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with one kill point: shard `shard` panics at batch `seq`.
    pub fn kill_at(shard: usize, seq: u64) -> Self {
        let mut p = Self::default();
        p.add(shard, seq, ServeFault::Kill);
        p
    }

    /// A plan with one stall point.
    pub fn stall_at(shard: usize, seq: u64, millis: u64) -> Self {
        let mut p = Self::default();
        p.add(shard, seq, ServeFault::Stall { millis });
        p
    }

    /// Scatters `kills` kill points and `stalls` stall points over
    /// `shards × seq_horizon` from `seed`. The same seed always yields the
    /// same plan; kill and stall points never collide (later inserts skip
    /// occupied cells).
    pub fn seeded(
        seed: u64,
        shards: usize,
        seq_horizon: u64,
        kills: usize,
        stalls: usize,
        stall_millis: u64,
    ) -> Self {
        let mut plan = Self::default();
        if shards == 0 || seq_horizon == 0 {
            return plan;
        }
        let mut state = seed;
        let grid = shards as u64 * seq_horizon;
        for (want, fault) in [
            (kills, ServeFault::Kill),
            (
                stalls,
                ServeFault::Stall {
                    millis: stall_millis,
                },
            ),
        ] {
            let mut placed = 0usize;
            let mut budget = want.saturating_mul(4) + 16;
            while placed < want.min(grid as usize) && budget > 0 {
                let s = (splitmix64(&mut state) % shards as u64) as usize;
                let q = splitmix64(&mut state) % seq_horizon;
                if plan.points.insert((s, q), fault).is_none() {
                    placed += 1;
                }
                budget -= 1;
            }
        }
        plan
    }

    /// Adds a fault point.
    pub fn add(&mut self, shard: usize, seq: u64, fault: ServeFault) -> &mut Self {
        self.points.insert((shard, seq), fault);
        self
    }

    /// Number of fault points in the plan.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan has no fault points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The planned points, for test assertions.
    pub fn points(&self) -> impl Iterator<Item = (usize, u64, ServeFault)> + '_ {
        self.points.iter().map(|(&(s, q), &f)| (s, q, f))
    }
}

/// Arms a [`ServeFaultPlan`] for a run. Shard workers call
/// [`take`](Self::take) before each batch; a fault fires once and clears
/// (so a restarted worker replaying the same sequence does not crash-loop).
#[derive(Debug, Default)]
pub struct ServeFaultInjector {
    armed: Mutex<std::collections::BTreeMap<(usize, u64), ServeFault>>,
    fired: Mutex<Vec<(usize, u64, ServeFault)>>,
}

impl ServeFaultInjector {
    /// Arms `plan`.
    pub fn new(plan: ServeFaultPlan) -> Self {
        Self {
            armed: Mutex::new(plan.points),
            fired: Mutex::new(Vec::new()),
        }
    }

    /// Removes and returns the fault armed for (`shard`, `seq`), if any.
    /// The caller executes it (panic, sleep, dribble); recording happens
    /// here so [`fired`](Self::fired) is complete even if the caller dies
    /// executing a kill.
    pub fn take(&self, shard: usize, seq: u64) -> Option<ServeFault> {
        let fault = self
            .armed
            .lock()
            .expect("serve fault injector poisoned")
            .remove(&(shard, seq));
        if let Some(f) = fault {
            self.fired
                .lock()
                .expect("serve fault injector poisoned")
                .push((shard, seq, f));
        }
        fault
    }

    /// Every fault that fired, in firing order.
    pub fn fired(&self) -> Vec<(usize, u64, ServeFault)> {
        self.fired
            .lock()
            .expect("serve fault injector poisoned")
            .clone()
    }
}

/// Truncates `data` at byte `n` (no-op if `n >= data.len()`).
pub fn truncate_at(data: &[u8], n: usize) -> Vec<u8> {
    data[..n.min(data.len())].to_vec()
}

/// Flips one random bit in each of `count` seeded positions of `data`.
/// Deterministic in `seed`; returns `data` unchanged if it is empty.
pub fn flip_bytes(data: &[u8], seed: u64, count: usize) -> Vec<u8> {
    let mut out = data.to_vec();
    if out.is_empty() {
        return out;
    }
    let mut state = seed;
    for _ in 0..count {
        let pos = (splitmix64(&mut state) % out.len() as u64) as usize;
        let bit = (splitmix64(&mut state) % 8) as u32;
        out[pos] ^= 1u8 << bit;
    }
    out
}

/// Duplicates the batch at `index`, modeling an at-least-once stream
/// redelivering a batch after a consumer crash. Returns the batches
/// unchanged if `index` is out of range.
pub fn replay_batch<T: Clone>(batches: &[T], index: usize) -> Vec<T> {
    let mut out = batches.to_vec();
    if let Some(b) = batches.get(index) {
        out.insert(index, b.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 10, 8, 5);
        let b = FaultPlan::seeded(42, 10, 8, 5);
        assert_eq!(a.points, b.points);
        assert_eq!(a.len(), 5);
        let c = FaultPlan::seeded(43, 10, 8, 5);
        assert_ne!(a.points, c.points, "different seeds should differ");
    }

    #[test]
    fn seeded_plan_saturates_at_grid_size() {
        let p = FaultPlan::seeded(7, 2, 2, 100);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn transient_fault_fires_once() {
        let inj = FaultInjector::new(FaultPlan::panic_at(0, 1));
        assert_eq!(inj.begin_round(), 0);
        inj.maybe_panic(0); // wrong partition: no fire
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inj.maybe_panic(1)));
        assert!(caught.is_err(), "armed fault must fire");
        inj.maybe_panic(1); // cleared: retry succeeds
        assert_eq!(inj.fired(), vec![(0, 1)]);
    }

    #[test]
    fn persistent_fault_keeps_firing() {
        let inj = FaultInjector::new(FaultPlan::panic_at(0, 0).persistent());
        inj.begin_round();
        for _ in 0..3 {
            let caught =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inj.maybe_panic(0)));
            assert!(caught.is_err());
        }
        assert_eq!(inj.fired().len(), 3);
    }

    #[test]
    fn byte_faults_are_deterministic() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(truncate_at(&data, 10).len(), 10);
        assert_eq!(truncate_at(&data, 9999), data);
        let a = flip_bytes(&data, 99, 4);
        let b = flip_bytes(&data, 99, 4);
        assert_eq!(a, b);
        assert_ne!(a, data);
        // A flip is its own inverse only at the same positions; count the
        // differing bytes instead (≤ 4, collisions allowed).
        let diffs = a.iter().zip(&data).filter(|(x, y)| x != y).count();
        assert!((1..=4).contains(&diffs), "diffs = {diffs}");
        assert!(flip_bytes(&[], 1, 3).is_empty());
    }

    #[test]
    fn replay_duplicates_one_batch() {
        let batches = vec!["a", "b", "c"];
        assert_eq!(replay_batch(&batches, 1), vec!["a", "b", "b", "c"]);
        assert_eq!(replay_batch(&batches, 9), batches);
    }
}
