#![warn(missing_docs)]

//! # ricd-engine — parallel vertex-compute engine
//!
//! The paper runs every algorithm (except COPYCATCH/FRAUDAR) on **Grape**, a
//! parallel graph engine where an algorithm is expressed as rounds of
//! per-vertex work distributed across workers, with a barrier between
//! rounds (16 workers by default in the paper's cluster). This crate is the
//! in-process substitute: a [`WorkerPool`] over scoped threads,
//! range [`partition`]ing of the vertex space, and bulk-synchronous
//! [`WorkerPool::map_vertices`] / [`WorkerPool::filter_vertices`] /
//! [`WorkerPool::fold_vertices`] primitives.
//!
//! Keeping the same programming model matters for fidelity: RICD's pruning
//! passes (Algorithm 3) are expressed as parallel per-vertex rounds here,
//! exactly as they would be on Grape, and the elapsed-time comparison of
//! Fig 8b times those rounds for real.
//!
//! [`timing`] provides the phase stopwatch used to report per-module elapsed
//! times.
//!
//! ## Fault tolerance
//!
//! A production cluster loses workers; the paper's deployment at Taobao
//! cannot abort a day's detection run because one partition crashed. Every
//! primitive therefore exists in two flavors: the classic infallible form
//! (panics only after the retry budget is exhausted) and a `try_*` form
//! returning [`EngineError`]. Worker panics are contained with
//! `catch_unwind`, failed partitions are retried on fresh threads, and the
//! last attempt runs sequentially on the calling thread. [`fault`] provides
//! the deterministic fault-injection hooks the chaos suite drives this with.

pub mod error;
pub mod fault;
pub mod partition;
pub mod pool;
pub mod timing;

pub use error::EngineError;
pub use fault::{FaultInjector, FaultPlan, ServeFault, ServeFaultInjector, ServeFaultPlan};
pub use partition::partition_ranges;
pub use pool::{PoolMetrics, WorkerPool, MAX_PARTITION_ATTEMPTS};
pub use timing::{PhaseTimings, Stopwatch};
