//! Range partitioning of a dense vertex space across workers.

use std::ops::Range;

/// Splits `0..n` into at most `workers` contiguous ranges whose lengths
/// differ by at most one (the first `n % workers` ranges get the extra
/// element). Empty ranges are omitted, so the result may be shorter than
/// `workers` when `n < workers`.
///
/// # Panics
/// Panics if `workers == 0`.
pub fn partition_ranges(n: usize, workers: usize) -> Vec<Range<usize>> {
    assert!(workers > 0, "worker count must be positive");
    let base = n / workers;
    let extra = n % workers;
    let mut ranges = Vec::with_capacity(workers.min(n));
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_exactly_once() {
        for n in [0, 1, 7, 16, 100, 101] {
            for w in [1, 2, 3, 16, 200] {
                let ranges = partition_ranges(n, w);
                let mut covered = 0;
                let mut prev_end = 0;
                for r in &ranges {
                    assert_eq!(r.start, prev_end, "ranges contiguous");
                    assert!(!r.is_empty());
                    covered += r.len();
                    prev_end = r.end;
                }
                assert_eq!(covered, n, "n={n} w={w}");
            }
        }
    }

    #[test]
    fn balanced_within_one() {
        let ranges = partition_ranges(10, 3);
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }

    #[test]
    fn fewer_items_than_workers() {
        let ranges = partition_ranges(2, 8);
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0], 0..1);
        assert_eq!(ranges[1], 1..2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_workers_panics() {
        partition_ranges(5, 0);
    }
}
