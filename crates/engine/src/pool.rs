//! The bulk-synchronous worker pool.

use crate::error::EngineError;
use crate::partition::partition_ranges;
use ricd_obs::{Counter, Histogram, MetricsRegistry};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Attempts made per partition before a round is declared failed: the
/// initial parallel run, one parallel retry on a fresh thread, and a final
/// sequential fallback inline on the calling thread.
pub const MAX_PARTITION_ATTEMPTS: usize = 3;

/// Runs a closure with panics contained, stringifying the payload.
fn call_caught<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_message(p.as_ref()))
}

/// Deterministic chunk size for worklist scheduling: small enough that a
/// Zipf-skewed head cannot serialize the round behind one chunk, large
/// enough to amortize cursor contention and per-chunk bookkeeping.
fn worklist_chunk_size(len: usize, workers: usize) -> usize {
    (len / (workers * 16)).clamp(64, 8192)
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Registered metric handles for a [`WorkerPool`].
///
/// Counter semantics are chosen so the fault-model invariants hold by
/// construction, round by round and therefore cumulatively:
///
/// * `pool.partitions_started` — partitions launched (initial attempts only;
///   retries do not re-count). `pool.partitions_failed ≤
///   pool.partitions_started` because a round cannot fail more partitions
///   than it launched.
/// * `pool.panics_caught` — partitions whose *initial* attempt panicked
///   (0 or 1 per partition per round, regardless of how many later attempts
///   also panic).
/// * `pool.retries` — every re-execution of a failed partition, parallel or
///   sequential. Each initially-failed partition is re-executed at least
///   once, so `pool.retries ≥ pool.panics_caught`.
/// * `pool.fallback_sequential` — the subset of retries that ran inline on
///   the calling thread (the last-ditch attempt).
/// * `pool.partitions_failed` — partitions still failing after the full
///   retry budget ([`MAX_PARTITION_ATTEMPTS`]).
/// * `pool.partition_nanos` — histogram of per-partition wall time (every
///   attempt, including failed ones).
#[derive(Clone, Debug)]
pub struct PoolMetrics {
    registry: MetricsRegistry,
    partitions_started: Counter,
    panics_caught: Counter,
    retries: Counter,
    fallback_sequential: Counter,
    partitions_failed: Counter,
    partition_nanos: Histogram,
}

impl PoolMetrics {
    /// Registers (or re-attaches to) the pool metric family in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            registry: registry.clone(),
            partitions_started: registry.counter("pool.partitions_started"),
            panics_caught: registry.counter("pool.panics_caught"),
            retries: registry.counter("pool.retries"),
            fallback_sequential: registry.counter("pool.fallback_sequential"),
            partitions_failed: registry.counter("pool.partitions_failed"),
            partition_nanos: registry.duration_histogram("pool.partition_nanos"),
        }
    }
}

/// A fixed-width pool executing bulk-synchronous vertex rounds on scoped
/// threads.
///
/// Each primitive partitions the vertex range, runs one closure instance per
/// worker, and joins before returning — the same superstep-with-barrier model
/// Grape exposes. Threads are spawned per round; for the round sizes in this
/// workload (tens of thousands to millions of vertices) spawn cost is noise,
/// and scoped threads let closures borrow the graph without `Arc`.
#[derive(Clone, Debug)]
pub struct WorkerPool {
    workers: usize,
    metrics: Option<PoolMetrics>,
}

impl WorkerPool {
    /// A pool with `workers` threads.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "worker count must be positive");
        Self {
            workers,
            metrics: None,
        }
    }

    /// Attaches a metrics registry; the pool records per-partition wall time
    /// and fault/retry counters under the `pool.*` metric family (see
    /// [`PoolMetrics`]).
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(PoolMetrics::register(registry));
        self
    }

    /// A pool sized to the machine (`available_parallelism`, capped at the
    /// paper's default of 16 workers).
    pub fn default_for_host() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16);
        Self::new(n)
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(range)` once per partition of `0..n`, in parallel, returning
    /// the per-partition results in partition order.
    ///
    /// Delegates to [`try_run_partitioned`](Self::try_run_partitioned); a
    /// partition that keeps panicking after the retry budget re-raises the
    /// failure here as a panic carrying the [`EngineError`] description.
    pub fn run_partitioned<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        self.try_run_partitioned(n, f)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fault-isolated [`run_partitioned`](Self::run_partitioned): a panic in
    /// one partition's closure does not abort the round or poison the other
    /// partitions.
    ///
    /// Failed partitions are retried on fresh threads, then once more
    /// sequentially on the calling thread ([`MAX_PARTITION_ATTEMPTS`] total
    /// attempts). Only if the sequential fallback also panics does the round
    /// fail, with [`EngineError::PartitionPanicked`] naming the partition.
    ///
    /// Retrying re-invokes `f` on the failed range, so closures must be pure
    /// (or at least idempotent per partition) for retries to be safe —
    /// everything the detection pipeline submits is.
    pub fn try_run_partitioned<T, F>(&self, n: usize, f: F) -> Result<Vec<T>, EngineError>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        let ranges = partition_ranges(n, self.workers);
        let f = &f;
        let metrics = self.metrics.as_ref();
        // One timed, panic-contained partition execution (initial or retry).
        let run_one = |r: Range<usize>| -> Result<T, String> {
            match metrics {
                Some(m) => {
                    let clock = m.registry.clock();
                    let started = clock.now();
                    let res = call_caught(|| f(r));
                    m.partition_nanos
                        .observe_duration(clock.now().saturating_sub(started));
                    res
                }
                None => call_caught(|| f(r)),
            }
        };
        let run_one = &run_one;
        let mut slots: Vec<Result<T, String>> = if ranges.len() <= 1 {
            ranges.clone().into_iter().map(run_one).collect()
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = ranges
                    .iter()
                    .cloned()
                    .map(|r| s.spawn(move || run_one(r)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|p| Err(panic_message(p.as_ref()))))
                    .collect()
            })
        };
        if let Some(m) = metrics {
            m.partitions_started.add(ranges.len() as u64);
            m.panics_caught
                .add(slots.iter().filter(|s| s.is_err()).count() as u64);
        }
        for attempt in 1..MAX_PARTITION_ATTEMPTS {
            let failed: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.is_err().then_some(i))
                .collect();
            if failed.is_empty() {
                break;
            }
            if let Some(m) = metrics {
                m.retries.add(failed.len() as u64);
            }
            if attempt + 1 == MAX_PARTITION_ATTEMPTS {
                // Final attempt: sequentially on the calling thread, so a
                // fault tied to worker-thread state cannot recur.
                if let Some(m) = metrics {
                    m.fallback_sequential.add(failed.len() as u64);
                }
                for i in failed {
                    slots[i] = run_one(ranges[i].clone());
                }
            } else {
                let retried: Vec<(usize, Result<T, String>)> = std::thread::scope(|s| {
                    let handles: Vec<_> = failed
                        .into_iter()
                        .map(|i| {
                            let r = ranges[i].clone();
                            (i, s.spawn(move || run_one(r)))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|(i, h)| {
                            (
                                i,
                                h.join().unwrap_or_else(|p| Err(panic_message(p.as_ref()))),
                            )
                        })
                        .collect()
                });
                for (i, res) in retried {
                    slots[i] = res;
                }
            }
        }
        if let Some(m) = metrics {
            m.partitions_failed
                .add(slots.iter().filter(|s| s.is_err()).count() as u64);
        }
        let mut out = Vec::with_capacity(slots.len());
        for (partition, slot) in slots.into_iter().enumerate() {
            match slot {
                Ok(t) => out.push(t),
                Err(message) => {
                    return Err(EngineError::PartitionPanicked {
                        partition,
                        attempts: MAX_PARTITION_ATTEMPTS,
                        message,
                    })
                }
            }
        }
        Ok(out)
    }

    /// Runs `f` over a sparse worklist with dynamic (work-stealing-style)
    /// chunk scheduling, returning per-chunk results in chunk order.
    ///
    /// Delegates to [`try_run_worklist`](Self::try_run_worklist); a chunk
    /// that keeps panicking after the retry budget re-raises the failure
    /// here as a panic carrying the [`EngineError`] description.
    pub fn run_worklist<S, T, I, F>(&self, worklist: &[u32], init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &[u32]) -> T + Sync,
    {
        self.try_run_worklist(worklist, init, f)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fault-isolated dynamic scheduling over a sparse `&[u32]` worklist.
    ///
    /// Unlike [`try_run_partitioned`](Self::try_run_partitioned), which
    /// splits a dense index range into `workers` even slices, this cuts the
    /// worklist into many small chunks and lets workers claim them through an
    /// atomic cursor. With Zipf-skewed degrees an even split piles the
    /// expensive head vertices into one slice and the round waits on it;
    /// small claimed-on-demand chunks keep every worker busy until the list
    /// drains.
    ///
    /// `init` builds a per-worker scratch state, created lazily on a
    /// worker's first claimed chunk and reused across all its chunks, so an
    /// `O(V)` scratch is paid once per worker rather than once per chunk.
    /// `f(&mut state, chunk)` processes one chunk of worklist entries.
    ///
    /// The PR 1 fault contract carries over: a panicking chunk does not
    /// abort the round; it is retried on a fresh thread with fresh state
    /// (the panic may have left the shared scratch inconsistent), then once
    /// more sequentially inline ([`MAX_PARTITION_ATTEMPTS`] total attempts).
    /// Chunks double as partitions for the `pool.*` metric family.
    pub fn try_run_worklist<S, T, I, F>(
        &self,
        worklist: &[u32],
        init: I,
        f: F,
    ) -> Result<Vec<T>, EngineError>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &[u32]) -> T + Sync,
    {
        if worklist.is_empty() {
            return Ok(Vec::new());
        }
        let chunk = worklist_chunk_size(worklist.len(), self.workers);
        let num_chunks = worklist.len().div_ceil(chunk);
        let metrics = self.metrics.as_ref();
        let f = &f;
        let init = &init;
        let chunk_slice = move |i: usize| -> &[u32] {
            &worklist[i * chunk..((i + 1) * chunk).min(worklist.len())]
        };
        // One timed, panic-contained chunk execution (initial or retry).
        let run_one = |state: &mut S, i: usize| -> Result<T, String> {
            match metrics {
                Some(m) => {
                    let clock = m.registry.clock();
                    let started = clock.now();
                    let res = call_caught(|| f(state, chunk_slice(i)));
                    m.partition_nanos
                        .observe_duration(clock.now().saturating_sub(started));
                    res
                }
                None => call_caught(|| f(state, chunk_slice(i))),
            }
        };
        let run_one = &run_one;
        let mut slots: Vec<Option<Result<T, String>>> = (0..num_chunks).map(|_| None).collect();
        if self.workers == 1 || num_chunks == 1 {
            let mut state = init();
            for (i, slot) in slots.iter_mut().enumerate() {
                let res = run_one(&mut state, i);
                if res.is_err() {
                    // The panic may have left the scratch inconsistent.
                    state = init();
                }
                *slot = Some(res);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let threads = self.workers.min(num_chunks);
            let per_worker: Vec<Vec<(usize, Result<T, String>)>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let cursor = &cursor;
                        s.spawn(move || {
                            let mut done = Vec::new();
                            let mut state: Option<S> = None;
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= num_chunks {
                                    break;
                                }
                                let st = state.get_or_insert_with(init);
                                let res = run_one(st, i);
                                if res.is_err() {
                                    state = None;
                                }
                                done.push((i, res));
                            }
                            done
                        })
                    })
                    .collect();
                handles.into_iter().filter_map(|h| h.join().ok()).collect()
            });
            for (i, res) in per_worker.into_iter().flatten() {
                slots[i] = Some(res);
            }
            // Chunks claimed by a worker whose thread died outright (run_one
            // contains closure panics, so this is allocation-failure
            // territory) surface as unfilled slots; fold them into the retry
            // path like any other failure.
            for slot in slots.iter_mut() {
                if slot.is_none() {
                    *slot = Some(Err("worker thread lost before reporting".to_string()));
                }
            }
        }
        if let Some(m) = metrics {
            m.partitions_started.add(num_chunks as u64);
            m.panics_caught
                .add(slots.iter().filter(|s| matches!(s, Some(Err(_)))).count() as u64);
        }
        for attempt in 1..MAX_PARTITION_ATTEMPTS {
            let failed: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| matches!(s, Some(Err(_)) | None).then_some(i))
                .collect();
            if failed.is_empty() {
                break;
            }
            if let Some(m) = metrics {
                m.retries.add(failed.len() as u64);
            }
            if attempt + 1 == MAX_PARTITION_ATTEMPTS {
                // Final attempt: sequentially on the calling thread with
                // fresh state, so a fault tied to worker-thread state or a
                // poisoned scratch cannot recur.
                if let Some(m) = metrics {
                    m.fallback_sequential.add(failed.len() as u64);
                }
                for i in failed {
                    let mut state = init();
                    slots[i] = Some(run_one(&mut state, i));
                }
            } else {
                let retried: Vec<(usize, Result<T, String>)> = std::thread::scope(|s| {
                    let handles: Vec<_> = failed
                        .into_iter()
                        .map(|i| {
                            (
                                i,
                                s.spawn(move || {
                                    let mut state = init();
                                    run_one(&mut state, i)
                                }),
                            )
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|(i, h)| {
                            (
                                i,
                                h.join().unwrap_or_else(|p| Err(panic_message(p.as_ref()))),
                            )
                        })
                        .collect()
                });
                for (i, res) in retried {
                    slots[i] = Some(res);
                }
            }
        }
        if let Some(m) = metrics {
            m.partitions_failed
                .add(slots.iter().filter(|s| !matches!(s, Some(Ok(_)))).count() as u64);
        }
        let mut out = Vec::with_capacity(slots.len());
        for (partition, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(Ok(t)) => out.push(t),
                Some(Err(message)) => {
                    return Err(EngineError::PartitionPanicked {
                        partition,
                        attempts: MAX_PARTITION_ATTEMPTS,
                        message,
                    })
                }
                None => {
                    return Err(EngineError::PartitionPanicked {
                        partition,
                        attempts: MAX_PARTITION_ATTEMPTS,
                        message: "worker thread lost before reporting".to_string(),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Runs `f(i)` once per task `i in 0..n` with per-task dynamic
    /// scheduling, returning results in task order.
    ///
    /// Delegates to [`try_run_tasks`](Self::try_run_tasks); a task that
    /// keeps panicking after the retry budget re-raises the failure here as
    /// a panic carrying the [`EngineError`] description.
    pub fn run_tasks<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.try_run_tasks(n, f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fault-isolated per-task scheduling for *coarse* work units.
    ///
    /// [`try_run_worklist`](Self::try_run_worklist) amortizes cursor
    /// traffic by claiming vertices in chunks of ≥ 64, which serializes a
    /// round of a few dozen heavy tasks (e.g. graph shards) behind one
    /// worker. Here each task is its own schedulable unit: workers claim
    /// indices one at a time through an atomic cursor, so a round of `n`
    /// expensive closures keeps `min(workers, n)` threads busy until the
    /// list drains. Single-worker pools (and `n <= 1`) run inline on the
    /// calling thread.
    ///
    /// The PR 1 fault contract carries over: a panicking task does not
    /// abort the round; it is retried on a fresh thread, then once more
    /// sequentially inline ([`MAX_PARTITION_ATTEMPTS`] total attempts), and
    /// only then does the round fail with
    /// [`EngineError::PartitionPanicked`] naming the task. Tasks double as
    /// partitions for the `pool.*` metric family.
    pub fn try_run_tasks<T, F>(&self, n: usize, f: F) -> Result<Vec<T>, EngineError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Ok(Vec::new());
        }
        let metrics = self.metrics.as_ref();
        let f = &f;
        // One timed, panic-contained task execution (initial or retry).
        let run_one = |i: usize| -> Result<T, String> {
            match metrics {
                Some(m) => {
                    let clock = m.registry.clock();
                    let started = clock.now();
                    let res = call_caught(|| f(i));
                    m.partition_nanos
                        .observe_duration(clock.now().saturating_sub(started));
                    res
                }
                None => call_caught(|| f(i)),
            }
        };
        let run_one = &run_one;
        let mut slots: Vec<Option<Result<T, String>>> = (0..n).map(|_| None).collect();
        if self.workers == 1 || n == 1 {
            for (i, slot) in slots.iter_mut().enumerate() {
                *slot = Some(run_one(i));
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let threads = self.workers.min(n);
            let per_worker: Vec<Vec<(usize, Result<T, String>)>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let cursor = &cursor;
                        s.spawn(move || {
                            let mut done = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                done.push((i, run_one(i)));
                            }
                            done
                        })
                    })
                    .collect();
                handles.into_iter().filter_map(|h| h.join().ok()).collect()
            });
            for (i, res) in per_worker.into_iter().flatten() {
                slots[i] = Some(res);
            }
            // Tasks claimed by a worker whose thread died outright surface
            // as unfilled slots; fold them into the retry path.
            for slot in slots.iter_mut() {
                if slot.is_none() {
                    *slot = Some(Err("worker thread lost before reporting".to_string()));
                }
            }
        }
        if let Some(m) = metrics {
            m.partitions_started.add(n as u64);
            m.panics_caught
                .add(slots.iter().filter(|s| matches!(s, Some(Err(_)))).count() as u64);
        }
        for attempt in 1..MAX_PARTITION_ATTEMPTS {
            let failed: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| matches!(s, Some(Err(_)) | None).then_some(i))
                .collect();
            if failed.is_empty() {
                break;
            }
            if let Some(m) = metrics {
                m.retries.add(failed.len() as u64);
            }
            if attempt + 1 == MAX_PARTITION_ATTEMPTS {
                // Final attempt: sequentially on the calling thread, so a
                // fault tied to worker-thread state cannot recur.
                if let Some(m) = metrics {
                    m.fallback_sequential.add(failed.len() as u64);
                }
                for i in failed {
                    slots[i] = Some(run_one(i));
                }
            } else {
                let retried: Vec<(usize, Result<T, String>)> = std::thread::scope(|s| {
                    let handles: Vec<_> = failed
                        .into_iter()
                        .map(|i| (i, s.spawn(move || run_one(i))))
                        .collect();
                    handles
                        .into_iter()
                        .map(|(i, h)| {
                            (
                                i,
                                h.join().unwrap_or_else(|p| Err(panic_message(p.as_ref()))),
                            )
                        })
                        .collect()
                });
                for (i, res) in retried {
                    slots[i] = Some(res);
                }
            }
        }
        if let Some(m) = metrics {
            m.partitions_failed
                .add(slots.iter().filter(|s| !matches!(s, Some(Ok(_)))).count() as u64);
        }
        let mut out = Vec::with_capacity(slots.len());
        for (partition, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(Ok(t)) => out.push(t),
                Some(Err(message)) => {
                    return Err(EngineError::PartitionPanicked {
                        partition,
                        attempts: MAX_PARTITION_ATTEMPTS,
                        message,
                    })
                }
                None => {
                    return Err(EngineError::PartitionPanicked {
                        partition,
                        attempts: MAX_PARTITION_ATTEMPTS,
                        message: "worker thread lost before reporting".to_string(),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Computes `f(i)` for every `i in 0..n` into a vector (one superstep).
    pub fn map_vertices<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.try_map_vertices(n, f)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fault-isolated [`map_vertices`](Self::map_vertices); see
    /// [`try_run_partitioned`](Self::try_run_partitioned) for the retry
    /// contract.
    pub fn try_map_vertices<T, F>(&self, n: usize, f: F) -> Result<Vec<T>, EngineError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let chunks = self.try_run_partitioned(n, |r| r.map(&f).collect::<Vec<T>>())?;
        let mut out = Vec::with_capacity(n);
        for mut c in chunks {
            out.append(&mut c);
        }
        Ok(out)
    }

    /// Collects the indices `i in 0..n` for which `pred(i)` holds, in
    /// ascending order (one superstep).
    pub fn filter_vertices<F>(&self, n: usize, pred: F) -> Vec<usize>
    where
        F: Fn(usize) -> bool + Sync,
    {
        self.try_filter_vertices(n, pred)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fault-isolated [`filter_vertices`](Self::filter_vertices); see
    /// [`try_run_partitioned`](Self::try_run_partitioned) for the retry
    /// contract.
    pub fn try_filter_vertices<F>(&self, n: usize, pred: F) -> Result<Vec<usize>, EngineError>
    where
        F: Fn(usize) -> bool + Sync,
    {
        let per_worker = self.try_run_partitioned(n, |r| {
            let mut hits = Vec::new();
            for i in r {
                if pred(i) {
                    hits.push(i);
                }
            }
            hits
        })?;
        let mut out = Vec::with_capacity(per_worker.iter().map(Vec::len).sum());
        for mut v in per_worker {
            out.append(&mut v);
        }
        Ok(out)
    }

    /// Folds `f(i)` over `0..n` with a per-worker accumulator and a final
    /// sequential `merge` across workers (one superstep).
    pub fn fold_vertices<A, F, M>(&self, n: usize, init: A, f: F, merge: M) -> A
    where
        A: Send + Sync + Clone,
        F: Fn(A, usize) -> A + Sync,
        M: Fn(A, A) -> A,
    {
        self.try_fold_vertices(n, init, f, merge)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fault-isolated [`fold_vertices`](Self::fold_vertices); see
    /// [`try_run_partitioned`](Self::try_run_partitioned) for the retry
    /// contract.
    pub fn try_fold_vertices<A, F, M>(
        &self,
        n: usize,
        init: A,
        f: F,
        merge: M,
    ) -> Result<A, EngineError>
    where
        A: Send + Sync + Clone,
        F: Fn(A, usize) -> A + Sync,
        M: Fn(A, A) -> A,
    {
        let per_worker = self.try_run_partitioned(n, |r| {
            let mut acc = init.clone();
            for i in r {
                acc = f(acc, i);
            }
            acc
        })?;
        Ok(per_worker.into_iter().fold(init, merge))
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::default_for_host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_matches_sequential() {
        let pool = WorkerPool::new(4);
        let got = pool.map_vertices(1000, |i| i * i);
        let want: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn map_empty() {
        let pool = WorkerPool::new(4);
        let got: Vec<u32> = pool.map_vertices(0, |_| 1);
        assert!(got.is_empty());
    }

    #[test]
    fn filter_preserves_order() {
        let pool = WorkerPool::new(3);
        let got = pool.filter_vertices(100, |i| i % 7 == 0);
        let want: Vec<usize> = (0..100).filter(|i| i % 7 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn fold_sums() {
        let pool = WorkerPool::new(5);
        let sum = pool.fold_vertices(101, 0u64, |a, i| a + i as u64, |a, b| a + b);
        assert_eq!(sum, 100 * 101 / 2);
    }

    #[test]
    fn every_vertex_visited_exactly_once() {
        let pool = WorkerPool::new(8);
        let visits = AtomicUsize::new(0);
        let _ = pool.map_vertices(12345, |_| {
            visits.fetch_add(1, Ordering::Relaxed);
            0u8
        });
        assert_eq!(visits.load(Ordering::Relaxed), 12345);
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.map_vertices(10, |i| i), (0..10).collect::<Vec<_>>());
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn run_partitioned_returns_in_order() {
        let pool = WorkerPool::new(4);
        let ids = pool.run_partitioned(10, |r| r.start);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_workers_rejected() {
        WorkerPool::new(0);
    }

    #[test]
    fn results_independent_of_worker_count() {
        let n = 997;
        let seq: Vec<usize> = WorkerPool::new(1).map_vertices(n, |i| i.wrapping_mul(31));
        for w in [2, 3, 7, 16] {
            assert_eq!(
                WorkerPool::new(w).map_vertices(n, |i| i.wrapping_mul(31)),
                seq
            );
        }
    }

    #[test]
    fn transient_panic_recovers_with_correct_result() {
        let pool = WorkerPool::new(4);
        // First execution of the partition containing vertex 10 panics;
        // the retry (fresh attempt) succeeds.
        let blown = AtomicUsize::new(0);
        let got = pool
            .try_run_partitioned(100, |r| {
                if r.contains(&10) && blown.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("injected transient fault");
                }
                r.sum::<usize>()
            })
            .expect("transient fault must be absorbed");
        assert_eq!(got.iter().sum::<usize>(), (0..100).sum::<usize>());
        assert_eq!(blown.load(Ordering::SeqCst), 2, "one fault + one retry");
    }

    #[test]
    fn persistent_panic_yields_typed_error() {
        let pool = WorkerPool::new(4);
        let err = pool
            .try_run_partitioned(100, |r| {
                if r.contains(&10) {
                    panic!("deterministic bug");
                }
                r.len()
            })
            .unwrap_err();
        match err {
            crate::EngineError::PartitionPanicked {
                attempts, message, ..
            } => {
                assert_eq!(attempts, MAX_PARTITION_ATTEMPTS);
                assert!(message.contains("deterministic bug"), "{message}");
            }
        }
    }

    #[test]
    fn sequential_fallback_rescues_thread_hostile_faults() {
        let pool = WorkerPool::new(4);
        let main_thread = std::thread::current().id();
        // Panics on every worker thread; only the inline sequential
        // fallback (calling thread) survives.
        let got = pool
            .try_map_vertices(50, |i| {
                if std::thread::current().id() != main_thread {
                    panic!("worker-thread poison");
                }
                i * 2
            })
            .expect("sequential fallback must rescue the round");
        assert_eq!(got, (0..50).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn infallible_form_panics_with_engine_error_message() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map_vertices(10, |_| -> usize { panic!("always broken") })
        }));
        let msg = match caught.unwrap_err().downcast::<String>() {
            Ok(s) => *s,
            Err(_) => panic!("expected String payload"),
        };
        assert!(msg.contains("partition 0"), "{msg}");
        assert!(msg.contains("always broken"), "{msg}");
    }

    #[test]
    fn metrics_count_clean_round() {
        let registry = ricd_obs::MetricsRegistry::new();
        let pool = WorkerPool::new(4).with_metrics(&registry);
        let _ = pool.map_vertices(100, |i| i);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pool.partitions_started"), Some(4));
        assert_eq!(snap.counter("pool.panics_caught"), Some(0));
        assert_eq!(snap.counter("pool.retries"), Some(0));
        assert_eq!(snap.counter("pool.fallback_sequential"), Some(0));
        assert_eq!(snap.counter("pool.partitions_failed"), Some(0));
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "pool.partition_nanos")
            .expect("partition histogram registered");
        assert_eq!(h.count, 4, "one timing observation per partition");
    }

    #[test]
    fn metrics_count_transient_fault_and_retry() {
        let registry = ricd_obs::MetricsRegistry::new();
        let pool = WorkerPool::new(4).with_metrics(&registry);
        let blown = AtomicUsize::new(0);
        pool.try_run_partitioned(100, |r| {
            if r.contains(&10) && blown.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("injected transient fault");
            }
            r.len()
        })
        .expect("transient fault absorbed");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pool.partitions_started"), Some(4));
        assert_eq!(snap.counter("pool.panics_caught"), Some(1));
        assert_eq!(snap.counter("pool.retries"), Some(1));
        assert_eq!(snap.counter("pool.fallback_sequential"), Some(0));
        assert_eq!(snap.counter("pool.partitions_failed"), Some(0));
    }

    #[test]
    fn metrics_count_persistent_fault_through_fallback() {
        let registry = ricd_obs::MetricsRegistry::new();
        let pool = WorkerPool::new(4).with_metrics(&registry);
        let _ = pool.try_run_partitioned(100, |r| {
            if r.contains(&10) {
                panic!("deterministic bug");
            }
            r.len()
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pool.partitions_started"), Some(4));
        assert_eq!(snap.counter("pool.panics_caught"), Some(1));
        // Parallel retry + sequential fallback = 2 re-executions.
        assert_eq!(snap.counter("pool.retries"), Some(2));
        assert_eq!(snap.counter("pool.fallback_sequential"), Some(1));
        assert_eq!(snap.counter("pool.partitions_failed"), Some(1));
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "pool.partition_nanos")
            .unwrap();
        assert_eq!(h.count, 6, "3 clean + 1 initial fault + 2 retries");
    }

    #[test]
    fn metrics_invariants_hold_across_rounds() {
        let registry = ricd_obs::MetricsRegistry::new();
        let pool = WorkerPool::new(3).with_metrics(&registry);
        let calls = AtomicUsize::new(0);
        for round in 0..5 {
            let _ = pool.try_run_partitioned(30, |r| {
                let c = calls.fetch_add(1, Ordering::SeqCst);
                if round % 2 == 0 && r.start == 0 && c.is_multiple_of(2) {
                    panic!("flaky");
                }
                r.len()
            });
        }
        let snap = registry.snapshot();
        let started = snap.counter("pool.partitions_started").unwrap();
        let failed = snap.counter("pool.partitions_failed").unwrap();
        let panics = snap.counter("pool.panics_caught").unwrap();
        let retries = snap.counter("pool.retries").unwrap();
        assert!(failed <= started, "failed={failed} started={started}");
        assert!(retries >= panics, "retries={retries} panics={panics}");
        assert_eq!(started, 15, "5 rounds x 3 partitions");
    }

    #[test]
    fn pool_without_metrics_registers_nothing() {
        let registry = ricd_obs::MetricsRegistry::new();
        let pool = WorkerPool::new(4);
        let _ = pool.map_vertices(100, |i| i);
        let snap = registry.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn worklist_visits_every_entry_once_in_order() {
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let list: Vec<u32> = (0..5000).map(|i| i * 3).collect();
            let chunks = pool.run_worklist(&list, || (), |_, c| c.to_vec());
            let flat: Vec<u32> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, list, "workers={workers}");
        }
    }

    #[test]
    fn worklist_empty_is_noop() {
        let pool = WorkerPool::new(4);
        let got: Vec<u64> = pool.run_worklist(&[], || (), |_, c| c.len() as u64);
        assert!(got.is_empty());
    }

    #[test]
    fn worklist_state_reused_across_chunks() {
        let pool = WorkerPool::new(4);
        let list: Vec<u32> = (0..10_000).collect();
        let inits = AtomicUsize::new(0);
        let chunks = pool.run_worklist(
            &list,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |calls, c| {
                *calls += 1;
                c.len()
            },
        );
        assert!(chunks.len() > 4, "should produce many small chunks");
        assert_eq!(chunks.iter().sum::<usize>(), list.len());
        let inits = inits.load(Ordering::SeqCst);
        assert!(
            inits <= 4,
            "at most one state per worker, got {inits} for {} chunks",
            chunks.len()
        );
    }

    #[test]
    fn worklist_transient_panic_recovers_with_fresh_state() {
        let pool = WorkerPool::new(4);
        let list: Vec<u32> = (0..2000).collect();
        let blown = AtomicUsize::new(0);
        let got = pool
            .try_run_worklist(
                &list,
                || 0u32,
                |_, c| {
                    if c.contains(&100) && blown.fetch_add(1, Ordering::SeqCst) == 0 {
                        panic!("injected transient fault");
                    }
                    c.iter().map(|&x| x as u64).sum::<u64>()
                },
            )
            .expect("transient fault must be absorbed");
        assert_eq!(
            got.iter().sum::<u64>(),
            list.iter().map(|&x| x as u64).sum::<u64>()
        );
        assert_eq!(blown.load(Ordering::SeqCst), 2, "one fault + one retry");
    }

    #[test]
    fn worklist_persistent_panic_yields_typed_error() {
        let pool = WorkerPool::new(4);
        let list: Vec<u32> = (0..2000).collect();
        let err = pool
            .try_run_worklist(
                &list,
                || (),
                |_, c: &[u32]| {
                    if c.contains(&0) {
                        panic!("deterministic worklist bug");
                    }
                    c.len()
                },
            )
            .unwrap_err();
        match err {
            crate::EngineError::PartitionPanicked {
                partition,
                attempts,
                message,
            } => {
                assert_eq!(partition, 0, "entry 0 lives in chunk 0");
                assert_eq!(attempts, MAX_PARTITION_ATTEMPTS);
                assert!(message.contains("deterministic worklist bug"), "{message}");
            }
        }
    }

    #[test]
    fn worklist_metrics_count_chunks_as_partitions() {
        let registry = ricd_obs::MetricsRegistry::new();
        let pool = WorkerPool::new(4).with_metrics(&registry);
        let list: Vec<u32> = (0..10_000).collect();
        let chunks = pool.run_worklist(&list, || (), |_, c| c.len());
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("pool.partitions_started"),
            Some(chunks.len() as u64)
        );
        assert_eq!(snap.counter("pool.panics_caught"), Some(0));
        assert_eq!(snap.counter("pool.partitions_failed"), Some(0));
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "pool.partition_nanos")
            .expect("partition histogram registered");
        assert_eq!(h.count as usize, chunks.len());
    }

    #[test]
    fn worklist_chunk_size_bounds() {
        assert_eq!(worklist_chunk_size(10, 4), 64, "small lists use the floor");
        assert_eq!(
            worklist_chunk_size(10_000_000, 4),
            8192,
            "capped at ceiling"
        );
        let mid = worklist_chunk_size(100_000, 4);
        assert!((64..=8192).contains(&mid));
        assert_eq!(mid, 100_000 / 64);
    }

    #[test]
    fn tasks_run_each_index_once_in_order() {
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let got = pool.run_tasks(37, |i| i * 7);
            assert_eq!(got, (0..37).map(|i| i * 7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tasks_empty_is_noop() {
        let pool = WorkerPool::new(4);
        let got: Vec<u8> = pool.run_tasks(0, |_| 1);
        assert!(got.is_empty());
    }

    #[test]
    fn few_coarse_tasks_use_multiple_workers() {
        // The point of run_tasks over run_worklist: 6 tasks must not all be
        // claimed by one worker (the worklist path's 64-entry chunk floor
        // would put them in a single chunk).
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = WorkerPool::new(4);
        let seen = Mutex::new(HashSet::new());
        let barrier = std::sync::Barrier::new(4);
        let _ = pool.run_tasks(6, |i| {
            if i < 4 {
                // The first four tasks rendezvous: they can only all arrive
                // if four distinct workers each claimed one.
                barrier.wait();
            }
            seen.lock().unwrap().insert(std::thread::current().id());
            i
        });
        assert!(
            seen.lock().unwrap().len() >= 4,
            "coarse tasks must spread across workers"
        );
    }

    #[test]
    fn tasks_transient_panic_recovers() {
        let pool = WorkerPool::new(4);
        let blown = AtomicUsize::new(0);
        let got = pool
            .try_run_tasks(10, |i| {
                if i == 3 && blown.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("injected transient fault");
                }
                i * 2
            })
            .expect("transient fault must be absorbed");
        assert_eq!(got, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(blown.load(Ordering::SeqCst), 2, "one fault + one retry");
    }

    #[test]
    fn tasks_persistent_panic_yields_typed_error() {
        let pool = WorkerPool::new(4);
        let err = pool
            .try_run_tasks(10, |i| {
                if i == 5 {
                    panic!("deterministic task bug");
                }
                i
            })
            .unwrap_err();
        match err {
            crate::EngineError::PartitionPanicked {
                partition,
                attempts,
                message,
            } => {
                assert_eq!(partition, 5);
                assert_eq!(attempts, MAX_PARTITION_ATTEMPTS);
                assert!(message.contains("deterministic task bug"), "{message}");
            }
        }
    }

    #[test]
    fn tasks_metrics_count_tasks_as_partitions() {
        let registry = ricd_obs::MetricsRegistry::new();
        let pool = WorkerPool::new(4).with_metrics(&registry);
        let blown = AtomicUsize::new(0);
        pool.try_run_tasks(8, |i| {
            if i == 2 && blown.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("flaky task");
            }
            i
        })
        .expect("transient fault absorbed");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pool.partitions_started"), Some(8));
        assert_eq!(snap.counter("pool.panics_caught"), Some(1));
        assert_eq!(snap.counter("pool.retries"), Some(1));
        assert_eq!(snap.counter("pool.partitions_failed"), Some(0));
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "pool.partition_nanos")
            .expect("partition histogram registered");
        assert_eq!(h.count, 9, "8 initial attempts + 1 retry");
    }

    #[test]
    fn tasks_results_independent_of_worker_count() {
        let seq: Vec<usize> = WorkerPool::new(1).run_tasks(23, |i| i.wrapping_mul(13));
        for w in [2, 3, 8] {
            assert_eq!(
                WorkerPool::new(w).run_tasks(23, |i| i.wrapping_mul(13)),
                seq
            );
        }
    }

    #[test]
    fn try_variants_match_infallible_results() {
        let pool = WorkerPool::new(3);
        assert_eq!(
            pool.try_filter_vertices(100, |i| i % 9 == 0).unwrap(),
            pool.filter_vertices(100, |i| i % 9 == 0)
        );
        assert_eq!(
            pool.try_fold_vertices(101, 0u64, |a, i| a + i as u64, |a, b| a + b)
                .unwrap(),
            pool.fold_vertices(101, 0u64, |a, i| a + i as u64, |a, b| a + b)
        );
    }
}
