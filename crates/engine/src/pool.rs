//! The bulk-synchronous worker pool.

use crate::partition::partition_ranges;
use std::ops::Range;

/// A fixed-width pool executing bulk-synchronous vertex rounds on scoped
/// threads.
///
/// Each primitive partitions the vertex range, runs one closure instance per
/// worker, and joins before returning — the same superstep-with-barrier model
/// Grape exposes. Threads are spawned per round; for the round sizes in this
/// workload (tens of thousands to millions of vertices) spawn cost is noise,
/// and scoped threads let closures borrow the graph without `Arc`.
#[derive(Clone, Copy, Debug)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool with `workers` threads.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "worker count must be positive");
        Self { workers }
    }

    /// A pool sized to the machine (`available_parallelism`, capped at the
    /// paper's default of 16 workers).
    pub fn default_for_host() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16);
        Self::new(n)
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(range)` once per partition of `0..n`, in parallel, returning
    /// the per-partition results in partition order.
    pub fn run_partitioned<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        let ranges = partition_ranges(n, self.workers);
        if ranges.len() <= 1 {
            return ranges.into_iter().map(&f).collect();
        }
        std::thread::scope(|s| {
            let f = &f;
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|r| s.spawn(move || f(r)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    }

    /// Computes `f(i)` for every `i in 0..n` into a vector (one superstep).
    pub fn map_vertices<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send + Default + Clone,
        F: Fn(usize) -> T + Sync,
    {
        let mut out = vec![T::default(); n];
        let ranges = partition_ranges(n, self.workers);
        if ranges.len() <= 1 {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = f(i);
            }
            return out;
        }
        // Split the output into per-partition disjoint slices.
        std::thread::scope(|s| {
            let mut rest: &mut [T] = &mut out;
            for r in ranges {
                let (chunk, tail) = rest.split_at_mut(r.len());
                rest = tail;
                let f = &f;
                s.spawn(move || {
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        *slot = f(r.start + off);
                    }
                });
            }
        });
        out
    }

    /// Collects the indices `i in 0..n` for which `pred(i)` holds, in
    /// ascending order (one superstep).
    pub fn filter_vertices<F>(&self, n: usize, pred: F) -> Vec<usize>
    where
        F: Fn(usize) -> bool + Sync,
    {
        let per_worker = self.run_partitioned(n, |r| {
            let mut hits = Vec::new();
            for i in r {
                if pred(i) {
                    hits.push(i);
                }
            }
            hits
        });
        let mut out = Vec::with_capacity(per_worker.iter().map(Vec::len).sum());
        for mut v in per_worker {
            out.append(&mut v);
        }
        out
    }

    /// Folds `f(i)` over `0..n` with a per-worker accumulator and a final
    /// sequential `merge` across workers (one superstep).
    pub fn fold_vertices<A, F, M>(&self, n: usize, init: A, f: F, merge: M) -> A
    where
        A: Send + Sync + Clone,
        F: Fn(A, usize) -> A + Sync,
        M: Fn(A, A) -> A,
    {
        let per_worker = self.run_partitioned(n, |r| {
            let mut acc = init.clone();
            for i in r {
                acc = f(acc, i);
            }
            acc
        });
        per_worker.into_iter().fold(init, merge)
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::default_for_host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_matches_sequential() {
        let pool = WorkerPool::new(4);
        let got = pool.map_vertices(1000, |i| i * i);
        let want: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn map_empty() {
        let pool = WorkerPool::new(4);
        let got: Vec<u32> = pool.map_vertices(0, |_| 1);
        assert!(got.is_empty());
    }

    #[test]
    fn filter_preserves_order() {
        let pool = WorkerPool::new(3);
        let got = pool.filter_vertices(100, |i| i % 7 == 0);
        let want: Vec<usize> = (0..100).filter(|i| i % 7 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn fold_sums() {
        let pool = WorkerPool::new(5);
        let sum = pool.fold_vertices(101, 0u64, |a, i| a + i as u64, |a, b| a + b);
        assert_eq!(sum, 100 * 101 / 2);
    }

    #[test]
    fn every_vertex_visited_exactly_once() {
        let pool = WorkerPool::new(8);
        let visits = AtomicUsize::new(0);
        let _ = pool.map_vertices(12345, |_| {
            visits.fetch_add(1, Ordering::Relaxed);
            0u8
        });
        assert_eq!(visits.load(Ordering::Relaxed), 12345);
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.map_vertices(10, |i| i), (0..10).collect::<Vec<_>>());
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn run_partitioned_returns_in_order() {
        let pool = WorkerPool::new(4);
        let ids = pool.run_partitioned(10, |r| r.start);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_workers_rejected() {
        WorkerPool::new(0);
    }

    #[test]
    fn results_independent_of_worker_count() {
        let n = 997;
        let seq: Vec<usize> = WorkerPool::new(1).map_vertices(n, |i| i.wrapping_mul(31));
        for w in [2, 3, 7, 16] {
            assert_eq!(WorkerPool::new(w).map_vertices(n, |i| i.wrapping_mul(31)), seq);
        }
    }
}
