//! Elapsed-time instrumentation for the Fig 8b comparison.
//!
//! The paper reports the *end-to-end* time of each method as the sum of its
//! module times ("the elapsed time of the detection algorithm occupies most
//! of the time" vs the UI screening step). [`PhaseTimings`] accumulates named
//! phase durations so the harness can report both the split and the total.

use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A simple restartable stopwatch.
#[derive(Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Time since start (or last [`Stopwatch::lap`]).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Returns the elapsed time and restarts the watch.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.started;
        self.started = now;
        d
    }
}

/// Accumulated durations per named phase, safe to update from worker threads.
#[derive(Debug, Default)]
pub struct PhaseTimings {
    phases: Mutex<Vec<(String, Duration)>>,
}

/// A snapshot of phase timings, serializable for experiment artifacts.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// `(phase name, elapsed)` sorted by phase name; repeated names are
    /// accumulated into one entry. Sorting makes reports comparable with
    /// `==` regardless of which thread happened to record a phase first.
    pub phases: Vec<(String, Duration)>,
}

impl PhaseTimings {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `elapsed` to the named phase.
    pub fn record(&self, phase: &str, elapsed: Duration) {
        let mut phases = self.phases.lock().expect("timings mutex poisoned");
        if let Some(entry) = phases.iter_mut().find(|(n, _)| n == phase) {
            entry.1 += elapsed;
        } else {
            phases.push((phase.to_string(), elapsed));
        }
    }

    /// Times `f`, records it under `phase`, and returns its result.
    pub fn time<T>(&self, phase: &str, f: impl FnOnce() -> T) -> T {
        let sw = Stopwatch::start();
        let out = f();
        self.record(phase, sw.elapsed());
        out
    }

    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.phases
            .lock()
            .expect("timings mutex poisoned")
            .iter()
            .map(|(_, d)| *d)
            .sum()
    }

    /// Elapsed time of one phase, if recorded.
    pub fn get(&self, phase: &str) -> Option<Duration> {
        self.phases
            .lock()
            .expect("timings mutex poisoned")
            .iter()
            .find(|(n, _)| n == phase)
            .map(|(_, d)| *d)
    }

    /// Snapshot for reporting. Phases are sorted by name: the accumulator's
    /// internal order is first-recorded order, which varies with thread
    /// interleaving, and `TimingReport` equality is order-sensitive.
    pub fn report(&self) -> TimingReport {
        let mut phases = self.phases.lock().expect("timings mutex poisoned").clone();
        phases.sort_by(|(a, _), (b, _)| a.cmp(b));
        TimingReport { phases }
    }
}

impl TimingReport {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Elapsed time of one phase, if recorded.
    pub fn get(&self, phase: &str) -> Option<Duration> {
        self.phases
            .iter()
            .find(|(n, _)| n == phase)
            .map(|(_, d)| *d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_time() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(5));
        let lap = sw.lap();
        assert!(lap >= Duration::from_millis(5));
        // After a lap the watch restarts.
        assert!(sw.elapsed() < lap);
    }

    #[test]
    fn phases_accumulate_by_name() {
        let t = PhaseTimings::new();
        t.record("detect", Duration::from_millis(10));
        t.record("screen", Duration::from_millis(5));
        t.record("detect", Duration::from_millis(10));
        assert_eq!(t.get("detect"), Some(Duration::from_millis(20)));
        assert_eq!(t.get("screen"), Some(Duration::from_millis(5)));
        assert_eq!(t.get("missing"), None);
        assert_eq!(t.total(), Duration::from_millis(25));
    }

    #[test]
    fn time_wraps_and_returns() {
        let t = PhaseTimings::new();
        let out = t.time("work", || 42);
        assert_eq!(out, 42);
        assert!(t.get("work").is_some());
    }

    #[test]
    fn report_snapshot() {
        let t = PhaseTimings::new();
        t.record("a", Duration::from_millis(1));
        let r = t.report();
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.total(), Duration::from_millis(1));
        assert_eq!(r.get("a"), Some(Duration::from_millis(1)));
    }

    #[test]
    fn report_order_is_deterministic_across_recording_orders() {
        // Regression: first-recorded order leaks thread-interleaving into
        // the snapshot, making equal workloads compare unequal.
        let a = PhaseTimings::new();
        a.record("screen", Duration::from_millis(5));
        a.record("detect", Duration::from_millis(10));
        let b = PhaseTimings::new();
        b.record("detect", Duration::from_millis(10));
        b.record("screen", Duration::from_millis(5));
        assert_eq!(a.report(), b.report());
        let report = a.report();
        let names: Vec<&str> = report.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["detect", "screen"], "sorted by name");
    }

    #[test]
    fn concurrent_recording() {
        let t = PhaseTimings::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        t.record("p", Duration::from_micros(1));
                    }
                });
            }
        });
        assert_eq!(t.get("p"), Some(Duration::from_micros(800)));
    }
}
