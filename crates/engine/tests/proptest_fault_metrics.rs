//! Property tests: the pool health counters obey their invariants for
//! every fault plan — transient or persistent, any worker count, any
//! number of rounds.

use proptest::prelude::*;
use ricd_engine::{partition_ranges, FaultInjector, FaultPlan, WorkerPool};
use ricd_obs::MetricsRegistry;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pool_counters_obey_invariants_for_any_fault_plan(
        seed in 0u64..(1u64 << 48),
        rounds in 1usize..5,
        workers in 1usize..6,
        faults in 0usize..8,
        persistent in any::<bool>(),
        n in 1usize..200,
    ) {
        let mut plan = FaultPlan::seeded(seed, rounds, workers, faults);
        if persistent {
            plan = plan.persistent();
        }
        let inj = FaultInjector::new(plan);

        let registry = MetricsRegistry::new();
        let pool = WorkerPool::new(workers).with_metrics(&registry);
        let ranges = partition_ranges(n, pool.workers());
        for _ in 0..rounds {
            inj.begin_round();
            let _ = pool.try_run_partitioned(n, |r| {
                let partition = ranges
                    .iter()
                    .position(|p| *p == r)
                    .expect("range maps to a partition");
                inj.maybe_panic(partition);
                r.len()
            });
        }

        let snap = registry.snapshot();
        let started = snap.counter("pool.partitions_started").unwrap_or(0);
        let failed = snap.counter("pool.partitions_failed").unwrap_or(0);
        let panics = snap.counter("pool.panics_caught").unwrap_or(0);
        let retries = snap.counter("pool.retries").unwrap_or(0);

        // The headline invariants.
        prop_assert!(failed <= started, "failed={failed} > started={started}");
        prop_assert!(retries >= panics, "retries={retries} < panics={panics}");

        // Every round starts every partition exactly once.
        prop_assert_eq!(started, (rounds * ranges.len()) as u64);

        // Transient faults are always absorbed by the retry ladder.
        if !persistent {
            prop_assert_eq!(failed, 0, "transient plan left failed partitions");
        } else {
            // A persistent fault fails exactly its (round, partition) cell;
            // `fired()` records each firing, so the distinct cells are the
            // failed partition executions.
            let cells: BTreeSet<(usize, usize)> = inj.fired().into_iter().collect();
            prop_assert_eq!(failed, cells.len() as u64);
        }

        // The duration histogram sees every execution: each started
        // partition once, plus each re-execution.
        let observed = snap
            .histograms
            .iter()
            .find(|(name, _)| name == "pool.partition_nanos")
            .map(|(_, h)| h.count)
            .unwrap_or(0);
        prop_assert_eq!(observed, started + retries);
    }
}
