//! The adversarial evaluation matrix: every [`AttackerStrategy`] × budget
//! cell over a planted world, with the paper's Module-3 feedback loop
//! re-tuning thresholds between rounds (ROADMAP item 2).
//!
//! Each cell plants one strategy's campaign against the same organic
//! background, runs detection at the round-0 operating point, and then —
//! when the flagged output falls short of the analyst's expectation — lets
//! the [`FeedbackTuner`] relax the thresholds and re-runs, recording
//! recall/precision/collateral per round. The report is deterministic JSON
//! (`BENCH_adversarial.json` via `ricd-bench`'s `adversarial_bench`, or
//! `ricd eval --adversarial`): no timings, no host-dependent fields, every
//! random draw seeded per cell.
//!
//! One-shot strategies are scored on the aggregate attacked graph; temporal
//! strategies ([`AttackerStrategy::temporal`], e.g. the slow drip) replay
//! through a sliding-window [`WindowedDetector`] and score the *cumulative*
//! flagged set — an account caught in any window stays caught, which is the
//! alarm semantics of the stream tier.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ricd_core::temporal::{TimedClick, WindowConfig, WindowedDetector};
use ricd_core::thresholds::{params_for_mode, FeedbackTuner};
use ricd_core::{ParamsMode, RicdParams, RicdPipeline};
use ricd_datagen::adversary::{
    standard_strategies, AttackBudget, AttackerStrategy, DetectorProfile, WorldView,
};
use ricd_datagen::attack::IdAllocator;
use ricd_datagen::timeline::{Tick, TimedRecord};
use ricd_datagen::{generate, AttackConfig, DatasetConfig, GroundTruth};
use ricd_graph::{BipartiteGraph, GraphBuilder, ItemId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Matrix configuration.
#[derive(Clone, Debug)]
pub struct AdversarialConfig {
    /// The organic background world.
    pub dataset: DatasetConfig,
    /// Click budgets — one matrix column per entry.
    pub budgets: Vec<u64>,
    /// Maximum Module-3 feedback rounds *after* round 0.
    pub feedback_rounds: usize,
    /// How the round-0 thresholds are chosen (the attacker adapts to the
    /// same resolved operating point).
    pub params_mode: ParamsMode,
    /// The Module-3 feedback seam.
    pub tuner: FeedbackTuner,
    /// Master seed; every cell derives its own stream from it.
    pub seed: u64,
    /// Fixed worker-pool width, `None` = host default. Detection output is
    /// pool-width independent (the shard-equivalence suites), so this only
    /// affects wall clock.
    pub workers: Option<usize>,
    /// Simulation horizon for timestamped plans.
    pub horizon: Tick,
    /// Batch slicing interval for the windowed replay.
    pub batch_interval: Tick,
    /// Sliding-window length for temporal cells.
    pub window: u64,
    /// Detection cadence (batches) for temporal cells.
    pub detect_every: u64,
}

impl AdversarialConfig {
    /// The default matrix: tiny world, three budgets, three feedback
    /// rounds, the paper's operating point.
    pub fn tiny(seed: u64) -> Self {
        Self {
            dataset: DatasetConfig::tiny(),
            budgets: vec![6_000, 20_000, 60_000],
            feedback_rounds: 3,
            params_mode: ParamsMode::Default,
            tuner: FeedbackTuner::default(),
            seed,
            workers: None,
            horizon: 1_600,
            batch_interval: 100,
            window: 800,
            detect_every: 4,
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        self.dataset.validate()?;
        if self.budgets.is_empty() {
            return Err("at least one budget column required".into());
        }
        if self.horizon == 0 || self.batch_interval == 0 || self.batch_interval > self.horizon {
            return Err("horizon/batch_interval invalid".into());
        }
        if self.window == 0 || self.detect_every == 0 {
            return Err("window and detect_every must be positive".into());
        }
        Ok(())
    }
}

/// One detection round inside a cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoundReport {
    /// Round index (0 = the published operating point).
    pub round: usize,
    /// Parameters this round ran with.
    pub params: RicdParams,
    /// Node recall against the cell's planted truth (Eq 6).
    pub recall: f64,
    /// Node precision (Eq 5; 0 when nothing is flagged).
    pub precision: f64,
    /// F1.
    pub f1: f64,
    /// Flagged nodes (users + items).
    pub flagged: usize,
    /// Flagged nodes that are planted.
    pub true_positives: usize,
    /// Flagged nodes that are *not* planted — the relaxation's cost.
    pub collateral: usize,
}

/// One strategy × budget cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellReport {
    /// Strategy row key.
    pub strategy: String,
    /// Budget column.
    pub budget: u64,
    /// Clicks the plan actually spent (≤ budget).
    pub injected_clicks: u64,
    /// Whole groups the strategy could afford.
    pub groups_planted: usize,
    /// True if the cell was scored through the windowed replay.
    pub temporal: bool,
    /// Per-round quality, round 0 first.
    pub rounds: Vec<RoundReport>,
    /// Recall at the published operating point.
    pub round0_recall: f64,
    /// Recall after the feedback loop settled.
    pub final_recall: f64,
    /// `final_recall − round0_recall`: what Module 3 bought back.
    pub recovery: f64,
    /// True if the last round met the tuner's flagged-node expectation.
    pub converged: bool,
}

/// The full matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdversarialReport {
    /// Master seed.
    pub seed: u64,
    /// Round-0 params mode (`default` | `derived`).
    pub params_mode: String,
    /// The tuner's flagged-node expectation.
    pub target_flagged: usize,
    /// Budget columns.
    pub budgets: Vec<u64>,
    /// Strategy rows, in cell order.
    pub strategies: Vec<String>,
    /// All cells, strategy-major.
    pub cells: Vec<CellReport>,
}

impl AdversarialReport {
    /// Looks up one cell.
    pub fn cell(&self, strategy: &str, budget: u64) -> Option<&CellReport> {
        self.cells
            .iter()
            .find(|c| c.strategy == strategy && c.budget == budget)
    }
}

/// Per-cell seed derivation: FNV-1a over the strategy name folded with the
/// master seed and the budget, so cells are independent and reordering the
/// matrix never changes a cell's plan.
fn cell_seed(seed: u64, name: &str, budget: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h ^ budget.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The attacker's view of the organic background: id spaces plus the
/// popularity head (top 1%, at least 2 items) as the ridable hot pool.
fn world_view(g: &BipartiteGraph, horizon: Tick) -> WorldView {
    let totals = g.all_item_total_clicks();
    let mut by_clicks: Vec<u32> = (0..g.num_items() as u32).collect();
    by_clicks.sort_unstable_by_key(|&v| std::cmp::Reverse(totals[v as usize]));
    let head = (by_clicks.len() / 100).max(2).min(by_clicks.len());
    WorldView {
        organic_users: g.num_users(),
        organic_items: g.num_items(),
        hot_pool: by_clicks[..head].iter().map(|&v| ItemId(v)).collect(),
        ordinary_pool: by_clicks[head..].iter().map(|&v| ItemId(v)).collect(),
        horizon,
    }
}

/// Cumulative-set quality with the same conventions as
/// [`crate::metrics::evaluate`]: recall 0 on empty truth, precision 0 on
/// empty output.
fn score_sets(
    flagged_users: &BTreeSet<UserId>,
    flagged_items: &BTreeSet<ItemId>,
    truth: &GroundTruth,
) -> (f64, f64, f64, usize, usize) {
    let known_users = truth.abnormal_users();
    let known_items = truth.abnormal_items();
    let tp = flagged_users
        .iter()
        .filter(|u| known_users.binary_search(u).is_ok())
        .count()
        + flagged_items
            .iter()
            .filter(|v| known_items.binary_search(v).is_ok())
            .count();
    let flagged = flagged_users.len() + flagged_items.len();
    let known = known_users.len() + known_items.len();
    let precision = if flagged == 0 {
        0.0
    } else {
        tp as f64 / flagged as f64
    };
    let recall = if known == 0 {
        0.0
    } else {
        tp as f64 / known as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (recall, precision, f1, tp, flagged)
}

fn make_pipeline(params: RicdParams, workers: Option<usize>) -> RicdPipeline {
    let pipeline = RicdPipeline::new(params);
    match workers {
        Some(n) => pipeline.with_pool(ricd_engine::WorkerPool::new(n)),
        None => pipeline,
    }
}

/// Runs the Module-3 feedback loop on a one-shot graph: detect, score,
/// relax via the tuner, repeat — up to `feedback_rounds` relaxations after
/// round 0, stopping early when the tuner converges or runs out of knobs.
/// Returns the per-round trace (round 0 first). This is the seam the
/// convergence tests pin.
pub fn run_feedback_rounds(
    g: &BipartiteGraph,
    truth: &GroundTruth,
    params0: RicdParams,
    tuner: &FeedbackTuner,
    feedback_rounds: usize,
    workers: Option<usize>,
) -> Vec<RoundReport> {
    let pipeline = make_pipeline(params0, workers);
    let mut params = params0;
    let mut rounds = Vec::new();
    for round in 0..=feedback_rounds {
        let result = pipeline.run_with(g, &params);
        let users: BTreeSet<UserId> = result.suspicious_users().into_iter().collect();
        let items: BTreeSet<ItemId> = result.suspicious_items().into_iter().collect();
        let (recall, precision, f1, tp, flagged) = score_sets(&users, &items, truth);
        rounds.push(RoundReport {
            round,
            params,
            recall,
            precision,
            f1,
            flagged,
            true_positives: tp,
            collateral: flagged - tp,
        });
        if round < feedback_rounds {
            match tuner.observe(&params, flagged) {
                Some(next) => params = next,
                None => break,
            }
        }
    }
    rounds
}

/// The windowed analogue: each round replays the batch sequence through a
/// fresh [`WindowedDetector`] at that round's parameters and scores the
/// cumulative flagged set.
fn run_windowed_feedback_rounds(
    batches: &[(u64, Vec<TimedClick>)],
    truth: &GroundTruth,
    params0: RicdParams,
    cfg: &AdversarialConfig,
) -> Result<Vec<RoundReport>, String> {
    let window = WindowConfig {
        window: Some(cfg.window),
        half_life: None,
        detect_every: cfg.detect_every,
    };
    let mut params = params0;
    let mut rounds = Vec::new();
    for round in 0..=cfg.feedback_rounds {
        let mut detector = WindowedDetector::new(make_pipeline(params, cfg.workers), window)?;
        let mut users: BTreeSet<UserId> = BTreeSet::new();
        let mut items: BTreeSet<ItemId> = BTreeSet::new();
        for (seq, wire) in batches {
            detector.ingest_batch(*seq, wire);
            let r = detector.last_result();
            users.extend(r.suspicious_users());
            items.extend(r.suspicious_items());
        }
        let r = detector.result();
        users.extend(r.suspicious_users());
        items.extend(r.suspicious_items());
        let (recall, precision, f1, tp, flagged) = score_sets(&users, &items, truth);
        rounds.push(RoundReport {
            round,
            params,
            recall,
            precision,
            f1,
            flagged,
            true_positives: tp,
            collateral: flagged - tp,
        });
        if round < cfg.feedback_rounds {
            match cfg.tuner.observe(&params, flagged) {
                Some(next) => params = next,
                None => break,
            }
        }
    }
    Ok(rounds)
}

/// Slices timestamped records into contiguous `(seq, wire-batch)` pairs
/// covering `[0, horizon)`, the stream tier's ingest shape.
fn slice_batches(
    mut records: Vec<TimedRecord>,
    horizon: Tick,
    interval: Tick,
) -> Vec<(u64, Vec<TimedClick>)> {
    records.sort_unstable_by_key(|r| (r.ts, r.user.0, r.item.0, r.clicks));
    let num_slots = horizon.div_ceil(interval) as usize;
    let mut batches: Vec<(u64, Vec<TimedClick>)> =
        (0..num_slots as u64).map(|seq| (seq, Vec::new())).collect();
    for r in records {
        let slot = ((r.ts / interval) as usize).min(num_slots - 1);
        batches[slot].1.push(r.wire());
    }
    batches
}

/// Runs the matrix over the shipped strategy library.
pub fn run_adversarial(cfg: &AdversarialConfig) -> Result<AdversarialReport, String> {
    run_adversarial_with(cfg, standard_strategies())
}

/// Runs the matrix over a caller-chosen strategy set (reduced CI matrices,
/// focused tests).
pub fn run_adversarial_with(
    cfg: &AdversarialConfig,
    strategies: Vec<Box<dyn AttackerStrategy>>,
) -> Result<AdversarialReport, String> {
    cfg.validate()?;
    let base = generate(&cfg.dataset, &AttackConfig::none())?;
    let world = world_view(&base.graph, cfg.horizon);

    // The attacker adapts to the *published* operating point — resolved
    // against the organic background, which is all both sides can see
    // before the campaign runs.
    let published = params_for_mode(cfg.params_mode, &base.graph);
    let profile = DetectorProfile {
        k1: published.k1,
        k2: published.k2,
        alpha: published.alpha,
        t_hot: published.t_hot,
        t_click: published.t_click,
    };

    // Timestamps for the organic background, shared by every temporal cell
    // (seeded independently of the cells so the matrix shape can change
    // without reshuffling the world).
    let mut organic_rng = StdRng::seed_from_u64(cfg.seed ^ 0x6f72_6761_6e69_6373);
    let organic_timed: Vec<TimedRecord> = base
        .graph
        .edges()
        .map(|(user, item, clicks)| TimedRecord {
            user,
            item,
            clicks,
            ts: organic_rng.gen_range(0..cfg.horizon),
        })
        .collect();

    let mut cells = Vec::new();
    for strategy in &strategies {
        for &budget in &cfg.budgets {
            let mut rng = StdRng::seed_from_u64(cell_seed(cfg.seed, strategy.name(), budget));
            let mut alloc = IdAllocator::new(world.organic_users, world.organic_items);
            let plan = strategy.plan(
                &world,
                &profile,
                AttackBudget { clicks: budget },
                &mut alloc,
                &mut rng,
            )?;

            let mut builder = GraphBuilder::new();
            for (user, item, clicks) in base.graph.edges() {
                builder.add_click(user, item, clicks);
            }
            for r in &plan.records {
                builder.add_click(r.user, r.item, r.clicks);
            }
            let attacked = builder.build();
            // The detector derives its round-0 thresholds from what it
            // observes: the attacked table.
            let params0 = params_for_mode(cfg.params_mode, &attacked);

            let rounds = if strategy.temporal() {
                let mut timed = organic_timed.clone();
                timed.extend(plan.records.iter().copied());
                let batches = slice_batches(timed, cfg.horizon, cfg.batch_interval);
                run_windowed_feedback_rounds(&batches, &plan.truth, params0, cfg)?
            } else {
                run_feedback_rounds(
                    &attacked,
                    &plan.truth,
                    params0,
                    &cfg.tuner,
                    cfg.feedback_rounds,
                    cfg.workers,
                )
            };

            let round0_recall = rounds.first().map_or(0.0, |r| r.recall);
            let last = rounds.last().expect("at least round 0");
            cells.push(CellReport {
                strategy: strategy.name().to_string(),
                budget,
                injected_clicks: plan.total_clicks(),
                groups_planted: plan.truth.groups.len(),
                temporal: strategy.temporal(),
                round0_recall,
                final_recall: last.recall,
                recovery: last.recall - round0_recall,
                converged: last.flagged >= cfg.tuner.target_flagged,
                rounds,
            });
        }
    }

    Ok(AdversarialReport {
        seed: cfg.seed,
        params_mode: cfg.params_mode.as_str().to_string(),
        target_flagged: cfg.tuner.target_flagged,
        budgets: cfg.budgets.clone(),
        strategies: strategies.iter().map(|s| s.name().to_string()).collect(),
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_datagen::adversary::{BudgetSplit, PaperOptimal};
    use ricd_datagen::timeline::{build_timeline, ScenarioConfig};

    fn reduced(seed: u64) -> AdversarialConfig {
        AdversarialConfig {
            budgets: vec![6_000],
            workers: Some(2),
            ..AdversarialConfig::tiny(seed)
        }
    }

    /// The ISSUE's acceptance criterion: ≥ 4 strategies in the matrix, at
    /// least one drops round-0 recall below 0.8, and the Module-3 loop
    /// recovers it by ≥ 0.15 absolute within 3 rounds.
    #[test]
    fn matrix_breaks_and_feedback_recovers() {
        let report = run_adversarial(&reduced(0x5eed_0010)).unwrap();
        assert!(report.strategies.len() >= 4);

        let fixed = report.cell("paper_optimal", 6_000).unwrap();
        assert!(
            fixed.round0_recall >= 0.8,
            "the fixed-strategy cell must hold seed-level recall: {fixed:?}"
        );

        let broken: Vec<&CellReport> = report
            .cells
            .iter()
            .filter(|c| c.round0_recall < 0.8)
            .collect();
        assert!(!broken.is_empty(), "some strategy must break the boundary");
        let recovered = broken
            .iter()
            .find(|c| c.recovery >= 0.15 && c.rounds.len() <= 4)
            .unwrap_or_else(|| panic!("no broken cell recovered: {broken:?}"));
        assert!(recovered.rounds.last().unwrap().round <= 3);

        // Budget splitting specifically: invisible at the published floor,
        // fully recovered by the k/α relaxation.
        let split = report.cell("budget_split", 6_000).unwrap();
        assert!(split.round0_recall < 0.8, "{split:?}");
        assert!(
            split.final_recall >= split.round0_recall + 0.15,
            "{split:?}"
        );
    }

    /// Satellite: feedback-loop convergence on the burst preset — tuned
    /// thresholds never oscillate (each knob is monotone, and the
    /// threshold knobs are frozen from round 3 on), and recall is
    /// monotonically non-decreasing across rounds.
    #[test]
    fn feedback_converges_without_oscillation_on_burst() {
        let tl = build_timeline(&ScenarioConfig::burst()).unwrap();
        let mut builder = GraphBuilder::new();
        for (u, v, c) in tl.all_untimed() {
            builder.add_click(u, v, c);
        }
        let g = builder.build();

        // At the published operating point the burst is flagged outright:
        // the loop must converge at round 0 and freeze the parameters.
        let tuner = FeedbackTuner::default();
        let rounds = run_feedback_rounds(&g, &tl.truth, RicdParams::default(), &tuner, 6, Some(2));
        assert_eq!(rounds.len(), 1, "round 0 meets the expectation");
        assert!(rounds[0].flagged >= tuner.target_flagged);

        // Under an unreachable expectation the tuner walks every knob to
        // its bound — monotonically, with no reversal at any round.
        let greedy = FeedbackTuner {
            target_flagged: usize::MAX,
            ..FeedbackTuner::default()
        };
        let rounds = run_feedback_rounds(&g, &tl.truth, RicdParams::default(), &greedy, 6, Some(2));
        assert!(rounds.len() >= 4);
        for w in rounds.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            assert!(b.params.t_click <= a.params.t_click, "t_click oscillated");
            assert!(b.params.k1 <= a.params.k1 && b.params.k2 <= a.params.k2);
            assert!(b.params.alpha <= a.params.alpha + 1e-12, "alpha oscillated");
            assert!(b.params.t_hot >= a.params.t_hot, "t_hot oscillated");
            assert!(
                b.recall >= a.recall - 1e-9,
                "recall regressed under relaxation: {} -> {}",
                a.recall,
                b.recall
            );
        }
        // Thresholds settle by round 3; later rounds only walk k.
        let at3 = &rounds[3].params;
        for r in &rounds[3..] {
            assert_eq!(r.params.t_click, at3.t_click);
            assert_eq!(r.params.t_hot, at3.t_hot);
            assert!((r.params.alpha - at3.alpha).abs() < 1e-12);
        }
    }

    /// Satellite: the derived-thresholds mode is exercisable end to end,
    /// with the documented tiny-world behavior pinned — the derived
    /// `T_hot` sits below the targets' accumulated clicks, so even the
    /// paper-optimal attack hides behind the hot-item excuse at round 0.
    #[test]
    fn derived_mode_collapses_on_the_tiny_world() {
        let cfg = AdversarialConfig {
            params_mode: ParamsMode::Derived,
            ..reduced(0x5eed_0011)
        };
        let report = run_adversarial_with(&cfg, vec![Box::new(PaperOptimal)]).unwrap();
        assert_eq!(report.params_mode, "derived");
        let cell = report.cell("paper_optimal", 6_000).unwrap();
        let round0 = &cell.rounds[0];
        assert!(
            round0.params.t_hot < 1_000,
            "tiny-world Pareto head sits far below the paper's T_hot: {round0:?}"
        );
        assert!(
            cell.round0_recall < 0.8,
            "documented collapse: derived T_hot marks the targets hot: {cell:?}"
        );
    }

    #[test]
    fn matrix_is_deterministic() {
        let run = || {
            let report = run_adversarial_with(
                &reduced(7),
                vec![Box::new(PaperOptimal), Box::new(BudgetSplit)],
            )
            .unwrap();
            serde_json::to_string(&report).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bad_configs_rejected() {
        let mut cfg = AdversarialConfig::tiny(1);
        cfg.budgets.clear();
        assert!(run_adversarial(&cfg).is_err());
        let cfg = AdversarialConfig {
            batch_interval: 0,
            ..AdversarialConfig::tiny(1)
        };
        assert!(cfg.validate().is_err());
        let cfg = AdversarialConfig {
            detect_every: 0,
            ..AdversarialConfig::tiny(1)
        };
        assert!(cfg.validate().is_err());
    }
}
