//! One runner per paper table/figure.
//!
//! | Runner | Reproduces |
//! |---|---|
//! | [`dataset_report`] | Table I, Table II, Fig 2, the Section IV threshold derivation |
//! | [`tables3_4`] | Table III (suspect click records) / Table IV (normal) |
//! | [`table5`] | Table V (suspicious vs normal item statistics) |
//! | [`fig8`] | Fig 8a (quality) + Fig 8b (elapsed time) |
//! | [`table6`] | Table VI (screening ablation) |
//! | [`fig9`] | Fig 9a–e (parameter sensitivity) |
//! | [`fig10`] | Fig 10 (case-study campaign timeline) |

use crate::methods::{Method, MethodConfig};
use crate::metrics::{evaluate, Evaluation};
use ricd_core::params::RicdParams;
use ricd_core::thresholds;
use ricd_datagen::builder::SyntheticDataset;
use ricd_datagen::campaign::{simulate_campaign, CampaignConfig, CampaignDay};
use ricd_datagen::truth::GroundTruth;
use ricd_graph::stats::{self, ClickDistribution, DatasetScale, SideStats};
use ricd_graph::{BipartiteGraph, ItemId, UserId};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Table I / Table II / Fig 2
// ---------------------------------------------------------------------------

/// Everything the paper reports about the dataset itself.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetReport {
    /// Table I.
    pub scale: DatasetScale,
    /// Table II, user row.
    pub user_stats: SideStats,
    /// Table II, item row.
    pub item_stats: SideStats,
    /// Share of clicks captured by the top 20% of items (the Pareto check).
    pub pareto_top20_share: f64,
    /// `T_hot` derived by the 80% rule (paper: 1,320).
    pub t_hot_pareto: u64,
    /// `T_click` derived by Eq 4 (paper: 12).
    pub t_click_derived: u32,
    /// Fig 2a series.
    pub item_distribution: ClickDistribution,
    /// Fig 2b series.
    pub user_distribution: ClickDistribution,
}

/// Computes the Table I/II/Fig 2 report for any graph.
pub fn dataset_report(g: &BipartiteGraph) -> DatasetReport {
    let (t_hot_pareto, t_click_derived) = thresholds::derive_thresholds(g, 0.8);
    DatasetReport {
        scale: stats::dataset_scale(g),
        user_stats: stats::user_stats(g),
        item_stats: stats::item_stats(g),
        pareto_top20_share: stats::pareto_concentration(g, 0.2),
        t_hot_pareto,
        t_click_derived,
        item_distribution: stats::item_click_distribution(g),
        user_distribution: stats::user_click_distribution(g),
    }
}

// ---------------------------------------------------------------------------
// Table III / IV / V
// ---------------------------------------------------------------------------

/// One row of a Table III/IV-style click-record listing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClickRecordRow {
    /// Sequence id (the paper anonymizes item ids the same way).
    pub seq: usize,
    /// This user's clicks on the item.
    pub click: u32,
    /// The item's total clicks from all users.
    pub total_click: u64,
    /// 1 if the item is hot (`total ≥ T_hot`), else 0.
    pub hot: u8,
}

/// The click records of one user, ordered by the item's total clicks
/// descending — the layout of Tables III and IV.
pub fn click_record_table(g: &BipartiteGraph, user: UserId, t_hot: u64) -> Vec<ClickRecordRow> {
    let mut rows: Vec<ClickRecordRow> = g
        .user_neighbors(user)
        .map(|(v, c)| {
            let total = g.item_total_clicks(v);
            ClickRecordRow {
                seq: 0,
                click: c,
                total_click: total,
                hot: u8::from(total >= t_hot),
            }
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.total_click));
    for (i, r) in rows.iter_mut().enumerate() {
        r.seq = i + 1;
    }
    rows
}

/// Table III (a planted worker's records) and Table IV (a normal user's).
///
/// The worker is the first planted one; the normal user is the organic user
/// with the most click records (so both tables have enough rows to read).
pub fn tables3_4(ds: &SyntheticDataset, t_hot: u64) -> (Vec<ClickRecordRow>, Vec<ClickRecordRow>) {
    let worker = ds
        .truth
        .groups
        .first()
        .and_then(|g| g.workers.first())
        .copied()
        .unwrap_or(UserId(0));
    let normal = (0..ds.organic_users() as u32)
        .map(UserId)
        .max_by_key(|&u| ds.graph.user_degree(u))
        .unwrap_or(UserId(0));
    (
        click_record_table(&ds.graph, worker, t_hot),
        click_record_table(&ds.graph, normal, t_hot),
    )
}

/// One row of Table V.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ItemStatsRow {
    /// Total clicks on the item.
    pub total_click: u64,
    /// Mean clicks per clicking user.
    pub mean: f64,
    /// Stdev of clicks per clicking user.
    pub stdev: f64,
    /// Number of distinct users who clicked it.
    pub user_num: usize,
    /// Max clicks from one user.
    pub max: u32,
    /// Min clicks from one user.
    pub min: u32,
}

fn item_stats_row(g: &BipartiteGraph, v: ItemId) -> ItemStatsRow {
    let clicks: Vec<u32> = g.item_neighbors(v).map(|(_, c)| c).collect();
    let n = clicks.len().max(1) as f64;
    let total: u64 = clicks.iter().map(|&c| c as u64).sum();
    let mean = total as f64 / n;
    let var = clicks
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    ItemStatsRow {
        total_click: total,
        mean,
        stdev: var.sqrt(),
        user_num: clicks.len(),
        max: clicks.iter().copied().max().unwrap_or(0),
        min: clicks.iter().copied().min().unwrap_or(0),
    }
}

/// Table V: a planted target item vs the organic item whose total clicks are
/// closest to it (the paper matches a 368-click suspicious item against a
/// 404-click normal one).
pub fn table5(ds: &SyntheticDataset) -> Option<(ItemStatsRow, ItemStatsRow)> {
    let target = ds.truth.groups.first()?.targets.first().copied()?;
    let target_row = item_stats_row(&ds.graph, target);
    let normal = (0..ds.organic_items() as u32)
        .map(ItemId)
        .filter(|&v| ds.graph.item_degree(v) > 0)
        .min_by_key(|&v| {
            ds.graph
                .item_total_clicks(v)
                .abs_diff(target_row.total_click)
        })?;
    Some((target_row, item_stats_row(&ds.graph, normal)))
}

// ---------------------------------------------------------------------------
// Section IV rough screening
// ---------------------------------------------------------------------------

/// The Section IV exploratory numbers: rough-screen fractions (paper: ≥ 7%
/// of users, ≥ 15% of items) and the suspicious-clicker-share contrast
/// (paper: 1.98% on suspicious items vs 0.49% on normal items).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Section4Report {
    /// Fraction of all users flagged by the rough screen.
    pub user_fraction: f64,
    /// Fraction of all items flagged.
    pub item_fraction: f64,
    /// Mean share of suspicious clickers on the planted target items.
    pub target_clicker_share: f64,
    /// Mean share of suspicious clickers on click-matched normal items.
    pub normal_clicker_share: f64,
}

/// Runs the Section IV rough screening against a synthetic dataset and
/// computes the clicker-share contrast on planted targets vs click-matched
/// organic items.
pub fn section4_analysis(ds: &SyntheticDataset, t_hot: u64, t_click: u32) -> Section4Report {
    use ricd_core::analysis::rough_screening;
    use ricd_engine::WorkerPool;

    let screen = rough_screening(&ds.graph, t_hot, t_click, &WorkerPool::default_for_host());

    let targets: Vec<ItemId> = ds.truth.abnormal_items();
    let mut target_share = 0.0;
    let mut normal_share = 0.0;
    let mut n = 0usize;
    for &t in targets.iter().take(32) {
        let t_total = ds.graph.item_total_clicks(t);
        // Click-matched organic comparator.
        let Some(normal) = (0..ds.organic_items() as u32)
            .map(ItemId)
            .filter(|&v| ds.graph.item_degree(v) > 0 && !targets.contains(&v))
            .min_by_key(|&v| ds.graph.item_total_clicks(v).abs_diff(t_total))
        else {
            continue;
        };
        target_share += screen.suspicious_clicker_share(&ds.graph, t);
        normal_share += screen.suspicious_clicker_share(&ds.graph, normal);
        n += 1;
    }
    let n = n.max(1) as f64;
    Section4Report {
        user_fraction: screen.user_fraction,
        item_fraction: screen.item_fraction,
        target_clicker_share: target_share / n,
        normal_clicker_share: normal_share / n,
    }
}

// ---------------------------------------------------------------------------
// Fig 8 / Table VI
// ---------------------------------------------------------------------------

/// One method's quality and timing in a comparison run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MethodOutcome {
    /// Which method.
    pub method: Method,
    /// Paper label.
    pub name: String,
    /// Eq 5/6 scores.
    pub eval: Evaluation,
    /// Detection-phase time in milliseconds.
    pub detect_ms: f64,
    /// Screening (UI) time in milliseconds.
    pub screen_ms: f64,
    /// End-to-end time in milliseconds.
    pub total_ms: f64,
}

impl MethodOutcome {
    /// Derives the Fig 8b timing columns from a per-run metrics snapshot:
    /// detection is the `pipeline/detect` span (plus `pipeline/naive` for
    /// the naive algorithm), screening is `pipeline/screen`, and the total
    /// is the sum of the direct `pipeline/*` phase spans — the same
    /// sum-of-modules definition the paper uses.
    pub fn from_snapshot(
        method: Method,
        eval: Evaluation,
        snapshot: &ricd_obs::MetricsSnapshot,
    ) -> MethodOutcome {
        let ms = |phase: &str| snapshot.span_millis(&format!("pipeline/{phase}"));
        MethodOutcome {
            method,
            name: method.name().to_string(),
            eval,
            detect_ms: ms("detect") + ms("naive"),
            screen_ms: ms("screen"),
            total_ms: snapshot.span_level_total_nanos("pipeline") as f64 / 1e6,
        }
    }
}

fn run_method(
    method: Method,
    g: &BipartiteGraph,
    truth: &GroundTruth,
    cfg: &MethodConfig,
) -> MethodOutcome {
    // One registry per method run, so the snapshot's spans describe exactly
    // this method.
    let registry = ricd_obs::MetricsRegistry::new();
    let result = cfg.run_metered(method, g, &registry);
    let eval = evaluate(&result, truth);
    MethodOutcome::from_snapshot(method, eval, &registry.snapshot())
}

/// Fig 8a+8b: runs the full lineup and reports quality and time per method.
pub fn fig8(g: &BipartiteGraph, truth: &GroundTruth, cfg: &MethodConfig) -> Vec<MethodOutcome> {
    Method::fig8_lineup()
        .iter()
        .map(|&m| run_method(m, g, truth, cfg))
        .collect()
}

/// Table VI: the screening ablation.
pub fn table6(g: &BipartiteGraph, truth: &GroundTruth, cfg: &MethodConfig) -> Vec<MethodOutcome> {
    Method::table6_lineup()
        .iter()
        .map(|&m| run_method(m, g, truth, cfg))
        .collect()
}

// ---------------------------------------------------------------------------
// Fig 9 — sensitivity
// ---------------------------------------------------------------------------

/// One sweep point.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The parameter value.
    pub value: f64,
    /// Quality at that value.
    pub eval: Evaluation,
}

/// All five sweeps of Fig 9 (paper values).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SensitivityReport {
    /// Fig 9a: `k₁ ∈ {5, 10, 15, 20}`.
    pub k1: Vec<SweepPoint>,
    /// Fig 9b: `k₂ ∈ {5, 10, 15, 20}`.
    pub k2: Vec<SweepPoint>,
    /// Fig 9c: `α ∈ {0.7, 0.8, 0.9, 1.0}`.
    pub alpha: Vec<SweepPoint>,
    /// Fig 9d: `T_click ∈ {10, 12, 14, 16}`.
    pub t_click: Vec<SweepPoint>,
    /// Fig 9e: `T_hot ∈ {1000, 2000, 3000, 4000}`.
    pub t_hot: Vec<SweepPoint>,
}

/// Runs the Fig 9 sweeps with RICD around `base` parameters.
pub fn fig9(g: &BipartiteGraph, truth: &GroundTruth, cfg: &MethodConfig) -> SensitivityReport {
    let base = cfg.ricd;
    let run = |params: RicdParams| -> Evaluation {
        let c = MethodConfig {
            ricd: params,
            ..cfg.clone()
        };
        evaluate(&c.run(Method::Ricd, g), truth)
    };

    let k1 = [5usize, 10, 15, 20]
        .iter()
        .map(|&v| SweepPoint {
            value: v as f64,
            eval: run(RicdParams { k1: v, ..base }),
        })
        .collect();
    let k2 = [5usize, 10, 15, 20]
        .iter()
        .map(|&v| SweepPoint {
            value: v as f64,
            eval: run(RicdParams { k2: v, ..base }),
        })
        .collect();
    let alpha = [0.7f64, 0.8, 0.9, 1.0]
        .iter()
        .map(|&v| SweepPoint {
            value: v,
            eval: run(RicdParams { alpha: v, ..base }),
        })
        .collect();
    let t_click = [10u32, 12, 14, 16]
        .iter()
        .map(|&v| SweepPoint {
            value: v as f64,
            eval: run(RicdParams { t_click: v, ..base }),
        })
        .collect();
    let t_hot = [1_000u64, 2_000, 3_000, 4_000]
        .iter()
        .map(|&v| SweepPoint {
            value: v as f64,
            eval: run(RicdParams { t_hot: v, ..base }),
        })
        .collect();

    SensitivityReport {
        k1,
        k2,
        alpha,
        t_click,
        t_hot,
    }
}

// ---------------------------------------------------------------------------
// Fig 10 — case study
// ---------------------------------------------------------------------------

/// The Fig 10 experiment: the campaign timeline with the day RICD actually
/// fires, and the (re-simulated) post-cleaning series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CaseStudyReport {
    /// The uncleaned (counterfactual) series.
    pub uncleaned: Vec<CampaignDay>,
    /// First day a daily RICD job catches the group, if any.
    pub detection_day: Option<usize>,
    /// The final series with cleaning applied on `detection_day`.
    pub cleaned: Vec<CampaignDay>,
    /// Fraction of the planted workers caught on the detection day.
    pub worker_recall_at_detection: f64,
}

/// Runs a daily RICD job over the campaign's cumulative snapshots; the
/// detection day is the first day it recovers ≥ `recall_bar` of the planted
/// workers. Then re-simulates with cleaning at that day for the final
/// timeline.
pub fn fig10(
    campaign: &CampaignConfig,
    cfg: &MethodConfig,
    recall_bar: f64,
) -> Result<CaseStudyReport, String> {
    let mut no_cleaning = campaign.clone();
    no_cleaning.cleaning_day = None;
    let timeline = simulate_campaign(&no_cleaning)?;
    let workers = timeline.truth.abnormal_users();

    let mut detection_day = None;
    let mut recall_at = 0.0;
    for day in 1..=no_cleaning.num_days {
        let g = timeline.cumulative_graph(day);
        let result = cfg.run(Method::Ricd, &g);
        let found = result.suspicious_users();
        let hits = found
            .iter()
            .filter(|u| workers.binary_search(u).is_ok())
            .count();
        let recall = hits as f64 / workers.len().max(1) as f64;
        if recall >= recall_bar {
            detection_day = Some(day);
            recall_at = recall;
            break;
        }
    }

    let cleaned = if let Some(day) = detection_day {
        let mut with_cleaning = campaign.clone();
        with_cleaning.cleaning_day = Some(day);
        simulate_campaign(&with_cleaning)?.days
    } else {
        timeline.days.clone()
    };

    Ok(CaseStudyReport {
        uncleaned: timeline.days,
        detection_day,
        cleaned,
        worker_recall_at_detection: recall_at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_datagen::prelude::*;
    use std::time::Duration;

    fn dataset() -> SyntheticDataset {
        generate(&DatasetConfig::small(), &AttackConfig::small()).unwrap()
    }

    #[test]
    fn dataset_report_is_consistent() {
        let ds = dataset();
        let r = dataset_report(&ds.graph);
        assert_eq!(r.scale.users, ds.graph.num_users());
        assert!(r.pareto_top20_share > 0.5);
        assert!(r.t_hot_pareto > 0);
        assert!(r.t_click_derived >= 2);
        let total: u64 = r.item_distribution.count.iter().sum::<u64>() + r.item_distribution.zeros;
        assert_eq!(total as usize, ds.graph.num_items());
    }

    #[test]
    fn tables3_4_show_the_signature() {
        let ds = dataset();
        let (suspect, normal) = tables3_4(&ds, 1_000);
        assert!(!suspect.is_empty() && !normal.is_empty());
        // The worker's heaviest ordinary click exceeds anything reasonable
        // for the normal user's ordinary items.
        let max_ord_suspect = suspect
            .iter()
            .filter(|r| r.hot == 0)
            .map(|r| r.click)
            .max()
            .unwrap_or(0);
        assert!(max_ord_suspect >= 12, "worker hammers ordinary targets");
        // Rows sorted by item popularity.
        for w in suspect.windows(2) {
            assert!(w[0].total_click >= w[1].total_click);
        }
    }

    #[test]
    fn table5_shows_concentration() {
        let ds = dataset();
        let (sus, normal) = table5(&ds).expect("has a target");
        // Totals are click-matched; the suspicious item concentrates its
        // clicks on fewer users.
        assert!(sus.mean > normal.mean, "sus {sus:?} vs normal {normal:?}");
        assert!(sus.max >= 12);
    }

    #[test]
    fn section4_rough_screen_contrast() {
        let ds = dataset();
        let r = section4_analysis(&ds, 1_000, 12);
        assert!(r.user_fraction > 0.0 && r.user_fraction < 0.5);
        assert!(r.item_fraction > 0.0 && r.item_fraction < 0.5);
        // The paper's 1.98% vs 0.49% contrast: suspicious clickers appear
        // far more often on targets than on click-matched normal items.
        assert!(
            r.target_clicker_share > 2.0 * r.normal_clicker_share,
            "target {:.3} vs normal {:.3}",
            r.target_clicker_share,
            r.normal_clicker_share
        );
    }

    #[test]
    fn fig8_runs_the_lineup() {
        let ds = generate(
            &DatasetConfig::tiny(),
            &AttackConfig {
                num_groups: 2,
                ..AttackConfig::default()
            },
        )
        .unwrap();
        let cfg = MethodConfig {
            copycatch_budget: Duration::from_millis(500),
            ..MethodConfig::default()
        };
        let outcomes = fig8(&ds.graph, &ds.truth, &cfg);
        assert_eq!(outcomes.len(), 7);
        let ricd = outcomes.iter().find(|o| o.method == Method::Ricd).unwrap();
        assert!(ricd.eval.f1 > 0.0, "RICD finds something");
        assert!(ricd.total_ms > 0.0);
    }

    #[test]
    fn table6_ablation_shape() {
        let ds = dataset();
        let cfg = MethodConfig::default();
        let rows = table6(&ds.graph, &ds.truth, &cfg);
        assert_eq!(rows.len(), 3);
        // Paper's Table VI shape: precision rises monotonically toward full
        // RICD; recall does not increase.
        assert!(rows[0].eval.precision <= rows[1].eval.precision + 1e-9);
        assert!(rows[1].eval.precision <= rows[2].eval.precision + 1e-9);
        assert!(rows[0].eval.recall + 1e-9 >= rows[2].eval.recall);
    }

    #[test]
    fn fig10_detects_and_cleans() {
        let campaign = CampaignConfig {
            dataset: DatasetConfig::tiny(),
            ..CampaignConfig::default()
        };
        let cfg = MethodConfig::default();
        let report = fig10(&campaign, &cfg, 0.5).unwrap();
        let day = report.detection_day.expect("the campaign attack is caught");
        assert!(day >= campaign.attack_start_day);
        assert!(report.worker_recall_at_detection >= 0.5);
        // After cleaning, fake traffic is zero.
        for d in &report.cleaned {
            if d.day > day {
                assert_eq!(d.fake_clicks, 0);
            }
        }
    }
}
