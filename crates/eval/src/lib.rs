#![warn(missing_docs)]

//! # ricd-eval — the evaluation harness
//!
//! One module per concern:
//!
//! * [`metrics`] — precision / recall / F1 exactly as the paper defines them
//!   (Eq 5–6): node-level, counting users *and* items, against the known
//!   abnormal set.
//! * [`methods`] — a uniform registry of every detector in the comparison
//!   (RICD and its ablations, the five baselines, the naive algorithm), so
//!   the figure runners and benches iterate over methods generically.
//! * [`figures`] — one runner per paper table/figure; each returns a
//!   serializable report struct that the benches and examples print.
//! * [`report`] — text-table and JSON rendering of those reports.

//! * [`temporal`] — scenario replay over the timestamped timeline:
//!   per-campaign time-to-flag, phase-quality snapshots, and the
//!   `stream.*` latency metrics.

//! * [`adversarial`] — the adaptive-attacker lab: every detector-aware
//!   [`ricd_datagen::adversary::AttackerStrategy`] × budget cell run
//!   against a planted world, with the paper's Module-3 feedback loop
//!   re-tuning thresholds between rounds and per-round
//!   recall/precision/collateral recorded into a deterministic report.

pub mod adversarial;
pub mod figures;
pub mod methods;
pub mod metrics;
pub mod report;
pub mod temporal;

pub use adversarial::{
    run_adversarial, run_adversarial_with, run_feedback_rounds, AdversarialConfig,
    AdversarialReport, CellReport, RoundReport,
};
pub use methods::{Method, MethodConfig};
pub use metrics::{evaluate, Evaluation};
pub use temporal::{replay_timeline, CampaignOutcome, StreamEvalConfig, StreamReport};

/// Commonly used evaluation types.
pub mod prelude {
    pub use crate::adversarial::{
        run_adversarial, AdversarialConfig, AdversarialReport, CellReport,
    };
    pub use crate::figures;
    pub use crate::methods::{Method, MethodConfig};
    pub use crate::metrics::{evaluate, Evaluation};
    pub use crate::report;
    pub use crate::temporal::{replay_timeline, StreamEvalConfig, StreamReport};
}
