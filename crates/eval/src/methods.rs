//! The method registry: every detector of Fig 8 behind one interface.

use ricd_baselines::{
    cn_detect, copycatch_detect, fraudar_detect, louvain_detect, lpa_detect, CnParams,
    CopyCatchParams, FraudarParams, LouvainParams, LpaParams,
};
use ricd_core::naive::{naive_detect, NaiveParams};
use ricd_core::params::{RicdParams, ScreeningMode};
use ricd_core::pipeline::RicdPipeline;
use ricd_core::result::DetectionResult;
use ricd_engine::WorkerPool;
use ricd_graph::BipartiteGraph;
use ricd_obs::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Every method in the paper's comparison (Fig 8 + Table VI).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Full RICD.
    Ricd,
    /// RICD without the screening module (Table VI).
    RicdUi,
    /// RICD with only the user behavior check (Table VI).
    RicdI,
    /// Label propagation + UI.
    Lpa,
    /// Common Neighbors + UI.
    Cn,
    /// Louvain + UI.
    Louvain,
    /// Degenerate COPYCATCH + UI.
    CopyCatch,
    /// FRAUDAR + UI.
    Fraudar,
    /// The naive Algorithm 1.
    Naive,
}

impl Method {
    /// The Fig 8a lineup (all baselines + RICD).
    pub fn fig8_lineup() -> [Method; 7] {
        [
            Method::Ricd,
            Method::Lpa,
            Method::Fraudar,
            Method::Cn,
            Method::Naive,
            Method::Louvain,
            Method::CopyCatch,
        ]
    }

    /// The Fig 8b lineup (COPYCATCH and FRAUDAR excluded from the elapsed
    /// time comparison "because Grape can't help accelerate" them).
    pub fn fig8b_lineup() -> [Method; 5] {
        [
            Method::Ricd,
            Method::Lpa,
            Method::Cn,
            Method::Naive,
            Method::Louvain,
        ]
    }

    /// Table VI's ablation lineup.
    pub fn table6_lineup() -> [Method; 3] {
        [Method::RicdUi, Method::RicdI, Method::Ricd]
    }

    /// Display name matching the paper's labels.
    pub fn name(self) -> &'static str {
        match self {
            Method::Ricd => "RICD",
            Method::RicdUi => "RICD-UI",
            Method::RicdI => "RICD-I",
            Method::Lpa => "LPA",
            Method::Cn => "CN",
            Method::Louvain => "Louvain",
            Method::CopyCatch => "COPYCATCH",
            Method::Fraudar => "FRAUDAR",
            Method::Naive => "Naive",
        }
    }
}

/// Shared configuration for a comparison run.
#[derive(Clone, Debug)]
pub struct MethodConfig {
    /// RICD parameters; the baselines inherit `k₁`, `k₂` and the screening
    /// thresholds through the +UI adapter, as in the paper ("ρ, m and n are
    /// consistent with the α, k₁ and k₂ in RICD", "cn_threshold … consistent
    /// with the k₁, k₂").
    pub ricd: RicdParams,
    /// Worker pool.
    pub pool: WorkerPool,
    /// COPYCATCH enumeration budget. The paper allows ~600 s at 20M-user
    /// scale; scaled down with the data.
    pub copycatch_budget: Duration,
    /// Naive algorithm's risk thresholds.
    pub naive: NaiveParams,
}

impl Default for MethodConfig {
    fn default() -> Self {
        Self {
            ricd: RicdParams::default(),
            pool: WorkerPool::default_for_host(),
            copycatch_budget: Duration::from_secs(5),
            naive: NaiveParams::default(),
        }
    }
}

impl MethodConfig {
    /// Runs `method` on `g`.
    pub fn run(&self, method: Method, g: &BipartiteGraph) -> DetectionResult {
        self.run_metered(method, g, &MetricsRegistry::new())
    }

    /// Runs `method` on `g`, recording into `metrics`.
    ///
    /// RICD variants record natively (the pipeline's own spans, counters,
    /// and pool health). Baselines carry only a legacy [`TimingReport`];
    /// their phase durations are bridged into the registry as
    /// `pipeline/<phase>` spans, so the Fig 8b elapsed-time comparison
    /// regenerates from one [`ricd_obs::MetricsSnapshot`] per method
    /// regardless of who produced the timing.
    ///
    /// [`TimingReport`]: ricd_engine::timing::TimingReport
    pub fn run_metered(
        &self,
        method: Method,
        g: &BipartiteGraph,
        metrics: &MetricsRegistry,
    ) -> DetectionResult {
        let ricd = |params: RicdParams| {
            RicdPipeline::new(params)
                .with_pool(self.pool.clone())
                .with_metrics(metrics.clone())
                .run(g)
        };
        match method {
            Method::Ricd => ricd(self.ricd),
            Method::RicdUi => ricd(RicdParams {
                screening: ScreeningMode::None,
                ..self.ricd
            }),
            Method::RicdI => ricd(RicdParams {
                screening: ScreeningMode::UserCheckOnly,
                ..self.ricd
            }),
            method => {
                let result = match method {
                    Method::Lpa => lpa_detect(g, &LpaParams::default(), &self.ricd, &self.pool),
                    Method::Cn => {
                        let params = CnParams {
                            cn_threshold: self.ricd.k1.min(self.ricd.k2) as u32,
                            ..CnParams::default()
                        };
                        cn_detect(g, &params, &self.ricd, &self.pool)
                    }
                    Method::Louvain => louvain_detect(g, &LouvainParams::default(), &self.ricd),
                    Method::CopyCatch => {
                        let params = CopyCatchParams {
                            m: self.ricd.k1,
                            n: self.ricd.k2,
                            time_budget: self.copycatch_budget,
                            ..CopyCatchParams::default()
                        };
                        copycatch_detect(g, &params, &self.ricd)
                    }
                    Method::Fraudar => fraudar_detect(g, &FraudarParams::default(), &self.ricd),
                    Method::Naive => {
                        let params = NaiveParams {
                            t_hot: self.ricd.t_hot,
                            ..self.naive
                        };
                        naive_detect(g, &params, &self.pool)
                    }
                    _ => unreachable!("RICD variants handled above"),
                };
                for (phase, elapsed) in &result.timings.phases {
                    metrics.record_span_elapsed(&format!("pipeline/{phase}"), *elapsed);
                }
                result
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::{GraphBuilder, ItemId, UserId};

    fn attack_graph() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 1000..2200u32 {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        for u in 0..12u32 {
            b.add_click(UserId(u), ItemId(0), 1);
            for v in 1..12u32 {
                b.add_click(UserId(u), ItemId(v), 14);
            }
        }
        b.build()
    }

    #[test]
    fn every_method_runs_and_most_find_workers() {
        let g = attack_graph();
        let cfg = MethodConfig {
            copycatch_budget: Duration::from_secs(2),
            ..MethodConfig::default()
        };
        for method in Method::fig8_lineup() {
            let r = cfg.run(method, &g);
            // All methods should at least not crash; the strong ones find
            // the 12 workers.
            match method {
                Method::Ricd | Method::Fraudar | Method::Cn | Method::Lpa => {
                    assert!(
                        r.suspicious_users().iter().filter(|u| u.0 < 12).count() >= 10,
                        "{} missed the workers",
                        method.name()
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn ablation_lineup_shrinks_output() {
        let g = attack_graph();
        let cfg = MethodConfig::default();
        let out: Vec<usize> = Method::table6_lineup()
            .iter()
            .map(|&m| cfg.run(m, &g).num_output())
            .collect();
        assert!(out[0] >= out[1], "RICD-UI ≥ RICD-I output size");
        assert!(out[1] >= out[2], "RICD-I ≥ RICD output size");
    }

    #[test]
    fn metered_runs_land_in_one_registry_for_every_method() {
        let g = attack_graph();
        let cfg = MethodConfig::default();
        // RICD records natively; each baseline's legacy TimingReport is
        // bridged. Either way, the Fig 8b inputs come from the snapshot.
        for method in [Method::Ricd, Method::Lpa, Method::Naive] {
            let registry = MetricsRegistry::new();
            let result = cfg.run_metered(method, &g, &registry);
            let snap = registry.snapshot();
            let total = snap.span_level_total_nanos("pipeline");
            assert!(total > 0, "{}: no pipeline/* spans recorded", method.name());
            let report_total = result.timings.total().as_nanos() as u64;
            let diff = total.abs_diff(report_total);
            assert!(
                diff <= report_total / 2 + 2_000_000,
                "{}: snapshot total {total}ns far from report total {report_total}ns",
                method.name()
            );
        }
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(Method::Ricd.name(), "RICD");
        assert_eq!(Method::CopyCatch.name(), "COPYCATCH");
        assert_eq!(Method::fig8_lineup().len(), 7);
        assert_eq!(Method::fig8b_lineup().len(), 5);
    }
}
