//! Precision / recall / F1 (Eq 5–6).
//!
//! The paper scores *nodes* (users and items pooled):
//!
//! ```text
//! precision = |detected ∩ known| / |output|
//! recall    = |detected ∩ known| / |known|
//! ```
//!
//! and notes that because the dataset contains more abnormal nodes than the
//! ~2,000 known ones, the measured precision underestimates the true
//! precision "but it is fair for all the algorithms". With planted ground
//! truth our `known` set is complete, so the bias disappears — precision
//! here is exact.

use ricd_core::result::DetectionResult;
use ricd_datagen::truth::GroundTruth;
use serde::{Deserialize, Serialize};

/// Precision / recall / F1 plus the underlying counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Eq 5.
    pub precision: f64,
    /// Eq 6.
    pub recall: f64,
    /// Harmonic mean of the two (0 when both are 0).
    pub f1: f64,
    /// `|detected ∩ known|`.
    pub true_positives: usize,
    /// Output nodes (users + items).
    pub num_output: usize,
    /// Known abnormal nodes (users + items).
    pub num_known: usize,
}

/// Scores a detection result against the ground truth.
pub fn evaluate(result: &DetectionResult, truth: &GroundTruth) -> Evaluation {
    let known_users = truth.abnormal_users();
    let known_items = truth.abnormal_items();
    let out_users = result.suspicious_users();
    let out_items = result.suspicious_items();

    let tp_users = out_users
        .iter()
        .filter(|u| known_users.binary_search(u).is_ok())
        .count();
    let tp_items = out_items
        .iter()
        .filter(|v| known_items.binary_search(v).is_ok())
        .count();

    let tp = tp_users + tp_items;
    let num_output = out_users.len() + out_items.len();
    let num_known = known_users.len() + known_items.len();

    let precision = if num_output == 0 {
        0.0
    } else {
        tp as f64 / num_output as f64
    };
    let recall = if num_known == 0 {
        0.0
    } else {
        tp as f64 / num_known as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };

    Evaluation {
        precision,
        recall,
        f1,
        true_positives: tp,
        num_output,
        num_known,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_core::result::SuspiciousGroup;
    use ricd_datagen::truth::InjectedGroup;
    use ricd_graph::{ItemId, UserId};

    fn truth() -> GroundTruth {
        GroundTruth {
            groups: vec![InjectedGroup {
                workers: vec![UserId(0), UserId(1), UserId(2), UserId(3)],
                targets: vec![ItemId(0), ItemId(1)],
                ridden_hot_items: vec![ItemId(9)],
            }],
        }
    }

    fn result(users: Vec<u32>, items: Vec<u32>) -> DetectionResult {
        DetectionResult {
            groups: vec![SuspiciousGroup {
                users: users.into_iter().map(UserId).collect(),
                items: items.into_iter().map(ItemId).collect(),
                ridden_hot_items: vec![],
            }],
            ..DetectionResult::default()
        }
    }

    #[test]
    fn perfect_detection() {
        let e = evaluate(&result(vec![0, 1, 2, 3], vec![0, 1]), &truth());
        assert_eq!(e.true_positives, 6);
        assert!((e.precision - 1.0).abs() < 1e-12);
        assert!((e.recall - 1.0).abs() < 1e-12);
        assert!((e.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_detection() {
        // 2 of 4 workers, 1 of 2 targets, plus 3 false positives.
        let e = evaluate(&result(vec![0, 1, 50, 51], vec![0, 60]), &truth());
        assert_eq!(e.true_positives, 3);
        assert_eq!(e.num_output, 6);
        assert_eq!(e.num_known, 6);
        assert!((e.precision - 0.5).abs() < 1e-12);
        assert!((e.recall - 0.5).abs() < 1e-12);
        assert!((e.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_output() {
        let e = evaluate(&DetectionResult::default(), &truth());
        assert_eq!(e.precision, 0.0);
        assert_eq!(e.recall, 0.0);
        assert_eq!(e.f1, 0.0);
    }

    #[test]
    fn empty_truth() {
        let e = evaluate(&result(vec![0], vec![]), &GroundTruth::default());
        assert_eq!(e.recall, 0.0);
        assert_eq!(e.precision, 0.0, "everything output is a false positive");
    }

    #[test]
    fn ridden_hot_items_are_not_rewarded() {
        // Flagging the ridden hot item as suspicious is a false positive.
        let e = evaluate(&result(vec![], vec![9]), &truth());
        assert_eq!(e.true_positives, 0);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let e = evaluate(&result(vec![0, 1, 2, 3, 50, 51], vec![]), &truth());
        // precision = 4/6, recall = 4/6.
        assert!((e.f1 - 2.0 / 3.0).abs() < 1e-12);
    }
}
