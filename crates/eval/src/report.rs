//! Rendering experiment reports as aligned text tables and JSON.

use crate::figures::{MethodOutcome, SensitivityReport, SweepPoint};
use serde::Serialize;

/// Renders rows as an aligned text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats Fig 8a-style method outcomes (quality).
pub fn format_quality(outcomes: &[MethodOutcome]) -> String {
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.name.clone(),
                format!("{:.3}", o.eval.precision),
                format!("{:.3}", o.eval.recall),
                format!("{:.3}", o.eval.f1),
                format!("{}", o.eval.true_positives),
                format!("{}", o.eval.num_output),
            ]
        })
        .collect();
    format_table(
        &["method", "precision", "recall", "F1", "TP", "output"],
        &rows,
    )
}

/// Formats Fig 8b-style method outcomes (elapsed time).
pub fn format_timing(outcomes: &[MethodOutcome]) -> String {
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.name.clone(),
                format!("{:.1}", o.detect_ms),
                format!("{:.1}", o.screen_ms),
                format!("{:.1}", o.total_ms),
            ]
        })
        .collect();
    format_table(&["method", "detect ms", "UI ms", "total ms"], &rows)
}

fn format_sweep(name: &str, points: &[SweepPoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                name.to_string(),
                format!("{}", p.value),
                format!("{:.3}", p.eval.precision),
                format!("{:.3}", p.eval.recall),
                format!("{:.3}", p.eval.f1),
            ]
        })
        .collect()
}

/// Formats the Fig 9 sensitivity report.
pub fn format_sensitivity(r: &SensitivityReport) -> String {
    let mut rows = Vec::new();
    rows.extend(format_sweep("k1", &r.k1));
    rows.extend(format_sweep("k2", &r.k2));
    rows.extend(format_sweep("alpha", &r.alpha));
    rows.extend(format_sweep("T_click", &r.t_click));
    rows.extend(format_sweep("T_hot", &r.t_hot));
    format_table(&["param", "value", "precision", "recall", "F1"], &rows)
}

/// Serializes any report to pretty JSON (for EXPERIMENTS.md artifacts).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("reports always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Evaluation;
    use crate::Method;

    #[test]
    fn table_alignment() {
        let s = format_table(
            &["a", "long_header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long_header"));
        assert!(lines[2].ends_with('2'));
    }

    #[test]
    fn quality_table_has_all_methods() {
        let outcomes = vec![MethodOutcome {
            method: Method::Ricd,
            name: "RICD".into(),
            eval: Evaluation {
                precision: 0.8,
                recall: 0.5,
                f1: 0.62,
                true_positives: 10,
                num_output: 12,
                num_known: 20,
            },
            detect_ms: 1.0,
            screen_ms: 0.5,
            total_ms: 1.5,
        }];
        let q = format_quality(&outcomes);
        assert!(q.contains("RICD"));
        assert!(q.contains("0.800"));
        let t = format_timing(&outcomes);
        assert!(t.contains("1.0"));
    }

    #[test]
    fn json_round_trips() {
        let e = Evaluation::default();
        let s = to_json(&e);
        let back: Evaluation = serde_json::from_str(&s).unwrap();
        assert_eq!(e, back);
    }
}
