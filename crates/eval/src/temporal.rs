//! Time-to-flag evaluation: replay a [`Timeline`] through a
//! [`WindowedDetector`] and measure *when* each campaign is caught, not
//! just whether.
//!
//! The related work motivates the metric (RecAD's harness scores defenses
//! by when they fire; adaptive attackers optimize to stay under the
//! detection boundary as long as possible): for every planted campaign the
//! replay reports
//!
//! * **batches-to-flag** — ingested batches from the campaign's first
//!   active batch until at least `flag_fraction` of its worker accounts
//!   are in the detector's flagged set (cumulatively: an account once
//!   flagged stays attributed even if its evidence later ages out of the
//!   window — the alarm fired);
//! * **ticks-to-flag** — the simulation-time analogue, from campaign
//!   start to the end of the flagging batch;
//! * **per-phase recall/precision** — the detector's quality snapshot at
//!   the end of the campaign's ramp, steady, and post phases.
//!
//! The replay also feeds the `stream.*` metrics: a
//! `stream.time_to_flag_batches` histogram plus the window gauges the
//! detector maintains, so the observability snapshot carries the latency
//! story.

use ricd_core::temporal::{WindowConfig, WindowedDetector};
use ricd_core::{RicdParams, RicdPipeline};
use ricd_datagen::timeline::{Tick, Timeline};
use ricd_graph::UserId;
use ricd_obs::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Buckets for the `stream.time_to_flag_batches` histogram.
pub const TIME_TO_FLAG_BUCKETS: [u64; 6] = [1, 2, 4, 8, 16, 32];

/// Replay configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StreamEvalConfig {
    /// Detector parameters.
    pub params: RicdParams,
    /// Window mode.
    pub window: WindowConfig,
    /// Fraction of a campaign's worker accounts that must be flagged
    /// (cumulatively) for the campaign to count as detected, in `(0, 1]`.
    pub flag_fraction: f64,
    /// Fixed worker-pool width for the detection pipeline. `None` uses the
    /// host default; the golden-metrics suite pins it so partition counts
    /// don't vary with the runner's core count.
    pub workers: Option<usize>,
}

impl StreamEvalConfig {
    /// Default evaluation: given params, infinite window, majority flag.
    pub fn new(params: RicdParams) -> Self {
        Self {
            params,
            window: WindowConfig::default(),
            flag_fraction: 0.5,
            workers: None,
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        self.params.validate()?;
        self.window.validate()?;
        if !(self.flag_fraction > 0.0 && self.flag_fraction <= 1.0) {
            return Err("flag_fraction must be in (0, 1]".into());
        }
        Ok(())
    }
}

/// Detector quality at the end of one campaign phase.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PhaseOutcome {
    /// Phase name: `ramp`, `steady`, or `post`.
    pub phase: String,
    /// Last batch seq whose interval overlaps the phase.
    pub at_batch: u64,
    /// Fraction of this campaign's workers flagged by then (cumulative).
    pub worker_recall: f64,
    /// Global node precision of the detector's output at that point
    /// (flagged nodes that are planted, over all flagged nodes; 1.0 when
    /// nothing is flagged).
    pub precision: f64,
}

/// Detection-latency outcome for one campaign.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// Index into the timeline's `truth.groups` / `campaigns`.
    pub campaign: usize,
    /// Campaign window.
    pub start: Tick,
    /// Exclusive end of campaign traffic.
    pub stop: Tick,
    /// Planted worker accounts.
    pub workers: usize,
    /// Workers ever flagged during the replay (cumulative).
    pub flagged_workers: usize,
    /// Seq of the batch whose result first crossed `flag_fraction`.
    pub first_flag_batch: Option<u64>,
    /// Batches from the campaign's first active batch to the flag,
    /// inclusive. `None` = never flagged.
    pub batches_to_flag: Option<u64>,
    /// Simulation ticks from campaign start to the end of the flagging
    /// batch.
    pub ticks_to_flag: Option<u64>,
    /// Quality snapshot at the end of each campaign phase.
    pub phases: Vec<PhaseOutcome>,
}

/// The full replay report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StreamReport {
    /// Batches replayed.
    pub batches: u64,
    /// Total records ingested.
    pub records: u64,
    /// Records evicted from the window over the whole replay.
    pub evicted: u64,
    /// Records dropped as late arrivals.
    pub late: u64,
    /// Peak live window size (records).
    pub peak_window_records: u64,
    /// Per-campaign detection latency.
    pub campaigns: Vec<CampaignOutcome>,
    /// Node precision of the final result against the full truth (Eq 5).
    pub final_precision: f64,
    /// Node recall of the final result against the full truth (Eq 6).
    pub final_recall: f64,
    /// F1 of the final result.
    pub final_f1: f64,
}

impl StreamReport {
    /// True if every campaign was flagged.
    pub fn all_flagged(&self) -> bool {
        self.campaigns.iter().all(|c| c.first_flag_batch.is_some())
    }
}

struct CampaignTracker {
    idx: usize,
    workers: Vec<UserId>,
    flagged: BTreeSet<UserId>,
    first_flag_batch: Option<u64>,
    ticks_to_flag: Option<u64>,
    /// First batch seq whose interval overlaps the campaign.
    first_active_batch: u64,
    phases: Vec<PhaseOutcome>,
}

/// Replays `timeline` through a [`WindowedDetector`] and reports
/// per-campaign time-to-flag plus final-quality numbers. Metrics (the
/// detector's `stream.*` set plus the time-to-flag histogram) land in
/// `registry`.
pub fn replay_timeline(
    timeline: &Timeline,
    cfg: &StreamEvalConfig,
    registry: &MetricsRegistry,
) -> Result<StreamReport, String> {
    cfg.validate()?;
    let interval = timeline.config.batch_interval.max(1);
    let mut pipeline = RicdPipeline::new(cfg.params).with_metrics(registry.clone());
    if let Some(n) = cfg.workers {
        pipeline = pipeline.with_pool(ricd_engine::WorkerPool::new(n));
    }
    let mut detector = WindowedDetector::new(pipeline, cfg.window)?;

    let mut trackers: Vec<CampaignTracker> = timeline
        .campaigns
        .iter()
        .map(|c| CampaignTracker {
            idx: c.group,
            workers: timeline.truth.groups[c.group].workers.clone(),
            flagged: BTreeSet::new(),
            first_flag_batch: None,
            ticks_to_flag: None,
            first_active_batch: c.start / interval,
            phases: Vec::new(),
        })
        .collect();

    let mut records = 0u64;
    let mut evicted = 0u64;
    let mut late = 0u64;
    let mut peak_window = 0u64;
    for batch in &timeline.batches {
        let wire = batch.wire();
        let stats = detector.ingest_batch(batch.seq, &wire);
        records += stats.records as u64;
        evicted += stats.evicted as u64;
        late += stats.late as u64;
        peak_window = peak_window.max(stats.window_records as u64);

        let result = detector.result();
        let flagged_users: BTreeSet<UserId> = result.suspicious_users().into_iter().collect();
        let precision = node_precision(result, &timeline.truth);
        for t in trackers.iter_mut() {
            for w in &t.workers {
                if flagged_users.contains(w) {
                    t.flagged.insert(*w);
                }
            }
            let frac = t.flagged.len() as f64 / t.workers.len().max(1) as f64;
            if t.first_flag_batch.is_none() && frac >= cfg.flag_fraction {
                t.first_flag_batch = Some(batch.seq);
                let camp = &timeline.campaigns[t.idx];
                t.ticks_to_flag = Some(batch.end.saturating_sub(camp.start));
                let batches_to_flag = batch.seq.saturating_sub(t.first_active_batch) + 1;
                registry
                    .histogram("stream.time_to_flag_batches", &TIME_TO_FLAG_BUCKETS)
                    .observe(batches_to_flag);
            }
            // Phase boundaries: snapshot at the last batch overlapping each
            // phase (i.e. when the batch's end first reaches the boundary).
            let camp = &timeline.campaigns[t.idx];
            let horizon = timeline.config.horizon;
            for (name, bound) in [
                ("ramp", camp.ramp_end),
                ("steady", camp.stop),
                ("post", horizon),
            ] {
                if batch.end >= bound
                    && batch.start < bound
                    && !t.phases.iter().any(|p| p.phase == name)
                {
                    t.phases.push(PhaseOutcome {
                        phase: name.to_string(),
                        at_batch: batch.seq,
                        worker_recall: frac,
                        precision,
                    });
                }
            }
        }
    }

    let final_result = detector.result().clone();
    let eval = crate::metrics::evaluate(&final_result, &timeline.truth);
    let campaigns = trackers
        .into_iter()
        .map(|t| {
            let camp = &timeline.campaigns[t.idx];
            CampaignOutcome {
                campaign: t.idx,
                start: camp.start,
                stop: camp.stop,
                workers: t.workers.len(),
                flagged_workers: t.flagged.len(),
                first_flag_batch: t.first_flag_batch,
                batches_to_flag: t
                    .first_flag_batch
                    .map(|b| b.saturating_sub(t.first_active_batch) + 1),
                ticks_to_flag: t.ticks_to_flag,
                phases: t.phases,
            }
        })
        .collect();

    Ok(StreamReport {
        batches: timeline.batches.len() as u64,
        records,
        evicted,
        late,
        peak_window_records: peak_window,
        campaigns,
        final_precision: eval.precision,
        final_recall: eval.recall,
        final_f1: eval.f1,
    })
}

/// Node precision of a result against the truth: planted flagged nodes
/// over all flagged nodes; `1.0` when nothing is flagged (no false
/// positives yet).
fn node_precision(result: &ricd_core::DetectionResult, truth: &ricd_datagen::GroundTruth) -> f64 {
    let users = result.suspicious_users();
    let items = result.suspicious_items();
    let total = users.len() + items.len();
    if total == 0 {
        return 1.0;
    }
    let tp = users.iter().filter(|&&u| truth.is_abnormal_user(u)).count()
        + items.iter().filter(|&&v| truth.is_abnormal_item(v)).count();
    tp as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_datagen::timeline::{build_timeline, ScenarioConfig};

    /// Detector parameters for the synthetic scenario worlds.
    ///
    /// The paper defaults are the right calibration here: deriving
    /// `T_hot` from the tiny world's Pareto head would mark the attack
    /// *targets* themselves as hot (each accumulates hundreds of clicks
    /// from workers plus attracted users), excluding them from the
    /// working graph, and the derived `T_click` can exceed the low end
    /// of the attack's per-edge click range.
    fn calibrated_params(_tl: &Timeline) -> RicdParams {
        RicdParams::default()
    }

    #[test]
    fn burst_scenario_flags_within_budget() {
        let tl = build_timeline(&ScenarioConfig::burst()).unwrap();
        let cfg = StreamEvalConfig::new(calibrated_params(&tl));
        let registry = MetricsRegistry::new();
        let report = replay_timeline(&tl, &cfg, &registry).unwrap();
        assert!(report.all_flagged(), "burst campaign flagged: {report:?}");
        let c = &report.campaigns[0];
        assert!(
            c.batches_to_flag.unwrap() <= 4,
            "burst must flag fast, took {:?} batches",
            c.batches_to_flag
        );
        assert_eq!(c.phases.len(), 3, "ramp/steady/post snapshots recorded");
        assert!(report.final_recall > 0.5, "{report:?}");
    }

    #[test]
    fn windowed_replay_evicts_but_still_flags_the_drip() {
        let tl = build_timeline(&ScenarioConfig::slow_drip()).unwrap();
        let mut cfg = StreamEvalConfig::new(calibrated_params(&tl));
        cfg.window = WindowConfig {
            window: Some(1_000),
            ..WindowConfig::default()
        };
        let registry = MetricsRegistry::new();
        let report = replay_timeline(&tl, &cfg, &registry).unwrap();
        assert!(report.evicted > 0, "window must actually evict: {report:?}");
        assert!(
            report.all_flagged(),
            "slow drip flagged under windowed mode: {report:?}"
        );
        assert!(
            report.peak_window_records < report.records,
            "window bounds live state"
        );
    }

    /// Pins the behavior [`calibrated_params`] documents — and that
    /// `ricd stream --params derived` now makes reachable from the CLI:
    /// on the tiny burst world the derived Pareto `T_hot` sits far below
    /// the attack targets' accumulated clicks, so the targets themselves
    /// are excused as hot and the campaign sails through undetected. The
    /// paper's derivations assume production-scale data; this is the
    /// caveat in miniature.
    #[test]
    fn derived_params_miss_the_burst_on_the_tiny_world() {
        use ricd_core::{params_for_mode, ParamsMode};
        use ricd_graph::GraphBuilder;

        let tl = build_timeline(&ScenarioConfig::burst()).unwrap();
        let mut b = GraphBuilder::new();
        for (u, v, c) in tl.all_untimed() {
            b.add_click(u, v, c);
        }
        let derived = params_for_mode(ParamsMode::Derived, &b.build());
        assert!(
            derived.t_hot < RicdParams::default().t_hot,
            "tiny-world Pareto head must sit below the paper's 1000: {derived:?}"
        );

        let cfg = StreamEvalConfig::new(derived);
        let registry = MetricsRegistry::new();
        let report = replay_timeline(&tl, &cfg, &registry).unwrap();
        assert!(
            !report.all_flagged(),
            "derived T_hot marks the targets hot and the burst evades: {report:?}"
        );
        assert_eq!(report.final_recall, 0.0, "{report:?}");

        // The paper operating point on the same replay catches it — the
        // two modes genuinely differ end to end.
        let report = replay_timeline(
            &tl,
            &StreamEvalConfig::new(params_for_mode(
                ParamsMode::Default,
                &GraphBuilder::new().build(),
            )),
            &MetricsRegistry::new(),
        )
        .unwrap();
        assert!(report.all_flagged(), "{report:?}");
    }

    #[test]
    fn invalid_flag_fraction_rejected() {
        let tl = build_timeline(&ScenarioConfig::burst()).unwrap();
        let mut cfg = StreamEvalConfig::new(RicdParams::default());
        cfg.flag_fraction = 0.0;
        let registry = MetricsRegistry::new();
        assert!(replay_timeline(&tl, &cfg, &registry).is_err());
    }
}
