//! Property tests of the Eq 5/6 metrics: bounds, symmetry identities, and
//! behavior under output perturbations.

use proptest::prelude::*;
use ricd_core::result::{DetectionResult, SuspiciousGroup};
use ricd_datagen::truth::{GroundTruth, InjectedGroup};
use ricd_eval::evaluate;
use ricd_graph::{ItemId, UserId};

fn truths() -> impl Strategy<Value = GroundTruth> {
    proptest::collection::vec(
        (
            proptest::collection::btree_set(0u32..50, 1..10),
            proptest::collection::btree_set(0u32..50, 1..10),
        ),
        0..4,
    )
    .prop_map(|groups| GroundTruth {
        groups: groups
            .into_iter()
            .map(|(users, items)| InjectedGroup {
                workers: users.into_iter().map(UserId).collect(),
                targets: items.into_iter().map(ItemId).collect(),
                ridden_hot_items: vec![],
            })
            .collect(),
    })
}

fn results() -> impl Strategy<Value = DetectionResult> {
    proptest::collection::vec(
        (
            proptest::collection::btree_set(0u32..50, 0..10),
            proptest::collection::btree_set(0u32..50, 0..10),
        ),
        0..4,
    )
    .prop_map(|groups| DetectionResult {
        groups: groups
            .into_iter()
            .map(|(users, items)| SuspiciousGroup {
                users: users.into_iter().map(UserId).collect(),
                items: items.into_iter().map(ItemId).collect(),
                ridden_hot_items: vec![],
            })
            .collect(),
        ..DetectionResult::default()
    })
}

proptest! {
    /// All metrics stay in [0, 1] and are never NaN.
    #[test]
    fn metrics_bounded(r in results(), t in truths()) {
        let e = evaluate(&r, &t);
        for x in [e.precision, e.recall, e.f1] {
            prop_assert!((0.0..=1.0).contains(&x) && !x.is_nan());
        }
        prop_assert!(e.true_positives <= e.num_output);
        prop_assert!(e.true_positives <= e.num_known);
    }

    /// Outputting the truth exactly scores perfect.
    #[test]
    fn exact_truth_is_perfect(t in truths()) {
        prop_assume!(t.num_abnormal() > 0);
        let r = DetectionResult {
            groups: t.groups.iter().map(|g| SuspiciousGroup {
                users: g.workers.clone(),
                items: g.targets.clone(),
                ridden_hot_items: vec![],
            }).collect(),
            ..DetectionResult::default()
        };
        let e = evaluate(&r, &t);
        prop_assert!((e.precision - 1.0).abs() < 1e-12);
        prop_assert!((e.recall - 1.0).abs() < 1e-12);
        prop_assert!((e.f1 - 1.0).abs() < 1e-12);
    }

    /// Adding pure false positives can only lower precision and never
    /// changes recall.
    #[test]
    fn false_positives_hurt_precision_only(r in results(), t in truths()) {
        let base = evaluate(&r, &t);
        let mut padded = r.clone();
        // Node ids ≥ 1000 are guaranteed outside every truth set.
        padded.groups.push(SuspiciousGroup {
            users: (1000..1010).map(UserId).collect(),
            items: (1000..1005).map(ItemId).collect(),
            ridden_hot_items: vec![],
        });
        let e = evaluate(&padded, &t);
        prop_assert!(e.precision <= base.precision + 1e-12);
        prop_assert!((e.recall - base.recall).abs() < 1e-12);
        prop_assert_eq!(e.true_positives, base.true_positives);
    }

    /// The F1 is always between min and max of precision/recall.
    #[test]
    fn f1_between_components(r in results(), t in truths()) {
        let e = evaluate(&r, &t);
        let lo = e.precision.min(e.recall);
        let hi = e.precision.max(e.recall);
        prop_assert!(e.f1 >= lo - 1e-12 || e.f1 == 0.0);
        prop_assert!(e.f1 <= hi + 1e-12);
    }
}
