//! Constructing [`BipartiteGraph`]s from click records.

use crate::graph::BipartiteGraph;
use crate::ids::{ItemId, UserId};

/// Accumulates `(user, item, clicks)` records and builds a CSR
/// [`BipartiteGraph`].
///
/// Duplicate `(user, item)` records are merged by **summing** their click
/// counts, matching how the paper's click table aggregates raw click events
/// into one row per user–item pair.
///
/// The builder automatically grows the vertex ranges to cover the largest id
/// seen; `reserve_users` / `reserve_items` can declare isolated trailing
/// vertices (users or items with no clicks), which the synthetic data
/// generator needs so that scale numbers (Table I) include inactive nodes.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    records: Vec<(UserId, ItemId, u32)>,
    min_users: usize,
    min_items: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `edges` records.
    pub fn with_capacity(edges: usize) -> Self {
        Self {
            records: Vec::with_capacity(edges),
            min_users: 0,
            min_items: 0,
        }
    }

    /// Ensures the built graph has at least `n` user vertices.
    pub fn reserve_users(&mut self, n: usize) -> &mut Self {
        self.min_users = self.min_users.max(n);
        self
    }

    /// Ensures the built graph has at least `n` item vertices.
    pub fn reserve_items(&mut self, n: usize) -> &mut Self {
        self.min_items = self.min_items.max(n);
        self
    }

    /// Records that `u` clicked `v` `clicks` times.
    ///
    /// Zero-click records are ignored (they would not appear in a click
    /// table). Repeated calls for the same pair accumulate.
    pub fn add_click(&mut self, u: UserId, v: ItemId, clicks: u32) -> &mut Self {
        if clicks > 0 {
            self.records.push((u, v, clicks));
        }
        self
    }

    /// Bulk-adds records.
    pub fn extend<I: IntoIterator<Item = (UserId, ItemId, u32)>>(&mut self, iter: I) -> &mut Self {
        for (u, v, c) in iter {
            self.add_click(u, v, c);
        }
        self
    }

    /// Number of raw (pre-merge) records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records were added.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Builds the CSR graph, merging duplicate pairs by summing clicks.
    pub fn build(mut self) -> BipartiteGraph {
        // Sort by (user, item) and merge duplicates in place.
        self.records.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let mut merged: Vec<(UserId, ItemId, u32)> = Vec::with_capacity(self.records.len());
        for (u, v, c) in self.records {
            match merged.last_mut() {
                Some((lu, lv, lc)) if *lu == u && *lv == v => *lc = lc.saturating_add(c),
                _ => merged.push((u, v, c)),
            }
        }

        let num_users = merged
            .iter()
            .map(|&(u, _, _)| u.index() + 1)
            .max()
            .unwrap_or(0)
            .max(self.min_users);
        let num_items = merged
            .iter()
            .map(|&(_, v, _)| v.index() + 1)
            .max()
            .unwrap_or(0)
            .max(self.min_items);

        // User side CSR (records are already sorted by user, then item).
        let mut user_offsets = vec![0u64; num_users + 1];
        for &(u, _, _) in &merged {
            user_offsets[u.index() + 1] += 1;
        }
        for i in 1..user_offsets.len() {
            user_offsets[i] += user_offsets[i - 1];
        }
        let user_adj: Vec<ItemId> = merged.iter().map(|&(_, v, _)| v).collect();
        let user_clicks: Vec<u32> = merged.iter().map(|&(_, _, c)| c).collect();

        // Item side CSR via counting sort on item id.
        let mut item_offsets = vec![0u64; num_items + 1];
        for &(_, v, _) in &merged {
            item_offsets[v.index() + 1] += 1;
        }
        for i in 1..item_offsets.len() {
            item_offsets[i] += item_offsets[i - 1];
        }
        let mut cursor: Vec<u64> = item_offsets[..num_items].to_vec();
        let mut item_adj = vec![UserId(0); merged.len()];
        let mut item_clicks = vec![0u32; merged.len()];
        // Iterating merged in (user, item) order fills each item's slice in
        // increasing user order, so item adjacency comes out sorted.
        for &(u, v, c) in &merged {
            let pos = cursor[v.index()] as usize;
            item_adj[pos] = u;
            item_clicks[pos] = c;
            cursor[v.index()] += 1;
        }

        let total_clicks = merged.iter().map(|&(_, _, c)| c as u64).sum();

        BipartiteGraph {
            user_offsets,
            user_adj,
            user_clicks,
            item_offsets,
            item_adj,
            item_clicks,
            total_clicks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_users(), 0);
        assert_eq!(g.num_items(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.total_clicks(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(0), 2);
        b.add_click(UserId(0), ItemId(0), 3);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.clicks(UserId(0), ItemId(0)), Some(5));
        g.validate().unwrap();
    }

    #[test]
    fn zero_clicks_ignored() {
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(0), 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn reserved_vertices_are_isolated() {
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(0), 1);
        b.reserve_users(10).reserve_items(5);
        let g = b.build();
        assert_eq!(g.num_users(), 10);
        assert_eq!(g.num_items(), 5);
        assert_eq!(g.user_degree(UserId(9)), 0);
        assert_eq!(g.item_degree(ItemId(4)), 0);
        g.validate().unwrap();
    }

    #[test]
    fn unsorted_input_yields_sorted_adjacency() {
        let mut b = GraphBuilder::new();
        b.add_click(UserId(1), ItemId(3), 1);
        b.add_click(UserId(0), ItemId(2), 1);
        b.add_click(UserId(0), ItemId(1), 1);
        b.add_click(UserId(1), ItemId(0), 1);
        let g = b.build();
        assert_eq!(g.user_adjacency(UserId(0)), &[ItemId(1), ItemId(2)]);
        assert_eq!(g.user_adjacency(UserId(1)), &[ItemId(0), ItemId(3)]);
        assert_eq!(g.item_adjacency(ItemId(0)), &[UserId(1)]);
        g.validate().unwrap();
    }

    #[test]
    fn saturating_merge_does_not_overflow() {
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(0), u32::MAX);
        b.add_click(UserId(0), ItemId(0), 10);
        let g = b.build();
        assert_eq!(g.clicks(UserId(0), ItemId(0)), Some(u32::MAX));
    }

    #[test]
    fn extend_matches_individual_adds() {
        let mut a = GraphBuilder::new();
        a.extend([(UserId(0), ItemId(0), 1), (UserId(1), ItemId(1), 2)]);
        let ga = a.build();
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(0), 1);
        b.add_click(UserId(1), ItemId(1), 2);
        let gb = b.build();
        assert_eq!(ga.num_edges(), gb.num_edges());
        assert_eq!(ga.total_clicks(), gb.total_clicks());
    }
}
