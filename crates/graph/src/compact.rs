//! The compact shard-local CSR: delta-encoded adjacency + alive bitmaps.
//!
//! The paper prunes a 20M-user / 90M-edge graph; at that scale the dense
//! [`BipartiteGraph`] + [`GraphView`](crate::GraphView) pair is
//! memory-bound: 4-byte neighbor ids in both directions, 4-byte click
//! weights the pruning rules never read, and one *byte* of tombstone per
//! vertex. Shard-local pruning (`ricd-core::shard_run`) needs none of
//! that — it only asks for degrees, alive-filtered sorted adjacency
//! iteration, and removals. This module provides a purpose-built
//! representation for exactly those queries:
//!
//! * [`DeltaAdjacency`] — sorted neighbor lists stored as LEB128 varints
//!   of the *gaps* between consecutive ids. Local subgraphs remap ids
//!   densely, so gaps are small and most neighbors cost one byte instead
//!   of four. Construction rejects unsorted or duplicated input: the
//!   strictly-increasing invariant is what makes delta coding and sorted
//!   intersection correct, so a violation is an error, not a latent bug.
//! * [`AliveBitmap`] — one bit per vertex (64 packed per word) replacing
//!   the view's byte-per-vertex tombstone array, with word-skipping alive
//!   iteration.
//! * [`CompactBigraph`] / [`CompactSubgraph`] / [`CompactView`] — the
//!   compact analogues of [`BipartiteGraph`],
//!   [`InducedSubgraph`](crate::InducedSubgraph) and
//!   [`GraphView`](crate::GraphView), implementing the same
//!   [`NeighborView`] contract so the two-hop counters and the shard
//!   fixpoint run unchanged on either representation.
//!
//! `tests/proptest_csr.rs` holds the differential proof: random worlds
//! and removal sequences must produce identical alive sets, degrees and
//! adjacency iteration order on both representations.

use crate::graph::BipartiteGraph;
use crate::ids::{ItemId, UserId};
use crate::view::NeighborView;

/// One alive bit per vertex, 64 packed per word.
///
/// Replaces the `Vec<bool>` tombstone array of
/// [`GraphView`](crate::GraphView): 8× smaller, and alive iteration skips
/// fully-dead words instead of probing every vertex.
#[derive(Clone, Debug)]
pub struct AliveBitmap {
    words: Vec<u64>,
    len: usize,
    alive: usize,
}

impl AliveBitmap {
    /// A bitmap of `len` vertices, all alive.
    pub fn all_alive(len: usize) -> Self {
        let full_words = len / 64;
        let tail = len % 64;
        let mut words = vec![u64::MAX; full_words];
        if tail > 0 {
            words.push((1u64 << tail) - 1);
        }
        Self {
            words,
            len,
            alive: len,
        }
    }

    /// Number of vertices covered (alive or dead).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of alive vertices.
    #[inline]
    pub fn alive(&self) -> usize {
        self.alive
    }

    /// True if vertex `i` is alive.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Marks vertex `i` dead. Returns true if it was alive (idempotent).
    #[inline]
    pub fn clear(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        let w = &mut self.words[i / 64];
        if *w & mask == 0 {
            return false;
        }
        *w &= !mask;
        self.alive -= 1;
        true
    }

    /// Marks vertex `i` alive. Returns true if it was dead (idempotent).
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        let w = &mut self.words[i / 64];
        if *w & mask != 0 {
            return false;
        }
        *w |= mask;
        self.alive += 1;
        true
    }

    /// Ascending iterator over alive vertex indices, skipping dead words.
    pub fn iter_alive(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .flat_map(|(wi, &w)| WordBits {
                word: w,
                base: wi * 64,
            })
    }

    /// Heap bytes held by the bitmap.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

/// Iterator over the set bits of one word.
struct WordBits {
    word: u64,
    base: usize,
}

impl Iterator for WordBits {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + bit)
    }
}

/// Sorted adjacency lists stored as varint-encoded gaps.
///
/// Per vertex: a byte range into `data` plus its static degree. The first
/// neighbor id is encoded as-is; each subsequent neighbor as the gap to
/// its predecessor (`≥ 1` because lists are strictly increasing — a gap of
/// zero would mean a duplicate, which construction rejects).
#[derive(Clone, Debug)]
pub struct DeltaAdjacency {
    /// Byte offset of each vertex's encoded list; `len = vertices + 1`.
    offsets: Vec<u32>,
    /// Static (construction-time) degree of each vertex.
    degrees: Vec<u32>,
    /// LEB128 varint stream of first-id + gaps.
    data: Vec<u8>,
}

fn push_varint(data: &mut Vec<u8>, mut x: u32) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            data.push(byte);
            break;
        }
        data.push(byte | 0x80);
    }
}

#[inline]
fn read_varint(data: &[u8], pos: &mut usize) -> u32 {
    let mut x = 0u32;
    let mut shift = 0;
    loop {
        let byte = data[*pos];
        *pos += 1;
        x |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

/// Streaming builder for a [`DeltaAdjacency`]: one `push_list` call per
/// vertex, in vertex order.
pub struct DeltaEncoder {
    offsets: Vec<u32>,
    degrees: Vec<u32>,
    data: Vec<u8>,
    other_side: usize,
}

impl DeltaEncoder {
    /// An encoder whose neighbor ids must lie in `0..other_side`.
    pub fn new(other_side: usize) -> Self {
        Self {
            offsets: vec![0u32],
            degrees: Vec::new(),
            data: Vec::new(),
            other_side,
        }
    }

    /// Appends the next vertex's neighbor list. The list must be strictly
    /// increasing with ids below `other_side`; violations are rejected —
    /// the sorted duplicate-free invariant is load-bearing for delta
    /// coding and sorted intersection.
    pub fn push_list(&mut self, list: impl IntoIterator<Item = u32>) -> Result<(), String> {
        let vertex = self.degrees.len();
        let mut prev: Option<u32> = None;
        let mut degree = 0u32;
        for id in list {
            if id as usize >= self.other_side {
                return Err(format!(
                    "vertex {vertex}: neighbor id {id} out of range (< {})",
                    self.other_side
                ));
            }
            match prev {
                None => push_varint(&mut self.data, id),
                Some(p) if id > p => push_varint(&mut self.data, id - p),
                Some(p) => {
                    return Err(format!(
                        "vertex {vertex}: adjacency not strictly increasing ({p} then {id})"
                    ))
                }
            }
            prev = Some(id);
            degree += 1;
        }
        self.degrees.push(degree);
        let end = u32::try_from(self.data.len())
            .map_err(|_| "adjacency stream exceeds u32 byte offsets".to_string())?;
        self.offsets.push(end);
        Ok(())
    }

    /// Finalizes the encoded adjacency.
    pub fn finish(mut self) -> DeltaAdjacency {
        self.data.shrink_to_fit();
        DeltaAdjacency {
            offsets: self.offsets,
            degrees: self.degrees,
            data: self.data,
        }
    }
}

impl DeltaAdjacency {
    /// Encodes one adjacency list per slice, in vertex order. See
    /// [`DeltaEncoder::push_list`] for the invariants enforced.
    pub fn from_lists<'a, I>(lists: I, other_side: usize) -> Result<Self, String>
    where
        I: IntoIterator<Item = &'a [u32]>,
    {
        let mut enc = DeltaEncoder::new(other_side);
        for list in lists {
            enc.push_list(list.iter().copied())?;
        }
        Ok(enc.finish())
    }

    /// Number of vertices on this side.
    #[inline]
    pub fn vertices(&self) -> usize {
        self.degrees.len()
    }

    /// Static degree of vertex `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> u32 {
        self.degrees[i]
    }

    /// Invokes `f` with each neighbor id of vertex `i`, in ascending order.
    #[inline]
    pub fn for_each(&self, i: usize, mut f: impl FnMut(u32)) {
        self.for_each_while(i, |id| {
            f(id);
            true
        });
    }

    /// Like [`for_each`](Self::for_each) but stops decoding as soon as `f`
    /// returns `false`.
    #[inline]
    pub fn for_each_while(&self, i: usize, mut f: impl FnMut(u32) -> bool) {
        let mut pos = self.offsets[i] as usize;
        let deg = self.degrees[i];
        let mut id = 0u32;
        for k in 0..deg {
            let delta = read_varint(&self.data, &mut pos);
            id = if k == 0 { delta } else { id + delta };
            if !f(id) {
                return;
            }
        }
    }

    /// Decodes vertex `i`'s neighbor list into `out` (cleared first).
    pub fn decode_into(&self, i: usize, out: &mut Vec<u32>) {
        out.clear();
        self.for_each(i, |id| out.push(id));
    }

    /// Heap bytes held (offsets + degrees + encoded stream).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * 4 + self.degrees.capacity() * 4 + self.data.capacity()
    }
}

/// A bipartite graph in compact CSR form: both directions delta-encoded,
/// no click weights (the pruning rules never read them).
#[derive(Clone, Debug)]
pub struct CompactBigraph {
    user_adj: DeltaAdjacency,
    item_adj: DeltaAdjacency,
}

impl CompactBigraph {
    /// Builds from explicit per-vertex sorted lists.
    pub fn from_lists(user_lists: &[Vec<u32>], item_lists: &[Vec<u32>]) -> Result<Self, String> {
        let user_adj =
            DeltaAdjacency::from_lists(user_lists.iter().map(|l| l.as_slice()), item_lists.len())?;
        let item_adj =
            DeltaAdjacency::from_lists(item_lists.iter().map(|l| l.as_slice()), user_lists.len())?;
        Ok(Self { user_adj, item_adj })
    }

    /// Re-encodes a dense [`BipartiteGraph`] compactly (weights dropped).
    pub fn from_graph(g: &BipartiteGraph) -> Self {
        let mut users = DeltaEncoder::new(g.num_items());
        for u in g.users() {
            users
                .push_list(g.user_adjacency(u).iter().map(|v| v.0))
                .expect("CSR adjacency is sorted by construction");
        }
        let mut items = DeltaEncoder::new(g.num_users());
        for v in g.items() {
            items
                .push_list(g.item_adjacency(v).iter().map(|u| u.0))
                .expect("CSR adjacency is sorted by construction");
        }
        Self {
            user_adj: users.finish(),
            item_adj: items.finish(),
        }
    }

    /// Number of user vertices.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.user_adj.vertices()
    }

    /// Number of item vertices.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.item_adj.vertices()
    }

    /// Static degree of user `u`.
    #[inline]
    pub fn user_degree(&self, u: UserId) -> u32 {
        self.user_adj.degree(u.index())
    }

    /// Static degree of item `v`.
    #[inline]
    pub fn item_degree(&self, v: ItemId) -> u32 {
        self.item_adj.degree(v.index())
    }

    /// Ascending iteration over user `u`'s item neighbors.
    #[inline]
    pub fn for_each_user_neighbor(&self, u: UserId, mut f: impl FnMut(ItemId)) {
        self.user_adj.for_each(u.index(), |id| f(ItemId(id)));
    }

    /// Ascending iteration over item `v`'s user neighbors.
    #[inline]
    pub fn for_each_item_neighbor(&self, v: ItemId, mut f: impl FnMut(UserId)) {
        self.item_adj.for_each(v.index(), |id| f(UserId(id)));
    }

    /// Heap bytes held by both directions.
    pub fn heap_bytes(&self) -> usize {
        self.user_adj.heap_bytes() + self.item_adj.heap_bytes()
    }
}

/// A compact induced subgraph with dense local ids plus the mapping back
/// to parent ids — the shard-local analogue of
/// [`InducedSubgraph`](crate::InducedSubgraph), built without click
/// weights and without an intermediate dense CSR.
#[derive(Clone, Debug)]
pub struct CompactSubgraph {
    /// The extracted compact graph with dense local ids.
    pub graph: CompactBigraph,
    /// `local user id → parent user id` (sorted).
    pub user_map: Vec<UserId>,
    /// `local item id → parent item id` (sorted).
    pub item_map: Vec<ItemId>,
}

impl CompactSubgraph {
    /// Extracts the subgraph induced by the given parent-id vertex sets.
    /// Duplicate ids in the inputs are tolerated. Local id order agrees
    /// with parent id order (both maps are sorted), so adjacency stays
    /// sorted without re-sorting.
    pub fn extract(
        parent: &BipartiteGraph,
        users: impl IntoIterator<Item = UserId>,
        items: impl IntoIterator<Item = ItemId>,
    ) -> Self {
        let mut user_map: Vec<UserId> = users.into_iter().collect();
        user_map.sort_unstable();
        user_map.dedup();
        let mut item_map: Vec<ItemId> = items.into_iter().collect();
        item_map.sort_unstable();
        item_map.dedup();

        let mut item_local = vec![u32::MAX; parent.num_items()];
        for (local, v) in item_map.iter().enumerate() {
            item_local[v.index()] = local as u32;
        }

        // User side: parent adjacency is sorted by parent item id, and the
        // sorted item_map makes local ids order-preserving.
        let mut user_lists: Vec<Vec<u32>> = Vec::with_capacity(user_map.len());
        let mut item_degrees = vec![0u32; item_map.len()];
        for &u in &user_map {
            let mut list = Vec::new();
            for &v in parent.user_adjacency(u) {
                let lv = item_local[v.index()];
                if lv != u32::MAX {
                    list.push(lv);
                    item_degrees[lv as usize] += 1;
                }
            }
            user_lists.push(list);
        }

        // Item side by counting sort: walking users in ascending local id
        // fills each item's list in ascending user order.
        let mut item_lists: Vec<Vec<u32>> = item_degrees
            .iter()
            .map(|&d| Vec::with_capacity(d as usize))
            .collect();
        for (lu, list) in user_lists.iter().enumerate() {
            for &lv in list {
                item_lists[lv as usize].push(lu as u32);
            }
        }

        let graph = CompactBigraph::from_lists(&user_lists, &item_lists)
            .expect("locally remapped adjacency is sorted by construction");
        Self {
            graph,
            user_map,
            item_map,
        }
    }

    /// Maps a local user id back to the parent id.
    #[inline]
    pub fn parent_user(&self, local: UserId) -> UserId {
        self.user_map[local.index()]
    }

    /// Maps a local item id back to the parent id.
    #[inline]
    pub fn parent_item(&self, local: ItemId) -> ItemId {
        self.item_map[local.index()]
    }
}

/// A deletion-tolerant view over a [`CompactBigraph`]: alive bitmaps
/// instead of byte tombstones, live degrees maintained incrementally —
/// the compact analogue of [`GraphView`](crate::GraphView).
#[derive(Clone, Debug)]
pub struct CompactView<'g> {
    graph: &'g CompactBigraph,
    user_alive: AliveBitmap,
    item_alive: AliveBitmap,
    user_live_degree: Vec<u32>,
    item_live_degree: Vec<u32>,
}

impl<'g> CompactView<'g> {
    /// A view with every vertex alive.
    pub fn full(graph: &'g CompactBigraph) -> Self {
        Self {
            user_alive: AliveBitmap::all_alive(graph.num_users()),
            item_alive: AliveBitmap::all_alive(graph.num_items()),
            user_live_degree: (0..graph.num_users())
                .map(|i| graph.user_adj.degree(i))
                .collect(),
            item_live_degree: (0..graph.num_items())
                .map(|i| graph.item_adj.degree(i))
                .collect(),
            graph,
        }
    }

    /// The underlying compact graph.
    #[inline]
    pub fn graph(&self) -> &'g CompactBigraph {
        self.graph
    }

    /// Number of alive users.
    #[inline]
    pub fn alive_users(&self) -> usize {
        self.user_alive.alive()
    }

    /// Number of alive items.
    #[inline]
    pub fn alive_items(&self) -> usize {
        self.item_alive.alive()
    }

    /// Removes user `u` and its incident edges. Idempotent.
    pub fn remove_user(&mut self, u: UserId) {
        if !self.user_alive.clear(u.index()) {
            return;
        }
        self.user_live_degree[u.index()] = 0;
        let item_alive = &self.item_alive;
        let item_live_degree = &mut self.item_live_degree;
        self.graph.user_adj.for_each(u.index(), |v| {
            if item_alive.get(v as usize) {
                item_live_degree[v as usize] -= 1;
            }
        });
    }

    /// Removes item `v` and its incident edges. Idempotent.
    pub fn remove_item(&mut self, v: ItemId) {
        if !self.item_alive.clear(v.index()) {
            return;
        }
        self.item_live_degree[v.index()] = 0;
        let user_alive = &self.user_alive;
        let user_live_degree = &mut self.user_live_degree;
        self.graph.item_adj.for_each(v.index(), |u| {
            if user_alive.get(u as usize) {
                user_live_degree[u as usize] -= 1;
            }
        });
    }

    /// Ascending iterator over alive users.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.user_alive.iter_alive().map(|i| UserId(i as u32))
    }

    /// Ascending iterator over alive items.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.item_alive.iter_alive().map(|i| ItemId(i as u32))
    }

    /// Collects the alive vertex sets as sorted vectors.
    pub fn alive_sets(&self) -> (Vec<UserId>, Vec<ItemId>) {
        (self.users().collect(), self.items().collect())
    }

    /// Debug check: live degrees match a fresh recount against the alive
    /// bitmaps. Costs a full pass; intended for tests.
    pub fn check_consistency(&self) -> bool {
        for i in 0..self.graph.num_users() {
            let mut deg = 0;
            if self.user_alive.get(i) {
                self.graph.user_adj.for_each(i, |v| {
                    if self.item_alive.get(v as usize) {
                        deg += 1;
                    }
                });
            }
            if self.user_live_degree[i] != deg {
                return false;
            }
        }
        for i in 0..self.graph.num_items() {
            let mut deg = 0;
            if self.item_alive.get(i) {
                self.graph.item_adj.for_each(i, |u| {
                    if self.user_alive.get(u as usize) {
                        deg += 1;
                    }
                });
            }
            if self.item_live_degree[i] != deg {
                return false;
            }
        }
        true
    }
}

impl NeighborView for CompactView<'_> {
    #[inline]
    fn num_users(&self) -> usize {
        self.graph.num_users()
    }
    #[inline]
    fn num_items(&self) -> usize {
        self.graph.num_items()
    }
    #[inline]
    fn user_alive(&self, u: UserId) -> bool {
        self.user_alive.get(u.index())
    }
    #[inline]
    fn item_alive(&self, v: ItemId) -> bool {
        self.item_alive.get(v.index())
    }
    #[inline]
    fn user_degree(&self, u: UserId) -> usize {
        self.user_live_degree[u.index()] as usize
    }
    #[inline]
    fn item_degree(&self, v: ItemId) -> usize {
        self.item_live_degree[v.index()] as usize
    }
    #[inline]
    fn for_each_user_neighbor_while(&self, u: UserId, mut f: impl FnMut(ItemId) -> bool) {
        let item_alive = &self.item_alive;
        self.graph.user_adj.for_each_while(u.index(), |v| {
            if item_alive.get(v as usize) {
                f(ItemId(v))
            } else {
                true
            }
        });
    }
    #[inline]
    fn for_each_item_neighbor_while(&self, v: ItemId, mut f: impl FnMut(UserId) -> bool) {
        let user_alive = &self.user_alive;
        self.graph.item_adj.for_each_while(v.index(), |u| {
            if user_alive.get(u as usize) {
                f(UserId(u))
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn grid(users: u32, items: u32) -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..users {
            for v in 0..items {
                b.add_click(UserId(u), ItemId(v), 1);
            }
        }
        b.build()
    }

    #[test]
    fn bitmap_word_boundaries() {
        for n in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            let mut bm = AliveBitmap::all_alive(n);
            assert_eq!(bm.alive(), n, "n={n}");
            assert_eq!(bm.iter_alive().count(), n, "n={n}");
            for i in 0..n {
                assert!(bm.get(i));
            }
            if n > 0 {
                assert!(bm.clear(n - 1));
                assert!(!bm.clear(n - 1), "clear is idempotent");
                assert!(!bm.get(n - 1));
                assert_eq!(bm.alive(), n - 1);
                assert_eq!(bm.iter_alive().count(), n - 1);
                assert!(bm.set(n - 1));
                assert!(!bm.set(n - 1), "set is idempotent");
                assert_eq!(bm.alive(), n);
            }
        }
    }

    #[test]
    fn bitmap_iter_skips_dead_words() {
        let mut bm = AliveBitmap::all_alive(200);
        for i in 0..200 {
            if !(64..128).contains(&i) {
                bm.clear(i);
            }
        }
        let alive: Vec<usize> = bm.iter_alive().collect();
        assert_eq!(alive, (64..128).collect::<Vec<_>>());
    }

    #[test]
    fn varint_round_trip() {
        let mut data = Vec::new();
        let values = [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX];
        for &v in &values {
            push_varint(&mut data, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&data, &mut pos), v);
        }
        assert_eq!(pos, data.len());
    }

    #[test]
    fn delta_adjacency_round_trips() {
        let lists: Vec<Vec<u32>> = vec![vec![0, 1, 5, 100], vec![], vec![7], vec![2, 3, 4]];
        let adj = DeltaAdjacency::from_lists(lists.iter().map(|l| l.as_slice()), 101).unwrap();
        assert_eq!(adj.vertices(), 4);
        let mut out = Vec::new();
        for (i, want) in lists.iter().enumerate() {
            assert_eq!(adj.degree(i) as usize, want.len());
            adj.decode_into(i, &mut out);
            assert_eq!(&out, want, "vertex {i}");
        }
    }

    #[test]
    fn construction_rejects_sorted_invariant_violations() {
        // Duplicates.
        let dup: Vec<Vec<u32>> = vec![vec![3, 3]];
        assert!(DeltaAdjacency::from_lists(dup.iter().map(|l| l.as_slice()), 10).is_err());
        // Out of order.
        let unsorted: Vec<Vec<u32>> = vec![vec![5, 2]];
        assert!(DeltaAdjacency::from_lists(unsorted.iter().map(|l| l.as_slice()), 10).is_err());
        // Out of range.
        let oor: Vec<Vec<u32>> = vec![vec![10]];
        assert!(DeltaAdjacency::from_lists(oor.iter().map(|l| l.as_slice()), 10).is_err());
    }

    #[test]
    fn compact_from_graph_matches_dense() {
        let g = grid(3, 4);
        let c = CompactBigraph::from_graph(&g);
        assert_eq!(c.num_users(), 3);
        assert_eq!(c.num_items(), 4);
        for u in g.users() {
            let mut got = Vec::new();
            c.for_each_user_neighbor(u, |v| got.push(v));
            assert_eq!(got, g.user_adjacency(u).to_vec());
        }
        for v in g.items() {
            let mut got = Vec::new();
            c.for_each_item_neighbor(v, |u| got.push(u));
            assert_eq!(got, g.item_adjacency(v).to_vec());
        }
        assert!(
            c.heap_bytes() < g.num_edges() * 16,
            "compact form must undercut the dense 2x(id+weight) layout"
        );
    }

    #[test]
    fn compact_subgraph_matches_induced_subgraph() {
        let mut b = GraphBuilder::new();
        for (u, v) in [(0, 0), (0, 5), (4, 0), (4, 9), (7, 9), (7, 3)] {
            b.add_click(UserId(u), ItemId(v), 2);
        }
        let g = b.build();
        let users = [UserId(0), UserId(4), UserId(7)];
        let items = [ItemId(0), ItemId(9)];
        let dense = crate::InducedSubgraph::extract(&g, users, items);
        let compact = CompactSubgraph::extract(&g, users, items);
        assert_eq!(compact.user_map, dense.user_map);
        assert_eq!(compact.item_map, dense.item_map);
        for lu in 0..dense.graph.num_users() as u32 {
            let mut got = Vec::new();
            compact
                .graph
                .for_each_user_neighbor(UserId(lu), |v| got.push(v));
            assert_eq!(got, dense.graph.user_adjacency(UserId(lu)).to_vec());
        }
        for lv in 0..dense.graph.num_items() as u32 {
            let mut got = Vec::new();
            compact
                .graph
                .for_each_item_neighbor(ItemId(lv), |u| got.push(u));
            assert_eq!(got, dense.graph.item_adjacency(ItemId(lv)).to_vec());
        }
        assert_eq!(compact.parent_user(UserId(0)), UserId(0));
        assert_eq!(compact.parent_item(ItemId(1)), ItemId(9));
    }

    #[test]
    fn compact_view_removals_mirror_graph_view() {
        let g = grid(5, 4);
        let c = CompactBigraph::from_graph(&g);
        let mut dense = crate::GraphView::full(&g);
        let mut view = CompactView::full(&c);
        assert_eq!(view.alive_users(), 5);

        for (ru, ri) in [(1u32, 0u32), (3, 2), (1, 0)] {
            dense.remove_user(UserId(ru));
            view.remove_user(UserId(ru));
            dense.remove_item(ItemId(ri));
            view.remove_item(ItemId(ri));
            assert_eq!(view.alive_users(), dense.alive_users());
            assert_eq!(view.alive_items(), dense.alive_items());
            for u in g.users() {
                assert_eq!(
                    NeighborView::user_degree(&view, u),
                    dense.user_degree(u),
                    "user {u} degree"
                );
                assert_eq!(NeighborView::user_alive(&view, u), dense.user_alive(u));
            }
            for v in g.items() {
                assert_eq!(NeighborView::item_degree(&view, v), dense.item_degree(v));
            }
            assert!(view.check_consistency());
        }
        assert_eq!(view.alive_sets(), dense.alive_sets());
    }

    #[test]
    fn neighbor_iteration_filters_dead_and_stays_sorted() {
        let g = grid(3, 5);
        let c = CompactBigraph::from_graph(&g);
        let mut view = CompactView::full(&c);
        view.remove_item(ItemId(2));
        let mut got = Vec::new();
        view.for_each_user_neighbor(UserId(0), |v| got.push(v));
        assert_eq!(got, vec![ItemId(0), ItemId(1), ItemId(3), ItemId(4)]);
        view.remove_user(UserId(1));
        let mut got = Vec::new();
        view.for_each_item_neighbor(ItemId(0), |u| got.push(u));
        assert_eq!(got, vec![UserId(0), UserId(2)]);
    }
}
