//! Connected components over a [`GraphView`].
//!
//! After Algorithm 3's pruning converges, the surviving subgraph decomposes
//! into connected components; each component is reported as one suspicious
//! attack group `gᵢ` (Section III-B's `g = {g₁, …, gₙ}`).

use crate::ids::{ItemId, UserId};
use crate::view::GraphView;

/// One connected component of a bipartite (sub)graph: a candidate attack
/// group before screening.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Component {
    /// Users in the component, sorted.
    pub users: Vec<UserId>,
    /// Items in the component, sorted.
    pub items: Vec<ItemId>,
}

impl Component {
    /// Total vertex count.
    pub fn len(&self) -> usize {
        self.users.len() + self.items.len()
    }

    /// True if the component has no vertices.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty() && self.items.is_empty()
    }
}

/// Finds all connected components among alive vertices with at least one
/// edge-incident vertex (isolated alive vertices form singleton components).
///
/// BFS over the view; `O(V + E)` in alive vertices/edges.
pub fn connected_components(view: &GraphView<'_>) -> Vec<Component> {
    let g = view.graph();
    let mut user_seen = vec![false; g.num_users()];
    let mut item_seen = vec![false; g.num_items()];
    let mut components = Vec::new();
    let mut queue: Vec<NodeRef> = Vec::new();

    for start in view.users() {
        if user_seen[start.index()] {
            continue;
        }
        let mut comp = Component {
            users: Vec::new(),
            items: Vec::new(),
        };
        user_seen[start.index()] = true;
        queue.push(NodeRef::User(start));
        while let Some(node) = queue.pop() {
            match node {
                NodeRef::User(u) => {
                    comp.users.push(u);
                    for (v, _) in view.user_neighbors(u) {
                        if !item_seen[v.index()] {
                            item_seen[v.index()] = true;
                            queue.push(NodeRef::Item(v));
                        }
                    }
                }
                NodeRef::Item(v) => {
                    comp.items.push(v);
                    for (u, _) in view.item_neighbors(v) {
                        if !user_seen[u.index()] {
                            user_seen[u.index()] = true;
                            queue.push(NodeRef::User(u));
                        }
                    }
                }
            }
        }
        comp.users.sort_unstable();
        comp.items.sort_unstable();
        components.push(comp);
    }

    // Items never reached from a user (isolated alive items).
    for v in view.items() {
        if !item_seen[v.index()] {
            components.push(Component {
                users: Vec::new(),
                items: vec![v],
            });
        }
    }
    components
}

#[derive(Clone, Copy)]
enum NodeRef {
    User(UserId),
    Item(ItemId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn two_disjoint_bicliques_split() {
        let mut b = GraphBuilder::new();
        for u in 0..2 {
            for v in 0..2 {
                b.add_click(UserId(u), ItemId(v), 1);
            }
        }
        for u in 2..4 {
            for v in 2..4 {
                b.add_click(UserId(u), ItemId(v), 1);
            }
        }
        let g = b.build();
        let view = GraphView::full(&g);
        let mut comps = connected_components(&view);
        comps.sort_by_key(|c| c.users.first().copied());
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].users, vec![UserId(0), UserId(1)]);
        assert_eq!(comps[0].items, vec![ItemId(0), ItemId(1)]);
        assert_eq!(comps[1].users, vec![UserId(2), UserId(3)]);
        assert_eq!(comps[1].items, vec![ItemId(2), ItemId(3)]);
    }

    #[test]
    fn removal_splits_component() {
        // Path u0 - i0 - u1 - i1 - u2 ; removing u1 yields two components
        // plus a singleton for u1? No: u1 removed entirely, so components are
        // {u0,i0} and {u2,i1}.
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(0), 1);
        b.add_click(UserId(1), ItemId(0), 1);
        b.add_click(UserId(1), ItemId(1), 1);
        b.add_click(UserId(2), ItemId(1), 1);
        let g = b.build();
        let mut view = GraphView::full(&g);
        assert_eq!(connected_components(&view).len(), 1);
        view.remove_user(UserId(1));
        let comps = connected_components(&view);
        assert_eq!(comps.len(), 2);
        assert!(comps
            .iter()
            .all(|c| c.users.len() == 1 && c.items.len() == 1));
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(0), 1);
        b.reserve_users(2).reserve_items(2);
        let g = b.build();
        let view = GraphView::full(&g);
        let comps = connected_components(&view);
        // {u0, i0}, {u1}, {i1}
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = comps.iter().map(|c| c.len()).collect();
        assert!(sizes.contains(&2));
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), 2);
    }

    #[test]
    fn empty_view_no_components() {
        let g = GraphBuilder::new().build();
        let view = GraphView::full(&g);
        assert!(connected_components(&view).is_empty());
    }

    #[test]
    fn component_len_and_empty() {
        let c = Component {
            users: vec![UserId(0)],
            items: vec![],
        };
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        let e = Component {
            users: vec![],
            items: vec![],
        };
        assert!(e.is_empty());
    }
}
