//! Dirty-frontier derivation for the delta-driven pruning fixpoint.
//!
//! The pruning bounds of Algorithm 3 are monotone: removing a vertex can
//! only *lower* other vertices' live degrees and common-neighbor counts,
//! never raise them. So after a full seeding pass, a vertex can newly fail
//! a bound only if something near it was removed:
//!
//! * **CorePruning** checks a vertex's live degree, which changes only when
//!   a *direct neighbor* dies — the dirty set is the one-hop neighborhood
//!   of the removal batch.
//! * **SquarePruning** checks common-neighbor counts over two-hop paths
//!   (`user → item → user`), which change when either an adjacent item dies
//!   (killing wedges through it) or a two-hop peer dies (no longer a
//!   countable neighbor) — the dirty set is the two-hop neighborhood.
//!
//! All derivations return **sorted, deduplicated** raw-index worklists over
//! currently-alive vertices. Dedup uses reusable bitmaps so repeated rounds
//! allocate nothing; the bitmaps are cleared by walking the result list, so
//! the cost is proportional to the frontier, not the graph.

use crate::ids::{ItemId, UserId};
use crate::view::GraphView;

/// Reusable dedup bitmaps for frontier derivation.
///
/// Sized for a specific graph; [`FrontierScratch::for_view`] builds one that
/// fits the view's underlying graph. All bits are false between calls.
#[derive(Debug)]
pub struct FrontierScratch {
    user_seen: Vec<bool>,
    item_seen: Vec<bool>,
}

impl FrontierScratch {
    /// Creates scratch for a graph with the given vertex counts.
    pub fn new(num_users: usize, num_items: usize) -> Self {
        Self {
            user_seen: vec![false; num_users],
            item_seen: vec![false; num_items],
        }
    }

    /// Creates scratch sized for `view`'s underlying graph.
    pub fn for_view(view: &GraphView<'_>) -> Self {
        Self::new(view.graph().num_users(), view.graph().num_items())
    }

    #[inline]
    fn push_user(&mut self, out: &mut Vec<u32>, view: &GraphView<'_>, u: UserId) {
        if view.user_alive(u) && !self.user_seen[u.index()] {
            self.user_seen[u.index()] = true;
            out.push(u.0);
        }
    }

    #[inline]
    fn push_item(&mut self, out: &mut Vec<u32>, view: &GraphView<'_>, v: ItemId) {
        if view.item_alive(v) && !self.item_seen[v.index()] {
            self.item_seen[v.index()] = true;
            out.push(v.0);
        }
    }

    fn finish_users(&mut self, mut out: Vec<u32>) -> Vec<u32> {
        for &u in &out {
            self.user_seen[u as usize] = false;
        }
        out.sort_unstable();
        out
    }

    fn finish_items(&mut self, mut out: Vec<u32>) -> Vec<u32> {
        for &v in &out {
            self.item_seen[v as usize] = false;
        }
        out.sort_unstable();
        out
    }
}

/// Alive users whose live degree may have dropped: the one-hop neighborhood
/// of the removed items.
pub fn core_dirty_users(
    view: &GraphView<'_>,
    removed_items: &[ItemId],
    scratch: &mut FrontierScratch,
) -> Vec<u32> {
    let mut out = Vec::new();
    for &v in removed_items {
        for &u in view.graph().item_adjacency(v) {
            scratch.push_user(&mut out, view, u);
        }
    }
    scratch.finish_users(out)
}

/// Alive items whose live degree may have dropped: the one-hop neighborhood
/// of the removed users.
pub fn core_dirty_items(
    view: &GraphView<'_>,
    removed_users: &[UserId],
    scratch: &mut FrontierScratch,
) -> Vec<u32> {
    let mut out = Vec::new();
    for &u in removed_users {
        for &v in view.graph().user_adjacency(u) {
            scratch.push_item(&mut out, view, v);
        }
    }
    scratch.finish_items(out)
}

/// Alive users whose common-neighbor counts may have dropped.
///
/// Two legs cover every wedge-count-decreasing event:
/// * a removed **item** kills wedges through it for every adjacent user
///   (one hop from the item);
/// * a removed **user** stops being a countable peer for every alive user it
///   shares a *currently alive* item with (two hops). Shared items that died
///   in the same batch are covered by the first leg, since their adjacency
///   includes those same peers.
pub fn square_dirty_users(
    view: &GraphView<'_>,
    removed_users: &[UserId],
    removed_items: &[ItemId],
    scratch: &mut FrontierScratch,
) -> Vec<u32> {
    let mut out = Vec::new();
    for &v in removed_items {
        for &u in view.graph().item_adjacency(v) {
            scratch.push_user(&mut out, view, u);
        }
    }
    for &ru in removed_users {
        for &v in view.graph().user_adjacency(ru) {
            if !view.item_alive(v) {
                continue;
            }
            for &u in view.graph().item_adjacency(v) {
                scratch.push_user(&mut out, view, u);
            }
        }
    }
    scratch.finish_users(out)
}

/// Alive items whose common-neighbor counts may have dropped (mirror of
/// [`square_dirty_users`]).
pub fn square_dirty_items(
    view: &GraphView<'_>,
    removed_users: &[UserId],
    removed_items: &[ItemId],
    scratch: &mut FrontierScratch,
) -> Vec<u32> {
    let mut out = Vec::new();
    for &u in removed_users {
        for &v in view.graph().user_adjacency(u) {
            scratch.push_item(&mut out, view, v);
        }
    }
    for &rv in removed_items {
        for &u in view.graph().item_adjacency(rv) {
            if !view.user_alive(u) {
                continue;
            }
            for &v in view.graph().user_adjacency(u) {
                scratch.push_item(&mut out, view, v);
            }
        }
    }
    scratch.finish_items(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::BipartiteGraph;

    /// 4 users × 3 items; u0..u2 click all items, u3 clicks only i2.
    fn fixture() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..3u32 {
            for v in 0..3u32 {
                b.add_click(UserId(u), ItemId(v), 1);
            }
        }
        b.add_click(UserId(3), ItemId(2), 1);
        b.build()
    }

    #[test]
    fn core_dirt_is_one_hop_and_alive_only() {
        let g = fixture();
        let mut view = GraphView::full(&g);
        let mut scratch = FrontierScratch::for_view(&view);
        view.remove_item(ItemId(2));
        view.remove_user(UserId(0));
        let dirty = core_dirty_users(&view, &[ItemId(2)], &mut scratch);
        // u0 is dead, so only u1, u2, u3 — all adjacent to i2.
        assert_eq!(dirty, vec![1, 2, 3]);
        let dirty = core_dirty_items(&view, &[UserId(0)], &mut scratch);
        assert_eq!(dirty, vec![0, 1]); // i2 is dead
    }

    #[test]
    fn square_dirt_reaches_two_hops() {
        let g = fixture();
        let mut view = GraphView::full(&g);
        let mut scratch = FrontierScratch::for_view(&view);
        view.remove_user(UserId(0));
        // u0's wedge peers through alive items: u1, u2 (i0, i1, i2), u3 (i2).
        let dirty = square_dirty_users(&view, &[UserId(0)], &[], &mut scratch);
        assert_eq!(dirty, vec![1, 2, 3]);
    }

    #[test]
    fn removed_item_leg_covers_same_batch_shared_items() {
        let g = fixture();
        let mut view = GraphView::full(&g);
        let mut scratch = FrontierScratch::for_view(&view);
        // Remove u3 and its only item i2 in the same batch: the user leg
        // finds nothing through i2 (dead), but the item leg reaches u0..u2.
        view.remove_user(UserId(3));
        view.remove_item(ItemId(2));
        let dirty = square_dirty_users(&view, &[UserId(3)], &[ItemId(2)], &mut scratch);
        assert_eq!(dirty, vec![0, 1, 2]);
    }

    #[test]
    fn output_is_deduped_and_sorted() {
        let g = fixture();
        let mut view = GraphView::full(&g);
        let mut scratch = FrontierScratch::for_view(&view);
        view.remove_item(ItemId(0));
        view.remove_item(ItemId(1));
        let dirty = core_dirty_users(&view, &[ItemId(0), ItemId(1)], &mut scratch);
        assert_eq!(dirty, vec![0, 1, 2]);
        // Scratch is clean for the next call.
        let dirty = core_dirty_users(&view, &[ItemId(1)], &mut scratch);
        assert_eq!(dirty, vec![0, 1, 2]);
    }
}
