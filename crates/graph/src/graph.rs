//! The immutable CSR bipartite graph.

use crate::ids::{ItemId, UserId};
use serde::{Deserialize, Serialize};

/// A weighted user–item bipartite click graph in compressed sparse row form.
///
/// Both directions are materialized: `user → (item, clicks)` and
/// `item → (user, clicks)`. Neighbor lists are sorted by neighbor id, which
/// gives `O(log deg)` edge lookup and allows merge-based set intersection in
/// [`crate::twohop`].
///
/// The struct corresponds to the paper's `TaoBao_UI_Clicks` table loaded into
/// Grape: one record `(u, v, p)` means user `u` clicked item `v` exactly `p`
/// times (`p ≥ 1`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BipartiteGraph {
    // user → items
    pub(crate) user_offsets: Vec<u64>,
    pub(crate) user_adj: Vec<ItemId>,
    pub(crate) user_clicks: Vec<u32>,
    // item → users
    pub(crate) item_offsets: Vec<u64>,
    pub(crate) item_adj: Vec<UserId>,
    pub(crate) item_clicks: Vec<u32>,
    /// Sum of all click counts (the paper's `Total_click`).
    pub(crate) total_clicks: u64,
}

impl BipartiteGraph {
    /// Number of user vertices (including isolated ones).
    #[inline]
    pub fn num_users(&self) -> usize {
        self.user_offsets.len() - 1
    }

    /// Number of item vertices (including isolated ones).
    #[inline]
    pub fn num_items(&self) -> usize {
        self.item_offsets.len() - 1
    }

    /// Number of distinct `(user, item)` click records (the paper's `Edge`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.user_adj.len()
    }

    /// Sum of all click counts (the paper's `Total_click`).
    #[inline]
    pub fn total_clicks(&self) -> u64 {
        self.total_clicks
    }

    /// Iterator over all user ids.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.num_users() as u32).map(UserId)
    }

    /// Iterator over all item ids.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.num_items() as u32).map(ItemId)
    }

    #[inline]
    fn user_range(&self, u: UserId) -> std::ops::Range<usize> {
        let lo = self.user_offsets[u.index()] as usize;
        let hi = self.user_offsets[u.index() + 1] as usize;
        lo..hi
    }

    #[inline]
    fn item_range(&self, v: ItemId) -> std::ops::Range<usize> {
        let lo = self.item_offsets[v.index()] as usize;
        let hi = self.item_offsets[v.index() + 1] as usize;
        lo..hi
    }

    /// Number of distinct items this user clicked.
    #[inline]
    pub fn user_degree(&self, u: UserId) -> usize {
        self.user_range(u).len()
    }

    /// Number of distinct users who clicked this item.
    #[inline]
    pub fn item_degree(&self, v: ItemId) -> usize {
        self.item_range(v).len()
    }

    /// Items clicked by `u`, with click counts, sorted by item id.
    #[inline]
    pub fn user_neighbors(&self, u: UserId) -> impl Iterator<Item = (ItemId, u32)> + '_ {
        let r = self.user_range(u);
        self.user_adj[r.clone()]
            .iter()
            .copied()
            .zip(self.user_clicks[r].iter().copied())
    }

    /// Users who clicked `v`, with click counts, sorted by user id.
    #[inline]
    pub fn item_neighbors(&self, v: ItemId) -> impl Iterator<Item = (UserId, u32)> + '_ {
        let r = self.item_range(v);
        self.item_adj[r.clone()]
            .iter()
            .copied()
            .zip(self.item_clicks[r].iter().copied())
    }

    /// Sorted slice of the items clicked by `u` (no counts).
    #[inline]
    pub fn user_adjacency(&self, u: UserId) -> &[ItemId] {
        &self.user_adj[self.user_range(u)]
    }

    /// Sorted slice of the users who clicked `v` (no counts).
    #[inline]
    pub fn item_adjacency(&self, v: ItemId) -> &[UserId] {
        &self.item_adj[self.item_range(v)]
    }

    /// Click count on edge `(u, v)`, or `None` if the edge is absent.
    pub fn clicks(&self, u: UserId, v: ItemId) -> Option<u32> {
        let r = self.user_range(u);
        let adj = &self.user_adj[r.clone()];
        adj.binary_search(&v)
            .ok()
            .map(|pos| self.user_clicks[r.start + pos])
    }

    /// Total clicks issued by user `u` across all items (row sum).
    pub fn user_total_clicks(&self, u: UserId) -> u64 {
        let r = self.user_range(u);
        self.user_clicks[r].iter().map(|&c| c as u64).sum()
    }

    /// Total clicks received by item `v` across all users (column sum).
    ///
    /// This is the paper's per-item `Total_click` used to classify items as
    /// *hot* (`≥ T_hot`) or *ordinary*.
    pub fn item_total_clicks(&self, v: ItemId) -> u64 {
        let r = self.item_range(v);
        self.item_clicks[r].iter().map(|&c| c as u64).sum()
    }

    /// Precomputes `item_total_clicks` for every item in one pass.
    pub fn all_item_total_clicks(&self) -> Vec<u64> {
        (0..self.num_items() as u32)
            .map(|v| self.item_total_clicks(ItemId(v)))
            .collect()
    }

    /// Precomputes `user_total_clicks` for every user in one pass.
    pub fn all_user_total_clicks(&self) -> Vec<u64> {
        (0..self.num_users() as u32)
            .map(|u| self.user_total_clicks(UserId(u)))
            .collect()
    }

    /// Checks the internal CSR invariants; used by tests and after
    /// deserialization of untrusted input.
    ///
    /// Verified invariants:
    /// 1. offsets are monotone and end at the adjacency length;
    /// 2. adjacency ids are in range and strictly increasing per vertex;
    /// 3. both directions contain the same edge multiset with equal weights;
    /// 4. every click count is ≥ 1;
    /// 5. `total_clicks` equals the sum of weights.
    pub fn validate(&self) -> Result<(), String> {
        validate_side(&self.user_offsets, &self.user_adj, self.num_items(), "user")?;
        validate_side(&self.item_offsets, &self.item_adj, self.num_users(), "item")?;
        if self.user_adj.len() != self.item_adj.len() {
            return Err(format!(
                "edge count mismatch: {} user-side vs {} item-side",
                self.user_adj.len(),
                self.item_adj.len()
            ));
        }
        if self.user_clicks.contains(&0) || self.item_clicks.contains(&0) {
            return Err("zero click count on an edge".into());
        }
        let sum: u64 = self.user_clicks.iter().map(|&c| c as u64).sum();
        if sum != self.total_clicks {
            return Err(format!(
                "total_clicks {} != sum of weights {}",
                self.total_clicks, sum
            ));
        }
        // Cross-check both directions edge by edge.
        for u in self.users() {
            for (v, c) in self.user_neighbors(u) {
                match self.item_lookup(v, u) {
                    Some(c2) if c2 == c => {}
                    Some(c2) => {
                        return Err(format!(
                            "weight mismatch on ({u},{v}): {c} user-side vs {c2} item-side"
                        ))
                    }
                    None => return Err(format!("edge ({u},{v}) missing item-side")),
                }
            }
        }
        Ok(())
    }

    fn item_lookup(&self, v: ItemId, u: UserId) -> Option<u32> {
        let r = self.item_range(v);
        let adj = &self.item_adj[r.clone()];
        adj.binary_search(&u)
            .ok()
            .map(|pos| self.item_clicks[r.start + pos])
    }

    /// All edges as `(user, item, clicks)` triples, ordered by user then item.
    pub fn edges(&self) -> impl Iterator<Item = (UserId, ItemId, u32)> + '_ {
        self.users()
            .flat_map(move |u| self.user_neighbors(u).map(move |(v, c)| (u, v, c)))
    }
}

fn validate_side<T: Copy + Into<NodeIndex>>(
    offsets: &[u64],
    adj: &[T],
    other_side: usize,
    side: &str,
) -> Result<(), String> {
    if offsets.is_empty() {
        return Err(format!("{side} offsets empty"));
    }
    if offsets[0] != 0 || *offsets.last().unwrap() != adj.len() as u64 {
        return Err(format!("{side} offsets do not span adjacency"));
    }
    for w in offsets.windows(2) {
        if w[0] > w[1] {
            return Err(format!("{side} offsets not monotone"));
        }
        let r = w[0] as usize..w[1] as usize;
        let slice = &adj[r];
        for pair in slice.windows(2) {
            if pair[0].into().0 >= pair[1].into().0 {
                return Err(format!("{side} adjacency not strictly increasing"));
            }
        }
        if let Some(last) = slice.last() {
            if (*last).into().0 as usize >= other_side {
                return Err(format!("{side} adjacency id out of range"));
            }
        }
    }
    Ok(())
}

/// Helper to validate either side generically.
pub(crate) struct NodeIndex(pub u32);

impl From<UserId> for NodeIndex {
    fn from(u: UserId) -> Self {
        NodeIndex(u.0)
    }
}

impl From<ItemId> for NodeIndex {
    fn from(v: ItemId) -> Self {
        NodeIndex(v.0)
    }
}

#[cfg(test)]
mod tests {
    use crate::{GraphBuilder, ItemId, UserId};

    fn sample() -> crate::BipartiteGraph {
        let mut b = GraphBuilder::new();
        // u0: i0 x3, i1 x1 ; u1: i0 x2 ; u2: i2 x5
        b.add_click(UserId(0), ItemId(0), 3);
        b.add_click(UserId(0), ItemId(1), 1);
        b.add_click(UserId(1), ItemId(0), 2);
        b.add_click(UserId(2), ItemId(2), 5);
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = sample();
        assert_eq!(g.num_users(), 3);
        assert_eq!(g.num_items(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.total_clicks(), 11);
        assert_eq!(g.user_degree(UserId(0)), 2);
        assert_eq!(g.item_degree(ItemId(0)), 2);
        assert_eq!(g.user_total_clicks(UserId(0)), 4);
        assert_eq!(g.item_total_clicks(ItemId(0)), 5);
    }

    #[test]
    fn edge_lookup_both_present_and_absent() {
        let g = sample();
        assert_eq!(g.clicks(UserId(0), ItemId(0)), Some(3));
        assert_eq!(g.clicks(UserId(0), ItemId(2)), None);
        assert_eq!(g.clicks(UserId(2), ItemId(2)), Some(5));
    }

    #[test]
    fn neighbors_sorted_and_weighted() {
        let g = sample();
        let n: Vec<_> = g.user_neighbors(UserId(0)).collect();
        assert_eq!(n, vec![(ItemId(0), 3), (ItemId(1), 1)]);
        let n: Vec<_> = g.item_neighbors(ItemId(0)).collect();
        assert_eq!(n, vec![(UserId(0), 3), (UserId(1), 2)]);
    }

    #[test]
    fn validate_passes_on_well_formed() {
        sample().validate().unwrap();
    }

    #[test]
    fn edges_iterator_covers_all() {
        let g = sample();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e.len(), 4);
        assert!(e.contains(&(UserId(1), ItemId(0), 2)));
    }

    #[test]
    fn per_vertex_totals_match_bulk() {
        let g = sample();
        assert_eq!(
            g.all_item_total_clicks(),
            vec![5, 1, 5],
            "item totals: i0=3+2, i1=1, i2=5"
        );
        assert_eq!(g.all_user_total_clicks(), vec![4, 2, 5]);
    }

    #[test]
    fn validate_rejects_corrupted_weight() {
        let mut g = sample();
        g.user_clicks[0] = 99;
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_weight() {
        let mut g = sample();
        g.user_clicks[0] = 0;
        g.total_clicks -= 3;
        assert!(g.validate().is_err());
    }
}
