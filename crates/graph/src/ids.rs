//! Typed vertex identifiers.
//!
//! Users and items live on the two sides of the bipartite graph, and mixing
//! them up is the classic bug in bipartite algorithms (the paper's
//! `SquarePruning` runs one pass per side with swapped parameters `k₁`/`k₂`).
//! Newtypes make that mix-up a compile error.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a user vertex (left side of the bipartite graph).
///
/// Dense indices in `0..num_users`; the mapping back to external account ids
/// is kept by [`crate::builder::GraphBuilder`] users if they need one.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// Identifier of an item vertex (right side of the bipartite graph).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub u32);

/// A vertex on either side, for APIs (risk ranking, labelling) that must
/// address the whole graph uniformly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum NodeId {
    /// A user vertex.
    User(UserId),
    /// An item vertex.
    Item(ItemId),
}

impl UserId {
    /// The dense index of this user.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ItemId {
    /// The dense index of this item.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// Returns the contained user id, if this is a user.
    pub fn as_user(self) -> Option<UserId> {
        match self {
            NodeId::User(u) => Some(u),
            NodeId::Item(_) => None,
        }
    }

    /// Returns the contained item id, if this is an item.
    pub fn as_item(self) -> Option<ItemId> {
        match self {
            NodeId::Item(v) => Some(v),
            NodeId::User(_) => None,
        }
    }

    /// True if this node is on the user side.
    pub fn is_user(self) -> bool {
        matches!(self, NodeId::User(_))
    }
}

impl From<UserId> for NodeId {
    fn from(u: UserId) -> Self {
        NodeId::User(u)
    }
}

impl From<ItemId> for NodeId {
    fn from(v: ItemId) -> Self {
        NodeId::Item(v)
    }
}

impl fmt::Debug for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips() {
        let n: NodeId = UserId(7).into();
        assert_eq!(n.as_user(), Some(UserId(7)));
        assert_eq!(n.as_item(), None);
        assert!(n.is_user());

        let n: NodeId = ItemId(3).into();
        assert_eq!(n.as_item(), Some(ItemId(3)));
        assert_eq!(n.as_user(), None);
        assert!(!n.is_user());
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(UserId(1) < UserId(2));
        assert!(ItemId(0) < ItemId(10));
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(UserId(5).to_string(), "u5");
        assert_eq!(ItemId(5).to_string(), "i5");
        assert_eq!(format!("{:?}", UserId(5)), "u5");
    }
}
