//! Import/export of click tables.
//!
//! The on-disk format mirrors the paper's `TaoBao_UI_Clicks` table: one
//! record per line, `user_id \t item_id \t click`. A compact binary format
//! (length-prefixed little-endian, via `bytes`) is provided for large
//! synthetic datasets where TSV parsing would dominate load time.

use crate::builder::GraphBuilder;
use crate::graph::BipartiteGraph;
use crate::ids::{ItemId, UserId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{self, BufRead, Write};

/// Error raised while parsing a click table.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed record.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// Binary payload truncated or with a bad magic header.
    Corrupt(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Corrupt(m) => write!(f, "corrupt payload: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes the graph as `user \t item \t click` lines, ordered by user then
/// item.
pub fn write_tsv<W: Write>(g: &BipartiteGraph, mut w: W) -> Result<(), IoError> {
    for (u, v, c) in g.edges() {
        writeln!(w, "{}\t{}\t{}", u.0, v.0, c)?;
    }
    Ok(())
}

/// One quarantined malformed line from a lossy read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for LineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// The result of a lossy TSV read: the graph built from every parseable
/// record, plus a per-line report of everything quarantined.
#[derive(Debug)]
pub struct LossyRead {
    /// Graph over the clean subset of records.
    pub graph: BipartiteGraph,
    /// One entry per malformed line, in file order.
    pub errors: Vec<LineError>,
}

fn parse_record(trimmed: &str, idx: usize) -> Result<(u32, u32, u32), IoError> {
    let mut parts = trimmed.split('\t');
    let mut parse = |what: &str| -> Result<u32, IoError> {
        parts
            .next()
            .ok_or_else(|| IoError::Parse {
                line: idx + 1,
                message: format!("missing {what}"),
            })?
            .trim()
            .parse::<u32>()
            .map_err(|e| IoError::Parse {
                line: idx + 1,
                message: format!("bad {what}: {e}"),
            })
    };
    let u = parse("user id")?;
    let v = parse("item id")?;
    let c = parse("click count")?;
    Ok((u, v, c))
}

/// Parses a TSV click table. Blank lines and lines starting with `#` are
/// skipped; duplicate pairs are merged by summation (builder semantics).
pub fn read_tsv<R: BufRead>(r: R) -> Result<BipartiteGraph, IoError> {
    let mut b = GraphBuilder::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (u, v, c) = parse_record(trimmed, idx)?;
        b.add_click(UserId(u), ItemId(v), c);
    }
    Ok(b.build())
}

/// Lossy [`read_tsv`]: malformed lines — including lines that are not
/// valid UTF-8 — are quarantined into a per-line error report instead of
/// aborting the read, and the graph is built from the clean subset.
/// Underlying I/O failures still abort — a quarantine list cannot
/// represent "the disk went away".
pub fn read_tsv_lossy<R: BufRead>(r: R) -> Result<LossyRead, IoError> {
    read_tsv_lossy_inner(r, None)
}

/// [`read_tsv_lossy`] that additionally records `io.records_ingested` and
/// `io.lines_quarantined` counters in `metrics`, so load-time data quality
/// lands in the same snapshot as the detection run it feeds.
pub fn read_tsv_lossy_metered<R: BufRead>(
    r: R,
    metrics: &ricd_obs::MetricsRegistry,
) -> Result<LossyRead, IoError> {
    read_tsv_lossy_inner(r, Some(metrics))
}

fn read_tsv_lossy_inner<R: BufRead>(
    mut r: R,
    metrics: Option<&ricd_obs::MetricsRegistry>,
) -> Result<LossyRead, IoError> {
    let mut b = GraphBuilder::new();
    let mut errors = Vec::new();
    let mut raw = Vec::new();
    let mut idx = 0usize;
    let mut ingested = 0u64;
    loop {
        raw.clear();
        if r.read_until(b'\n', &mut raw)? == 0 {
            break;
        }
        let parsed = match std::str::from_utf8(&raw) {
            Ok(line) => {
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    idx += 1;
                    continue;
                }
                parse_record(trimmed, idx)
            }
            Err(_) => Err(IoError::Parse {
                line: idx + 1,
                message: "not valid UTF-8".to_string(),
            }),
        };
        match parsed {
            Ok((u, v, c)) => {
                b.add_click(UserId(u), ItemId(v), c);
                ingested += 1;
            }
            Err(IoError::Parse { line, message }) => errors.push(LineError { line, message }),
            Err(other) => return Err(other),
        }
        idx += 1;
    }
    if let Some(m) = metrics {
        m.inc_by("io.records_ingested", ingested);
        m.inc_by("io.lines_quarantined", errors.len() as u64);
    }
    Ok(LossyRead {
        graph: b.build(),
        errors,
    })
}

const MAGIC: &[u8; 8] = b"RICDCLK1";

/// Serializes the graph's edge list into a compact binary buffer:
/// `MAGIC | num_users u64 | num_items u64 | num_edges u64 | (u,v,c) u32×3 …`.
pub fn to_bytes(g: &BipartiteGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 + g.num_edges() * 12);
    buf.put_slice(MAGIC);
    buf.put_u64_le(g.num_users() as u64);
    buf.put_u64_le(g.num_items() as u64);
    buf.put_u64_le(g.num_edges() as u64);
    for (u, v, c) in g.edges() {
        buf.put_u32_le(u.0);
        buf.put_u32_le(v.0);
        buf.put_u32_le(c);
    }
    buf.freeze()
}

/// Deserializes a buffer produced by [`to_bytes`].
pub fn from_bytes(mut buf: Bytes) -> Result<BipartiteGraph, IoError> {
    if buf.remaining() < 32 {
        return Err(IoError::Corrupt("header truncated".into()));
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::Corrupt("bad magic".into()));
    }
    let users = buf.get_u64_le();
    let items = buf.get_u64_le();
    let edges = buf.get_u64_le();
    // Vertex ids are u32, so a header claiming more vertices than the id
    // space can address is corrupt no matter what follows. Below that,
    // materializing the graph still costs O(users + items) memory before
    // a single edge record is validated, so the format carries an explicit
    // capacity bound: a corrupted (bit-flipped) header must not buy a
    // multi-gigabyte allocation. 2^26 (~67M) vertices covers the paper's
    // 20M-user production table with headroom.
    const MAX_VERTICES: u64 = 1 << 26;
    if users > MAX_VERTICES || items > MAX_VERTICES {
        return Err(IoError::Corrupt(format!(
            "vertex counts {users}/{items} exceed the format bound of {MAX_VERTICES}"
        )));
    }
    let (users, items) = (users as usize, items as usize);
    // `edges * 12` must not wrap: a hostile header with edges near the
    // integer maximum would otherwise pass the length check and drive a
    // huge allocation + read loop below.
    match edges.checked_mul(12) {
        Some(need) if buf.remaining() as u64 >= need => {}
        _ => {
            return Err(IoError::Corrupt(format!(
                "expected {edges} edge records, have {} bytes",
                buf.remaining()
            )));
        }
    }
    let edges = edges as usize;
    // Even with a consistent header, never pre-allocate more than the
    // payload can actually hold.
    let mut b = GraphBuilder::with_capacity(edges.min(buf.remaining() / 12));
    b.reserve_users(users).reserve_items(items);
    for i in 0..edges {
        let u = buf.get_u32_le();
        let v = buf.get_u32_le();
        let c = buf.get_u32_le();
        // A well-formed file never references a vertex outside the counts
        // its own header declares (to_bytes writes num_users/num_items).
        // Without this check a single flipped high bit in an id would grow
        // the builder to a multi-billion-vertex graph.
        if u as usize >= users || v as usize >= items {
            return Err(IoError::Corrupt(format!(
                "edge record {i} references vertex ({u}, {v}) outside the \
                 declared {users}x{items} graph"
            )));
        }
        b.add_click(UserId(u), ItemId(v), c);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(1), 3);
        b.add_click(UserId(2), ItemId(0), 1);
        b.reserve_users(5).reserve_items(4);
        b.build()
    }

    #[test]
    fn tsv_round_trip() {
        let g = sample();
        let mut out = Vec::new();
        write_tsv(&g, &mut out).unwrap();
        let g2 = read_tsv(out.as_slice()).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.total_clicks(), g.total_clicks());
        assert_eq!(g2.clicks(UserId(0), ItemId(1)), Some(3));
        // Note: isolated trailing vertices are not representable in TSV.
        assert_eq!(g2.num_users(), 3);
    }

    #[test]
    fn tsv_skips_comments_and_blanks() {
        let text = "# header\n\n0\t0\t2\n0\t0\t3\n";
        let g = read_tsv(text.as_bytes()).unwrap();
        assert_eq!(g.clicks(UserId(0), ItemId(0)), Some(5));
    }

    #[test]
    fn tsv_reports_line_numbers() {
        let text = "0\t0\t1\nbad line\n";
        match read_tsv(text.as_bytes()) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn tsv_missing_field() {
        let text = "0\t0\n";
        assert!(matches!(
            read_tsv(text.as_bytes()),
            Err(IoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn lossy_read_quarantines_bad_lines() {
        let text = "0\t0\t2\nbad line\n1\t1\t3\n2\t2\n3\t3\tNaN\n# comment\n4\t4\t1\n";
        let r = read_tsv_lossy(text.as_bytes()).unwrap();
        assert_eq!(r.graph.num_edges(), 3, "three clean records survive");
        assert_eq!(r.graph.clicks(UserId(4), ItemId(4)), Some(1));
        let lines: Vec<usize> = r.errors.iter().map(|e| e.line).collect();
        assert_eq!(lines, vec![2, 4, 5], "every bad line reported, in order");
        assert!(r.errors[1].message.contains("missing"), "{}", r.errors[1]);
    }

    #[test]
    fn metered_lossy_read_counts_ingested_and_quarantined() {
        let text = "0\t0\t2\nbad line\n1\t1\t3\n2\t2\n3\t3\tNaN\n# comment\n4\t4\t1\n";
        let registry = ricd_obs::MetricsRegistry::new();
        let r = read_tsv_lossy_metered(text.as_bytes(), &registry).unwrap();
        assert_eq!(r.errors.len(), 3);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("io.records_ingested"), Some(3));
        assert_eq!(snap.counter("io.lines_quarantined"), Some(3));
    }

    #[test]
    fn lossy_read_of_clean_input_matches_strict() {
        let g = sample();
        let mut out = Vec::new();
        write_tsv(&g, &mut out).unwrap();
        let strict = read_tsv(out.as_slice()).unwrap();
        let lossy = read_tsv_lossy(out.as_slice()).unwrap();
        assert!(lossy.errors.is_empty());
        assert_eq!(lossy.graph.num_edges(), strict.num_edges());
        assert_eq!(lossy.graph.total_clicks(), strict.total_clicks());
    }

    #[test]
    fn binary_round_trip_preserves_isolated_vertices() {
        let g = sample();
        let bytes = to_bytes(&g);
        let g2 = from_bytes(bytes).unwrap();
        assert_eq!(g2.num_users(), 5);
        assert_eq!(g2.num_items(), 4);
        assert_eq!(g2.num_edges(), 2);
        assert_eq!(g2.clicks(UserId(2), ItemId(0)), Some(1));
        g2.validate().unwrap();
    }

    #[test]
    fn binary_rejects_truncation_and_bad_magic() {
        let g = sample();
        let bytes = to_bytes(&g);
        let truncated = bytes.slice(0..bytes.len() - 1);
        assert!(matches!(from_bytes(truncated), Err(IoError::Corrupt(_))));
        let mut bad = BytesMut::from(&bytes[..]);
        bad[0] = b'X';
        assert!(matches!(from_bytes(bad.freeze()), Err(IoError::Corrupt(_))));
        assert!(matches!(
            from_bytes(Bytes::from_static(b"short")),
            Err(IoError::Corrupt(_))
        ));
    }

    /// A 32-byte header is all an attacker controls cheaply; every field
    /// pushed to its extreme must yield `Corrupt`, never a wrapping length
    /// check, a giant pre-allocation, or a panic in the read loop.
    #[test]
    fn binary_rejects_hostile_headers() {
        let header = |users: u64, items: u64, edges: u64| {
            let mut h = BytesMut::with_capacity(32);
            h.put_slice(MAGIC);
            h.put_u64_le(users);
            h.put_u64_le(items);
            h.put_u64_le(edges);
            h.freeze()
        };
        // edges * 12 wraps around u64 (and usize).
        for edges in [
            u64::MAX,
            u64::MAX / 2,
            u64::MAX / 12 + 1,
            (usize::MAX / 12 + 1) as u64,
        ] {
            assert!(
                matches!(from_bytes(header(1, 1, edges)), Err(IoError::Corrupt(_))),
                "edges={edges:#x} must be rejected"
            );
        }
        // Plausible edge count, no payload: must not pre-allocate for the
        // claimed count before noticing the buffer is empty.
        assert!(matches!(
            from_bytes(header(10, 10, 1 << 40)),
            Err(IoError::Corrupt(_))
        ));
        // Vertex counts beyond the u32 id space.
        assert!(matches!(
            from_bytes(header(u64::MAX, 1, 0)),
            Err(IoError::Corrupt(_))
        ));
        assert!(matches!(
            from_bytes(header(1, u64::MAX, 0)),
            Err(IoError::Corrupt(_))
        ));
        // An all-maximal header exercises every guard at once.
        assert!(matches!(
            from_bytes(header(u64::MAX, u64::MAX, u64::MAX)),
            Err(IoError::Corrupt(_))
        ));
    }
}
