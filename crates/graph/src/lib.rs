#![warn(missing_docs)]

//! # ricd-graph — bipartite click-graph substrate
//!
//! This crate implements the data substrate that every algorithm in the RICD
//! reproduction runs on: a weighted **user–item bipartite graph** where the
//! weight of an edge `(u, v)` is the number of times user `u` clicked item
//! `v` (the `TaoBao_UI_Clicks` table of the paper, Section IV).
//!
//! The design follows the needs of the paper's algorithms:
//!
//! * [`BipartiteGraph`] — immutable CSR adjacency in **both** directions
//!   (user→items and item→users) with click weights, so degree queries,
//!   neighbor scans and edge lookups are cache-friendly and allocation-free.
//! * [`GraphView`] — a deletion mask over a [`BipartiteGraph`] with live
//!   degree tracking; the paper's `CorePruning` / `SquarePruning`
//!   (Algorithm 3) repeatedly remove vertices, and a view makes each removal
//!   O(degree) without rebuilding the CSR.
//! * [`compact`] — the shard-local compact CSR: delta-encoded sorted
//!   adjacency plus alive bitmaps ([`CompactBigraph`] / [`CompactView`]),
//!   byte-for-byte cheaper than the dense pair at paper scale and proven
//!   equivalent by differential proptests.
//! * [`twohop`] — wedge-based common-neighbor counting, the workhorse of
//!   `SquarePruning` and of the Common-Neighbors baseline.
//! * [`components`] — connected components over a view; each surviving
//!   component is one suspicious attack group `gᵢ`.
//! * [`shard`] — splits a pruned view into independent detection units
//!   (exact component shards + hash-split giants with boundary
//!   replication) for the sharded runtime.
//! * [`stats`] — the Table I / Table II dataset statistics and the Fig 2
//!   click-distribution series.
//! * [`io`] — TSV and serde import/export of click tables.
//!
//! ```
//! use ricd_graph::{GraphBuilder, UserId, ItemId};
//!
//! let mut b = GraphBuilder::new();
//! b.add_click(UserId(0), ItemId(0), 3);
//! b.add_click(UserId(0), ItemId(1), 1);
//! b.add_click(UserId(1), ItemId(0), 2);
//! let g = b.build();
//! assert_eq!(g.num_users(), 2);
//! assert_eq!(g.num_items(), 2);
//! assert_eq!(g.total_clicks(), 6);
//! assert_eq!(g.clicks(UserId(0), ItemId(0)), Some(3));
//! ```

pub mod builder;
pub mod compact;
pub mod components;
pub mod frontier;
pub mod graph;
pub mod ids;
pub mod io;
pub mod shard;
pub mod stats;
pub mod subgraph;
pub mod twohop;
pub mod view;

pub use builder::GraphBuilder;
pub use compact::{AliveBitmap, CompactBigraph, CompactSubgraph, CompactView, DeltaAdjacency};
pub use components::{connected_components, Component};
pub use frontier::FrontierScratch;
pub use graph::BipartiteGraph;
pub use ids::{ItemId, NodeId, UserId};
pub use shard::{plan_shards, user_shard, Shard, ShardOptions, ShardPlan, ShardPlanStats};
pub use stats::{ClickDistribution, DatasetScale, SideStats};
pub use subgraph::InducedSubgraph;
pub use twohop::{CommonNeighborScratch, HubBitmaps, KernelScratch, SortedNeighborScratch};
pub use view::{GraphView, LogMark, NeighborView};
