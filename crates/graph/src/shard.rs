//! Shard planning: splitting a pruned click graph into independent
//! detection units.
//!
//! The paper runs RICD on Grape across 16 workers because the production
//! click graph does not fit one sequential pass. The same decomposition
//! works in-process: after the cheap degree pre-filter, the surviving
//! bipartite graph falls apart into **connected components**, and an
//! (α, k₁, k₂)-extension biclique can never span two components — so each
//! component (or any union of components) is an exact, independently
//! prunable shard.
//!
//! Real click graphs keep one *giant* component (hot items glue most of the
//! surviving traffic together), so exact components alone give no
//! parallelism. A giant component is therefore hash-split on user id into
//! size-capped buckets with **boundary-item replication**: every shard
//! carries *all* items its owned users click, plus a read-only **halo** of
//! the outside users clicking those items. The halo is what makes in-shard
//! pruning *sound* (never removing a vertex the global fixpoint keeps):
//!
//! * an owned user's common-neighbor counts are **exact** — its items are
//!   all in the shard, and every potential partner (a user sharing an item)
//!   is owned or in the halo with adjacency restricted to shard items;
//! * an **interior** item (all alive clickers owned) likewise has exact
//!   degree and common-neighbor counts;
//! * boundary items and halo users are *pinned*: the shard may read them
//!   but never remove them, so their counts only ever over-estimate — a
//!   conservative keep, never a wrong removal.
//!
//! The runtime (`ricd-core`) runs each shard to a local fixpoint, applies
//! the sound removals globally, and finishes the giant components with one
//! reconciliation pass; by monotonicity the fixpoint is unique, so the
//! sharded result equals the unsharded one exactly.

use crate::components::connected_components;
use crate::ids::{ItemId, UserId};
use crate::view::GraphView;

/// Fixed hash seed so plans are deterministic across runs and processes.
/// Public so other tiers (the sharded serve router) partition users with
/// the *same* hash the planner uses, keeping shard assignments consistent
/// between offline plans and online routing.
pub const DEFAULT_HASH_SEED: u64 = 0x5eed_5a4d;

/// The planner's user→bucket assignment, exposed for the serve-tier
/// router: `user_shard(u, seed, n)` is exactly the bucket `plan_shards`
/// would hash `u` into when splitting a giant component `n` ways.
pub fn user_shard(u: UserId, hash_seed: u64, shards: usize) -> usize {
    (splitmix64(u64::from(u.0) ^ hash_seed) % shards.max(1) as u64) as usize
}

/// Shard-planning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardOptions {
    /// Cap on *owned* users per shard. Components at or under the cap are
    /// bin-packed into exact shards; larger ones are hash-split into
    /// `⌈users / max_users⌉` buckets (hash imbalance can leave a bucket
    /// slightly above the cap — it is a target, not a hard bound).
    pub max_users: usize,
    /// Seed for the user-id hash that splits giant components.
    pub hash_seed: u64,
}

impl ShardOptions {
    /// Options targeting `max_users` owned users per shard.
    pub fn with_max_users(max_users: usize) -> Self {
        Self {
            max_users: max_users.max(1),
            hash_seed: DEFAULT_HASH_SEED,
        }
    }
}

impl Default for ShardOptions {
    fn default() -> Self {
        Self::with_max_users(4096)
    }
}

/// One independent detection unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Users this shard owns (sorted). Exactly these may be removed by
    /// in-shard pruning; every alive user of a component appears as owned
    /// in exactly one shard.
    pub users: Vec<UserId>,
    /// Every item in scope (sorted): for an exact shard the component
    /// items, for a hash shard all alive items clicked by owned users
    /// (boundary replication).
    pub items: Vec<ItemId>,
    /// Items with at least one alive clicker outside the owned set
    /// (sorted; always empty for exact shards). Pinned: readable, never
    /// removable in-shard.
    pub boundary_items: Vec<ItemId>,
    /// Alive outside clickers of shard items (sorted; empty for exact
    /// shards). Pinned read-only context for exact common-neighbor counts.
    pub halo_users: Vec<UserId>,
    /// True when the shard is a union of whole components, so its local
    /// fixpoint *is* the global one for those vertices.
    pub exact: bool,
}

impl Shard {
    /// A rough cost estimate for scheduling: larger shards first keeps the
    /// pool balanced when shard sizes are skewed.
    pub fn cost_estimate(&self) -> usize {
        self.users.len() + self.halo_users.len() + 4 * self.items.len()
    }
}

/// Plan statistics, exported as `shard.*` metrics by the runtime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardPlanStats {
    /// Connected components seen (user-bearing only).
    pub components: usize,
    /// Components above the user cap, hash-split.
    pub giant_components: usize,
    /// Exact shards produced by bin-packing small components.
    pub exact_shards: usize,
    /// Hash shards produced by splitting giant components.
    pub hash_shards: usize,
    /// Total boundary items across hash shards (replication overhead).
    pub replicated_items: usize,
    /// Total halo users across hash shards.
    pub halo_users: usize,
}

/// A full shard plan over one pruned view.
#[derive(Clone, Debug, Default)]
pub struct ShardPlan {
    /// The shards, exact shards first, in deterministic order.
    pub shards: Vec<Shard>,
    /// Users of all giant (hash-split) components — the reconciliation
    /// scope (sorted).
    pub giant_users: Vec<UserId>,
    /// Items of all giant components (sorted).
    pub giant_items: Vec<ItemId>,
    /// Plan statistics.
    pub stats: ShardPlanStats,
}

impl ShardPlan {
    /// True when at least one component was hash-split, so the runtime must
    /// run a reconciliation pass over [`ShardPlan::giant_users`] /
    /// [`ShardPlan::giant_items`].
    pub fn needs_reconciliation(&self) -> bool {
        self.stats.giant_components > 0
    }
}

/// SplitMix64: cheap, well-mixed, and stable across platforms — bucket
/// assignment must not depend on the process or the std hasher's seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Plans shards over the alive vertices of `view`.
///
/// Components with no users are skipped entirely: the group-level `k₁`
/// floor discards them in both the sharded and unsharded paths (and after
/// any degree pre-filter with positive bounds they cannot exist at all).
pub fn plan_shards(view: &GraphView<'_>, opts: &ShardOptions) -> ShardPlan {
    let max_users = opts.max_users.max(1);
    let mut plan = ShardPlan::default();

    let mut small: Vec<crate::components::Component> = Vec::new();
    let mut giants: Vec<crate::components::Component> = Vec::new();
    for c in connected_components(view) {
        if c.users.is_empty() {
            continue;
        }
        plan.stats.components += 1;
        if c.users.len() <= max_users {
            small.push(c);
        } else {
            giants.push(c);
        }
    }

    // First-fit-decreasing bin-packing of whole components into exact
    // shards. Sort is total (size, then first user id), so the plan is
    // deterministic.
    small.sort_by(|a, b| {
        b.users
            .len()
            .cmp(&a.users.len())
            .then(a.users[0].cmp(&b.users[0]))
    });
    let mut bins: Vec<(usize, Vec<UserId>, Vec<ItemId>)> = Vec::new();
    for c in small {
        let need = c.users.len();
        match bins
            .iter_mut()
            .find(|(load, _, _)| load + need <= max_users)
        {
            Some((load, users, items)) => {
                *load += need;
                users.extend_from_slice(&c.users);
                items.extend_from_slice(&c.items);
            }
            None => bins.push((need, c.users, c.items)),
        }
    }
    for (_, mut users, mut items) in bins {
        users.sort_unstable();
        items.sort_unstable();
        plan.stats.exact_shards += 1;
        plan.shards.push(Shard {
            users,
            items,
            boundary_items: Vec::new(),
            halo_users: Vec::new(),
            exact: true,
        });
    }

    // Hash-split each giant component; one reusable ownership bitmap.
    let mut owned = vec![false; view.graph().num_users()];
    for c in giants {
        plan.stats.giant_components += 1;
        let buckets = c.users.len().div_ceil(max_users);
        let mut bucket_users: Vec<Vec<UserId>> = vec![Vec::new(); buckets];
        for &u in &c.users {
            let b = (splitmix64(u64::from(u.0) ^ opts.hash_seed) % buckets as u64) as usize;
            bucket_users[b].push(u);
        }
        for users in bucket_users.into_iter().filter(|b| !b.is_empty()) {
            // `c.users` is sorted, so each bucket is too.
            for &u in &users {
                owned[u.index()] = true;
            }
            let mut items: Vec<ItemId> = users
                .iter()
                .flat_map(|&u| view.user_neighbors(u).map(|(v, _)| v))
                .collect();
            items.sort_unstable();
            items.dedup();
            let mut boundary_items = Vec::new();
            let mut halo_users = Vec::new();
            for &v in &items {
                let mut outside = false;
                for (u, _) in view.item_neighbors(v) {
                    if !owned[u.index()] {
                        outside = true;
                        halo_users.push(u);
                    }
                }
                if outside {
                    boundary_items.push(v);
                }
            }
            halo_users.sort_unstable();
            halo_users.dedup();
            for &u in &users {
                owned[u.index()] = false;
            }
            plan.stats.hash_shards += 1;
            plan.stats.replicated_items += boundary_items.len();
            plan.stats.halo_users += halo_users.len();
            plan.shards.push(Shard {
                users,
                items,
                boundary_items,
                halo_users,
                exact: false,
            });
        }
        plan.giant_users.extend_from_slice(&c.users);
        plan.giant_items.extend_from_slice(&c.items);
    }
    plan.giant_users.sort_unstable();
    plan.giant_items.sort_unstable();
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// `n` disjoint `k × k` bicliques on dense contiguous ids.
    fn bicliques(n: u32, k: u32) -> crate::BipartiteGraph {
        let mut b = GraphBuilder::new();
        for g in 0..n {
            for u in 0..k {
                for v in 0..k {
                    b.add_click(UserId(g * k + u), ItemId(g * k + v), 5);
                }
            }
        }
        b.build()
    }

    #[test]
    fn small_components_bin_pack_into_exact_shards() {
        let g = bicliques(4, 10);
        let view = GraphView::full(&g);
        let plan = plan_shards(&view, &ShardOptions::with_max_users(20));
        assert_eq!(plan.stats.components, 4);
        assert_eq!(plan.stats.giant_components, 0);
        assert_eq!(plan.stats.exact_shards, 2, "4×10 users into cap-20 bins");
        assert!(plan.shards.iter().all(|s| s.exact));
        assert!(plan.shards.iter().all(|s| s.users.len() <= 20));
        assert!(!plan.needs_reconciliation());
        // Every user owned exactly once.
        let mut owned: Vec<UserId> = plan.shards.iter().flat_map(|s| s.users.clone()).collect();
        owned.sort_unstable();
        assert_eq!(owned, view.users().collect::<Vec<_>>());
    }

    #[test]
    fn oversized_component_is_hash_split_with_halo() {
        // One 30×8 biclique: a single component above a cap of 10.
        let mut b = GraphBuilder::new();
        for u in 0..30u32 {
            for v in 0..8u32 {
                b.add_click(UserId(u), ItemId(v), 3);
            }
        }
        let g = b.build();
        let view = GraphView::full(&g);
        let plan = plan_shards(&view, &ShardOptions::with_max_users(10));
        assert_eq!(plan.stats.giant_components, 1);
        assert_eq!(plan.stats.hash_shards, 3, "⌈30 / 10⌉ buckets");
        assert!(plan.needs_reconciliation());
        assert_eq!(plan.giant_users.len(), 30);
        assert_eq!(plan.giant_items.len(), 8);
        let mut owned: Vec<UserId> = plan.shards.iter().flat_map(|s| s.users.clone()).collect();
        owned.sort_unstable();
        assert_eq!(owned.len(), 30, "each user owned exactly once");
        owned.dedup();
        assert_eq!(owned.len(), 30);
        for s in &plan.shards {
            assert!(!s.exact);
            // Full biclique: every item is clicked by every user, so every
            // item is boundary and the halo is everyone else.
            assert_eq!(s.items.len(), 8, "boundary replication carries items");
            assert_eq!(s.boundary_items, s.items);
            assert_eq!(s.halo_users.len(), 30 - s.users.len());
            // Owned and halo are disjoint.
            assert!(s.halo_users.iter().all(|u| !s.users.contains(u)));
        }
    }

    #[test]
    fn interior_items_are_not_boundary() {
        // A giant chain of users sharing item 0, plus each user's private
        // item: private items of owned users are interior.
        let mut b = GraphBuilder::new();
        for u in 0..20u32 {
            b.add_click(UserId(u), ItemId(0), 1);
            b.add_click(UserId(u), ItemId(100 + u), 1);
        }
        let g = b.build();
        let view = GraphView::full(&g);
        let plan = plan_shards(&view, &ShardOptions::with_max_users(5));
        for s in &plan.shards {
            for &v in &s.items {
                if v == ItemId(0) {
                    assert!(s.boundary_items.contains(&v), "shared item is boundary");
                } else {
                    assert!(
                        !s.boundary_items.contains(&v),
                        "private item {v:?} must be interior"
                    );
                }
            }
            // Halo = alive clickers of item 0 outside the shard.
            assert_eq!(s.halo_users.len(), 20 - s.users.len());
        }
    }

    #[test]
    fn plan_ignores_dead_vertices() {
        let g = bicliques(2, 10);
        let mut view = GraphView::full(&g);
        for u in 0..10u32 {
            view.remove_user(UserId(u)); // kill component 0's users
        }
        let plan = plan_shards(&view, &ShardOptions::with_max_users(100));
        // Component 0 is now item-only and skipped.
        assert_eq!(plan.stats.components, 1);
        assert_eq!(plan.shards.len(), 1);
        assert!(plan.shards[0].users.iter().all(|u| u.0 >= 10));
    }

    #[test]
    fn plan_is_deterministic() {
        let g = bicliques(3, 15);
        let view = GraphView::full(&g);
        let opts = ShardOptions::with_max_users(7);
        let a = plan_shards(&view, &opts);
        let b = plan_shards(&view, &opts);
        assert_eq!(a.shards, b.shards);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.giant_users, b.giant_users);
    }

    #[test]
    fn empty_view_yields_empty_plan() {
        let g = GraphBuilder::new().build();
        let view = GraphView::full(&g);
        let plan = plan_shards(&view, &ShardOptions::default());
        assert!(plan.shards.is_empty());
        assert_eq!(plan.stats, ShardPlanStats::default());
    }

    #[test]
    fn zero_cap_is_clamped() {
        let g = bicliques(1, 3);
        let view = GraphView::full(&g);
        let plan = plan_shards(&view, &ShardOptions::with_max_users(0));
        assert!(!plan.shards.is_empty());
        // Cap 1 → the 3-user component is giant and split 3 ways.
        assert_eq!(plan.stats.giant_components, 1);
    }

    #[test]
    fn shard_cost_estimate_orders_by_size() {
        let g = bicliques(2, 10);
        let view = GraphView::full(&g);
        let plan = plan_shards(&view, &ShardOptions::with_max_users(100));
        // Both components fit one bin → a single exact shard.
        assert_eq!(plan.shards.len(), 1);
        assert!(plan.shards[0].cost_estimate() > 0);
    }
}
