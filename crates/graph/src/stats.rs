//! Dataset-level statistics: the paper's Table I (scale), Table II
//! (per-side click statistics) and Fig 2 (click distributions), plus the
//! Pareto 80/20 hot-item boundary that Section IV derives `T_hot` from.

use crate::graph::BipartiteGraph;
use serde::{Deserialize, Serialize};

/// Table I: dataset scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetScale {
    /// Number of users (paper: 20M).
    pub users: usize,
    /// Number of items (paper: 4M).
    pub items: usize,
    /// Number of distinct click records (paper: 90M).
    pub edges: usize,
    /// Sum of all click counts (paper: 200M).
    pub total_clicks: u64,
}

/// Table II row: per-side click statistics.
///
/// For the **user** side: `avg_clk` is the average total clicks issued per
/// user (paper: 11.35), `avg_cnt` the average number of distinct items
/// clicked (paper: 4.32), `stdev` the standard deviation of per-user total
/// clicks (paper: 33.34). The **item** side is symmetric (54.94 / 20.49 /
/// 992.78).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SideStats {
    /// Average total clicks per vertex.
    pub avg_clk: f64,
    /// Average degree (distinct neighbors) per vertex.
    pub avg_cnt: f64,
    /// Population standard deviation of total clicks per vertex.
    pub stdev: f64,
}

/// A log-binned histogram of per-vertex total clicks — the series plotted in
/// Fig 2a (items) and Fig 2b (users).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClickDistribution {
    /// Inclusive lower bound of each bin (powers of two: 1, 2, 4, ...).
    pub bin_lower: Vec<u64>,
    /// Number of vertices whose total clicks fall in the bin.
    pub count: Vec<u64>,
    /// Number of vertices with zero clicks (not plottable on a log axis).
    pub zeros: u64,
}

/// Computes Table I for a graph.
pub fn dataset_scale(g: &BipartiteGraph) -> DatasetScale {
    DatasetScale {
        users: g.num_users(),
        items: g.num_items(),
        edges: g.num_edges(),
        total_clicks: g.total_clicks(),
    }
}

/// Computes the Table II user row.
pub fn user_stats(g: &BipartiteGraph) -> SideStats {
    let totals = g.all_user_total_clicks();
    let degrees: Vec<u64> = g.users().map(|u| g.user_degree(u) as u64).collect();
    side_stats(&totals, &degrees)
}

/// Computes the Table II item row.
pub fn item_stats(g: &BipartiteGraph) -> SideStats {
    let totals = g.all_item_total_clicks();
    let degrees: Vec<u64> = g.items().map(|v| g.item_degree(v) as u64).collect();
    side_stats(&totals, &degrees)
}

fn side_stats(totals: &[u64], degrees: &[u64]) -> SideStats {
    let n = totals.len().max(1) as f64;
    let sum: f64 = totals.iter().map(|&t| t as f64).sum();
    let avg_clk = sum / n;
    let avg_cnt = degrees.iter().map(|&d| d as f64).sum::<f64>() / n;
    let var = totals
        .iter()
        .map(|&t| {
            let d = t as f64 - avg_clk;
            d * d
        })
        .sum::<f64>()
        / n;
    SideStats {
        avg_clk,
        avg_cnt,
        stdev: var.sqrt(),
    }
}

/// Log-bins per-vertex totals into the Fig 2 distribution series.
pub fn click_distribution(totals: &[u64]) -> ClickDistribution {
    let max = totals.iter().copied().max().unwrap_or(0);
    let bins = if max == 0 {
        0
    } else {
        (64 - max.leading_zeros()) as usize
    };
    let mut count = vec![0u64; bins];
    let mut zeros = 0;
    for &t in totals {
        if t == 0 {
            zeros += 1;
        } else {
            count[(63 - t.leading_zeros()) as usize] += 1;
        }
    }
    ClickDistribution {
        bin_lower: (0..bins).map(|b| 1u64 << b).collect(),
        count,
        zeros,
    }
}

/// Fig 2a series: distribution of items' total clicks.
pub fn item_click_distribution(g: &BipartiteGraph) -> ClickDistribution {
    click_distribution(&g.all_item_total_clicks())
}

/// Fig 2b series: distribution of users' total clicks.
pub fn user_click_distribution(g: &BipartiteGraph) -> ClickDistribution {
    click_distribution(&g.all_user_total_clicks())
}

/// Derives the hot-item click threshold by the paper's Pareto rule
/// (Section IV-A, step 1): rank items by total clicks descending and walk
/// down until the cumulative share reaches `share` (paper: 0.8); the
/// threshold is the total-click count of the **last item included**.
///
/// Returns `None` on an empty / all-zero graph. With the paper's data this
/// yields `T_hot = 1,320`.
pub fn pareto_hot_threshold(g: &BipartiteGraph, share: f64) -> Option<u64> {
    let mut totals = g.all_item_total_clicks();
    totals.retain(|&t| t > 0);
    if totals.is_empty() {
        return None;
    }
    totals.sort_unstable_by(|a, b| b.cmp(a));
    let grand: u64 = totals.iter().sum();
    let target = (grand as f64 * share).ceil() as u64;
    let mut cum = 0u64;
    for &t in &totals {
        cum += t;
        if cum >= target {
            return Some(t);
        }
    }
    totals.last().copied()
}

/// Fraction of total clicks captured by the top `frac` share of items —
/// the "80/20" check used to calibrate the synthetic generator against the
/// paper's heavy-tail claim.
pub fn pareto_concentration(g: &BipartiteGraph, frac: f64) -> f64 {
    let mut totals = g.all_item_total_clicks();
    totals.sort_unstable_by(|a, b| b.cmp(a));
    let grand: u64 = totals.iter().sum();
    if grand == 0 {
        return 0.0;
    }
    let k = ((totals.len() as f64) * frac).ceil() as usize;
    let top: u64 = totals.iter().take(k).sum();
    top as f64 / grand as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, ItemId, UserId};

    fn skewed() -> BipartiteGraph {
        // i0 is "hot" (100 clicks), i1..i4 get 5 clicks each.
        let mut b = GraphBuilder::new();
        for u in 0..10 {
            b.add_click(UserId(u), ItemId(0), 10);
        }
        for (idx, v) in (1..5).enumerate() {
            b.add_click(UserId(idx as u32), ItemId(v), 5);
        }
        b.build()
    }

    #[test]
    fn scale_matches_graph() {
        let g = skewed();
        let s = dataset_scale(&g);
        assert_eq!(s.users, 10);
        assert_eq!(s.items, 5);
        assert_eq!(s.edges, 14);
        assert_eq!(s.total_clicks, 120);
    }

    #[test]
    fn side_stats_hand_check() {
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(0), 2);
        b.add_click(UserId(0), ItemId(1), 4);
        b.add_click(UserId(1), ItemId(0), 6);
        let g = b.build();
        let us = user_stats(&g);
        // totals = [6, 6]; degrees = [2, 1]
        assert!((us.avg_clk - 6.0).abs() < 1e-12);
        assert!((us.avg_cnt - 1.5).abs() < 1e-12);
        assert!(us.stdev.abs() < 1e-12);
        let is = item_stats(&g);
        // item totals = [8, 4]; degrees = [2, 1]
        assert!((is.avg_clk - 6.0).abs() < 1e-12);
        assert!((is.avg_cnt - 1.5).abs() < 1e-12);
        assert!((is.stdev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_bins_are_powers_of_two() {
        let d = click_distribution(&[0, 1, 2, 3, 4, 7, 8, 100]);
        assert_eq!(d.zeros, 1);
        assert_eq!(d.bin_lower[0], 1);
        assert_eq!(d.count[0], 1); // 1
        assert_eq!(d.count[1], 2); // 2, 3
        assert_eq!(d.count[2], 2); // 4, 7
        assert_eq!(d.count[3], 1); // 8
        assert_eq!(d.bin_lower[6], 64);
        assert_eq!(d.count[6], 1); // 100
        assert_eq!(d.count.iter().sum::<u64>() + d.zeros, 8);
    }

    #[test]
    fn empty_distribution() {
        let d = click_distribution(&[]);
        assert!(d.bin_lower.is_empty());
        assert_eq!(d.zeros, 0);
    }

    #[test]
    fn hot_threshold_pareto() {
        let g = skewed();
        // totals: [100, 5, 5, 5, 5]; grand = 120, 80% = 96 → cum reaches 96
        // at the first item (100) → threshold = 100.
        assert_eq!(pareto_hot_threshold(&g, 0.8), Some(100));
        // 90% = 108 → need first two items → threshold = 5.
        assert_eq!(pareto_hot_threshold(&g, 0.9), Some(5));
    }

    #[test]
    fn hot_threshold_empty() {
        let g = GraphBuilder::new().build();
        assert_eq!(pareto_hot_threshold(&g, 0.8), None);
    }

    #[test]
    fn concentration_monotone() {
        let g = skewed();
        let c20 = pareto_concentration(&g, 0.2);
        let c50 = pareto_concentration(&g, 0.5);
        assert!(c20 <= c50);
        assert!((pareto_concentration(&g, 1.0) - 1.0).abs() < 1e-12);
        // top 20% of 5 items = 1 item = 100/120
        assert!((c20 - 100.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    fn fig2_series_shapes() {
        let g = skewed();
        let di = item_click_distribution(&g);
        let du = user_click_distribution(&g);
        assert_eq!(di.count.iter().sum::<u64>() + di.zeros, 5);
        assert_eq!(du.count.iter().sum::<u64>() + du.zeros, 10);
    }
}
