//! Induced subgraph extraction.
//!
//! Algorithm 2's `GraphGenerator` builds, from seed nodes supplied by the
//! business department, the "maximal bigraph" around each seed (the union of
//! the seeds' neighborhoods). Extracting that region as a standalone
//! [`BipartiteGraph`] with remapped dense ids keeps downstream passes
//! cache-friendly and lets groups be analyzed in isolation.

use crate::builder::GraphBuilder;
use crate::graph::BipartiteGraph;
use crate::ids::{ItemId, UserId};

/// A standalone subgraph plus the mapping back to the parent graph's ids.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The extracted graph with dense local ids.
    pub graph: BipartiteGraph,
    /// `local user id → parent user id`.
    pub user_map: Vec<UserId>,
    /// `local item id → parent item id`.
    pub item_map: Vec<ItemId>,
}

impl InducedSubgraph {
    /// Extracts the subgraph induced by the given parent-id vertex sets.
    ///
    /// Duplicate ids in the inputs are tolerated; edge weights carry over.
    pub fn extract(
        parent: &BipartiteGraph,
        users: impl IntoIterator<Item = UserId>,
        items: impl IntoIterator<Item = ItemId>,
    ) -> Self {
        let mut user_map: Vec<UserId> = users.into_iter().collect();
        user_map.sort_unstable();
        user_map.dedup();
        let mut item_map: Vec<ItemId> = items.into_iter().collect();
        item_map.sort_unstable();
        item_map.dedup();

        let mut item_local = vec![u32::MAX; parent.num_items()];
        for (local, v) in item_map.iter().enumerate() {
            item_local[v.index()] = local as u32;
        }

        let mut b = GraphBuilder::new();
        b.reserve_users(user_map.len());
        b.reserve_items(item_map.len());
        for (local_u, &u) in user_map.iter().enumerate() {
            for (v, c) in parent.user_neighbors(u) {
                let lv = item_local[v.index()];
                if lv != u32::MAX {
                    b.add_click(UserId(local_u as u32), ItemId(lv), c);
                }
            }
        }
        Self {
            graph: b.build(),
            user_map,
            item_map,
        }
    }

    /// Rebuilds a dense CSR containing only `view`'s alive vertices.
    ///
    /// Mid-fixpoint, once most of a view is dead, every remaining pass still
    /// walks adjacency lists full of corpses. Compacting to a small remapped
    /// graph makes later rounds iterate only live edges; `local_user` /
    /// `local_item` translate worklists in, and `user_map` / `item_map`
    /// translate removals back out. Because the maps are sorted, local id
    /// order agrees with parent id order.
    pub fn compact(view: &crate::view::GraphView<'_>) -> Self {
        let (users, items) = view.alive_sets();
        Self::extract(view.graph(), users, items)
    }

    /// Maps a local user id back to the parent id.
    pub fn parent_user(&self, local: UserId) -> UserId {
        self.user_map[local.index()]
    }

    /// Maps a local item id back to the parent id.
    pub fn parent_item(&self, local: ItemId) -> ItemId {
        self.item_map[local.index()]
    }

    /// Looks up the local id of a parent user, if present.
    pub fn local_user(&self, parent: UserId) -> Option<UserId> {
        self.user_map
            .binary_search(&parent)
            .ok()
            .map(|i| UserId(i as u32))
    }

    /// Looks up the local id of a parent item, if present.
    pub fn local_item(&self, parent: ItemId) -> Option<ItemId> {
        self.item_map
            .binary_search(&parent)
            .ok()
            .map(|i| ItemId(i as u32))
    }
}

/// Extracts the one-hop ball around seed vertices: all seed users/items plus
/// every vertex adjacent to a seed — the `MaxBiGraph(node)` of Algorithm 2.
pub fn seed_neighborhood(
    parent: &BipartiteGraph,
    seed_users: &[UserId],
    seed_items: &[ItemId],
) -> (Vec<UserId>, Vec<ItemId>) {
    let mut users: Vec<UserId> = seed_users.to_vec();
    let mut items: Vec<ItemId> = seed_items.to_vec();
    for &u in seed_users {
        items.extend(parent.user_adjacency(u).iter().copied());
    }
    for &v in seed_items {
        users.extend(parent.item_adjacency(v).iter().copied());
    }
    users.sort_unstable();
    users.dedup();
    items.sort_unstable();
    items.dedup();
    (users, items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(0), 3);
        b.add_click(UserId(0), ItemId(5), 1);
        b.add_click(UserId(4), ItemId(0), 2);
        b.add_click(UserId(4), ItemId(9), 7);
        b.add_click(UserId(7), ItemId(9), 1);
        b.build()
    }

    #[test]
    fn extraction_preserves_weights() {
        let g = sample();
        let sub = InducedSubgraph::extract(&g, [UserId(0), UserId(4)], [ItemId(0), ItemId(9)]);
        assert_eq!(sub.graph.num_users(), 2);
        assert_eq!(sub.graph.num_items(), 2);
        assert_eq!(sub.graph.num_edges(), 3); // (0,0,3) (4,0,2) (4,9,7)
        let lu0 = sub.local_user(UserId(0)).unwrap();
        let li0 = sub.local_item(ItemId(0)).unwrap();
        assert_eq!(sub.graph.clicks(lu0, li0), Some(3));
        sub.graph.validate().unwrap();
    }

    #[test]
    fn maps_round_trip() {
        let g = sample();
        let sub = InducedSubgraph::extract(&g, [UserId(7), UserId(4)], [ItemId(9)]);
        for local in 0..sub.graph.num_users() as u32 {
            let p = sub.parent_user(UserId(local));
            assert_eq!(sub.local_user(p), Some(UserId(local)));
        }
        assert_eq!(sub.local_user(UserId(0)), None);
        assert_eq!(sub.local_item(ItemId(0)), None);
    }

    #[test]
    fn duplicates_tolerated() {
        let g = sample();
        let sub = InducedSubgraph::extract(&g, [UserId(0), UserId(0)], [ItemId(0), ItemId(0)]);
        assert_eq!(sub.graph.num_users(), 1);
        assert_eq!(sub.graph.num_items(), 1);
    }

    #[test]
    fn edges_to_outside_dropped() {
        let g = sample();
        let sub = InducedSubgraph::extract(&g, [UserId(0)], [ItemId(0)]);
        // (0,5) excluded
        assert_eq!(sub.graph.num_edges(), 1);
    }

    #[test]
    fn compact_keeps_only_alive_induced_edges() {
        let g = sample();
        let mut view = crate::view::GraphView::full(&g);
        view.remove_user(UserId(0));
        view.remove_item(ItemId(9));
        let sub = InducedSubgraph::compact(&view);
        // All ids except the removed ones stay (isolated ids included); only
        // edge (4, 0, 2) survives — (0,*) lost its user, (*,9) its item.
        assert_eq!(sub.graph.num_users(), g.num_users() - 1);
        assert_eq!(sub.graph.num_items(), g.num_items() - 1);
        assert_eq!(sub.graph.num_edges(), 1);
        let lu = sub.local_user(UserId(4)).unwrap();
        let li = sub.local_item(ItemId(0)).unwrap();
        assert_eq!(sub.graph.clicks(lu, li), Some(2));
        assert_eq!(sub.local_user(UserId(0)), None);
        assert_eq!(sub.local_item(ItemId(9)), None);
        // Sorted maps: local order mirrors parent order.
        assert_eq!(sub.parent_user(lu), UserId(4));
        assert_eq!(sub.parent_item(li), ItemId(0));
    }

    #[test]
    fn seed_neighborhood_expands_one_hop() {
        let g = sample();
        let (us, is) = seed_neighborhood(&g, &[], &[ItemId(9)]);
        assert_eq!(us, vec![UserId(4), UserId(7)]);
        assert_eq!(is, vec![ItemId(9)]);
        let (us, is) = seed_neighborhood(&g, &[UserId(0)], &[]);
        assert_eq!(us, vec![UserId(0)]);
        assert_eq!(is, vec![ItemId(0), ItemId(5)]);
    }
}
